//! # tie-metrics
//!
//! Quality metrics for task-to-PE mappings, as used in the evaluation of
//! "Topology-induced Enhancement of Mappings" (ICPP 2018) and in the broader
//! mapping literature:
//!
//! * [`coco`] — the paper's main objective (Eq. (3), a.k.a. *hop-byte*):
//!   communication volume weighted by PE distance,
//! * [`edge_cut`] — total weight of application edges whose endpoints live on
//!   different PEs (the partitioner's objective, reported as `Cut`),
//! * [`dilation`] — average and maximum number of hops per unit of
//!   communication,
//! * [`congestion`] — maximum load over the processor-graph links when every
//!   application edge is routed along one BFS shortest path,
//! * [`imbalance`] — maximum PE load relative to the ideal load.
//!
//! All metrics are pure functions of `(Ga, Gp, µ)` and are used both by the
//! experiment harness and as cross-checks in tests of the label-based
//! objective in `tie-timer`.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::collections::VecDeque;

use tie_graph::traversal::{all_pairs_distances, DistanceMatrix};
use tie_graph::{Graph, NodeId, Weight};
use tie_mapping::Mapping;

/// A bundle of all metrics for one mapping, as reported by the harness.
#[derive(Clone, Debug, PartialEq)]
pub struct MappingQuality {
    /// Communication cost Coco (hop-byte).
    pub coco: u64,
    /// Edge cut.
    pub edge_cut: u64,
    /// Average dilation (hops per unit of cut communication volume).
    pub avg_dilation: f64,
    /// Maximum dilation over the cut edges.
    pub max_dilation: u32,
    /// Maximum link congestion under shortest-path routing.
    pub congestion: u64,
    /// Load imbalance: `max_load / ceil(n / p) - 1`.
    pub imbalance: f64,
}

/// Computes all metrics at once (sharing the distance matrix).
pub fn evaluate(ga: &Graph, gp: &Graph, mapping: &Mapping) -> MappingQuality {
    let dist = all_pairs_distances(gp);
    MappingQuality {
        coco: coco_with_distances(ga, &dist, mapping),
        edge_cut: edge_cut(ga, mapping),
        avg_dilation: dilation(ga, &dist, mapping).0,
        max_dilation: dilation(ga, &dist, mapping).1,
        congestion: congestion(ga, gp, mapping),
        imbalance: imbalance(ga, mapping),
    }
}

/// `Coco(µ)` (Eq. (3)): `Σ ω(e) · d_Gp(µ(u), µ(v))`.
pub fn coco(ga: &Graph, gp: &Graph, mapping: &Mapping) -> u64 {
    coco_with_distances(ga, &all_pairs_distances(gp), mapping)
}

/// `Coco(µ)` when the distance matrix of `Gp` is already available.
pub fn coco_with_distances(ga: &Graph, dist: &DistanceMatrix, mapping: &Mapping) -> u64 {
    ga.edges()
        .map(|(u, v, w)| w * dist.get(mapping.pe_of(u), mapping.pe_of(v)) as u64)
        .sum()
}

/// Edge cut: total weight of application edges mapped across PEs.
pub fn edge_cut(ga: &Graph, mapping: &Mapping) -> u64 {
    ga.edges()
        .filter(|&(u, v, _)| mapping.pe_of(u) != mapping.pe_of(v))
        .map(|(_, _, w)| w)
        .sum()
}

/// Average and maximum dilation over the *cut* edges (edges inside a PE have
/// zero distance and are excluded from the average, matching the usual
/// definition). Returns `(avg, max)`; `(0.0, 0)` if nothing is cut.
pub fn dilation(ga: &Graph, dist: &DistanceMatrix, mapping: &Mapping) -> (f64, u32) {
    let mut total_weight = 0u64;
    let mut total_hops = 0u64;
    let mut max = 0u32;
    for (u, v, w) in ga.edges() {
        let d = dist.get(mapping.pe_of(u), mapping.pe_of(v));
        if d > 0 {
            total_weight += w;
            total_hops += w * d as u64;
            max = max.max(d);
        }
    }
    if total_weight == 0 {
        (0.0, 0)
    } else {
        (total_hops as f64 / total_weight as f64, max)
    }
}

/// Maximum congestion: every application edge is routed along one BFS
/// shortest path in `Gp` (deterministic parent choice), and the maximum total
/// weight over any processor link is returned. This follows the paper's
/// assumption of shortest-path routing.
pub fn congestion(ga: &Graph, gp: &Graph, mapping: &Mapping) -> u64 {
    let p = gp.num_vertices();
    if p == 0 {
        return 0;
    }
    // Deterministic BFS parent forest from every source PE.
    // parent[s][v] = predecessor of v on the chosen shortest path from s.
    let mut parents: Vec<Vec<NodeId>> = Vec::with_capacity(p);
    for s in gp.vertices() {
        parents.push(bfs_parents(gp, s));
    }
    // Edge loads keyed by (min, max) endpoint; a BTreeMap so the final
    // reduction visits links in a fixed order.
    let mut load: std::collections::BTreeMap<(NodeId, NodeId), u64> =
        std::collections::BTreeMap::new();
    for (u, v, w) in ga.edges() {
        let (pu, pv) = (mapping.pe_of(u), mapping.pe_of(v));
        if pu == pv {
            continue;
        }
        // Walk from pv back to pu along the parent pointers of source pu.
        let par = &parents[pu as usize];
        let mut cur = pv;
        while cur != pu {
            let prev = par[cur as usize];
            let key = if prev < cur { (prev, cur) } else { (cur, prev) };
            *load.entry(key).or_insert(0) += w;
            cur = prev;
        }
    }
    load.values().copied().max().unwrap_or(0)
}

fn bfs_parents(gp: &Graph, source: NodeId) -> Vec<NodeId> {
    let n = gp.num_vertices();
    let mut parent = vec![NodeId::MAX; n];
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    parent[source as usize] = source;
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in gp.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Load imbalance of the mapping: `max_vertex_weight_per_PE / ideal − 1`,
/// where ideal is `ceil(total_weight / num_PEs)`.
pub fn imbalance(ga: &Graph, mapping: &Mapping) -> f64 {
    let p = mapping.num_pes();
    if p == 0 {
        return 0.0;
    }
    let total: Weight = ga.total_vertex_weight();
    if total == 0 {
        return 0.0;
    }
    let ideal = total.div_ceil(p as Weight);
    let max = mapping.weight_per_pe(ga).into_iter().max().unwrap_or(0);
    max as f64 / ideal as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_topology::Topology;

    /// Tiny hand-checkable instance: a path of 4 tasks on a path of 2 PEs.
    fn tiny() -> (Graph, Graph, Mapping) {
        let ga = generators::path_graph(4);
        let gp = generators::path_graph(2);
        // Tasks 0,1 on PE 0; tasks 2,3 on PE 1.
        let m = Mapping::new(vec![0, 0, 1, 1], 2);
        (ga, gp, m)
    }

    #[test]
    fn coco_and_cut_on_tiny_instance() {
        let (ga, gp, m) = tiny();
        // Only edge (1,2) is cut, distance 1, weight 1.
        assert_eq!(coco(&ga, &gp, &m), 1);
        assert_eq!(edge_cut(&ga, &m), 1);
    }

    #[test]
    fn dilation_on_tiny_instance() {
        let (ga, gp, m) = tiny();
        let dist = all_pairs_distances(&gp);
        let (avg, max) = dilation(&ga, &dist, &m);
        assert!((avg - 1.0).abs() < 1e-12);
        assert_eq!(max, 1);
    }

    #[test]
    fn congestion_on_tiny_instance() {
        let (ga, gp, m) = tiny();
        assert_eq!(congestion(&ga, &gp, &m), 1);
    }

    #[test]
    fn imbalance_zero_for_even_split() {
        let (ga, _, m) = tiny();
        assert!(imbalance(&ga, &m).abs() < 1e-12);
        let skew = Mapping::new(vec![0, 0, 0, 1], 2);
        assert!((imbalance(&ga, &skew) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coco_upper_bounded_by_cut_times_diameter() {
        let ga = generators::barabasi_albert(300, 3, 2);
        let topo = Topology::grid2d(4, 4);
        let assignment: Vec<u32> = (0..300u32).map(|v| v % 16).collect();
        let m = Mapping::new(assignment, 16);
        let dist = all_pairs_distances(&topo.graph);
        let c = coco(&ga, &topo.graph, &m);
        let cut = edge_cut(&ga, &m);
        assert!(c >= cut, "every cut edge costs at least one hop");
        assert!(c <= cut * dist.diameter() as u64);
    }

    #[test]
    fn coco_zero_when_everything_on_one_pe() {
        let ga = generators::complete_graph(10);
        let gp = Topology::grid2d(2, 2).graph;
        let m = Mapping::new(vec![3; 10], 4);
        assert_eq!(coco(&ga, &gp, &m), 0);
        assert_eq!(edge_cut(&ga, &m), 0);
        assert_eq!(congestion(&ga, &gp, &m), 0);
        let dist = all_pairs_distances(&gp);
        assert_eq!(dilation(&ga, &dist, &m), (0.0, 0));
    }

    #[test]
    fn congestion_accumulates_along_shared_links() {
        // Path processor graph 0-1-2; tasks on PE 0 and PE 2 communicate, so
        // both links carry the full volume.
        let gp = generators::path_graph(3);
        let mut b = tie_graph::GraphBuilder::new(4);
        b.add_edge(0, 2, 5);
        b.add_edge(1, 3, 7);
        let ga = b.build();
        let m = Mapping::new(vec![0, 0, 2, 2], 3);
        assert_eq!(congestion(&ga, &gp, &m), 12);
        assert_eq!(coco(&ga, &gp, &m), 2 * 5 + 2 * 7);
    }

    #[test]
    fn evaluate_bundles_all_metrics_consistently() {
        let ga = generators::watts_strogatz(200, 4, 0.1, 1);
        let gp = Topology::hypercube(3).graph;
        let assignment: Vec<u32> = (0..200u32).map(|v| v % 8).collect();
        let m = Mapping::new(assignment, 8);
        let q = evaluate(&ga, &gp, &m);
        assert_eq!(q.coco, coco(&ga, &gp, &m));
        assert_eq!(q.edge_cut, edge_cut(&ga, &m));
        assert_eq!(q.congestion, congestion(&ga, &gp, &m));
        assert!(q.avg_dilation >= 1.0);
        assert!(q.max_dilation as u64 >= 1);
        assert!(q.imbalance >= 0.0);
    }

    #[test]
    fn identity_mapping_of_grid_onto_itself_is_perfect() {
        let topo = Topology::grid2d(4, 4);
        let ga = topo.graph.clone();
        let m = Mapping::new((0..16u32).collect(), 16);
        let q = evaluate(&ga, &topo.graph, &m);
        assert_eq!(q.coco, ga.total_edge_weight());
        assert_eq!(q.edge_cut, ga.total_edge_weight());
        assert!((q.avg_dilation - 1.0).abs() < 1e-12);
        assert_eq!(q.max_dilation, 1);
        assert_eq!(q.congestion, 1);
    }
}
