//! # tie-fault
//!
//! Seeded, deterministic fault injection for chaos-testing the TiMEr
//! pipeline. The production code paths carry a cheap [`FaultHandle`]
//! (`tie-trace`-style plumbing: a disabled handle is one branch per probe
//! site), and a [`FaultPlan`] arms specific faults at specific places:
//!
//! * **worker panics** at chosen hierarchy rounds (`panic@R`, or seeded via
//!   [`FaultPlan::with_seeded_panics`]) — exercising the driver's
//!   panic-isolated speculation,
//! * **IO errors** on the n-th counted IO operation (`io@N`) — exercising
//!   the typed-error paths of `tie-graph::io` and the `mapd` socket framing
//!   layer (readers and socket frames share one operation counter),
//! * **artificial delays** at named pipeline sites (`delay:SITE=MICROS`) —
//!   making deadline expiry deterministic in tests; the registered sites
//!   ([`SITES`]) include the daemon's `socket_io` and `cache_build` probes.
//!
//! Every fault is *consumed* when it fires: a panic armed once at round `R`
//! hits the first attempt of round `R` and lets the quarantine re-run
//! succeed, which is exactly the transient-fault model the driver's
//! graceful-degradation contract is written against (`docs/RESILIENCE.md`).
//! Arm a fault more than once (`panic@R*2`) to model a *persistent* fault
//! and drive the hard-failure path.
//!
//! Binaries pick up a plan from the `TIE_FAULTS` environment variable via
//! [`FaultHandle::from_env`]; libraries never read the environment — they
//! only probe the handle they were given, so injection is always explicit
//! and seeded, never ambient.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable binaries read fault plans from (see
/// [`FaultHandle::from_env`]).
pub const FAULTS_ENV_VAR: &str = "TIE_FAULTS";

/// Prefix of every injected panic payload, so panic hooks and tests can
/// distinguish injected faults from real bugs.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// The fixed vocabulary of fault-injection sites: every `delay`/`with_delay`
/// site name used anywhere in the workspace must come from this list, which
/// `tie-lint`'s `registered-sites` rule enforces statically. The first three
/// are the delay probes in `tie-timer`'s driver; `io` is probed by
/// [`FaultHandle::io_fault`] before every counted reader operation (the
/// `mapd` socket framing layer shares that probe and its operation counter);
/// `socket_io` delays every socket frame read/write and `cache_build` delays
/// every per-topology cache construction in `mapd`.
pub const SITES: &[&str] = &[
    "hierarchy_build",
    "assemble",
    "delta_scan",
    "io",
    "socket_io",
    "cache_build",
];

/// A deterministic fault schedule. Build one with the combinators below or
/// parse the `TIE_FAULTS` grammar with [`FaultPlan::parse`]; activate it by
/// wrapping it in a [`FaultHandle`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Hierarchy round → number of attempts of that round that panic.
    panic_rounds: BTreeMap<usize, u32>,
    /// 1-based indices of reader IO operations that fail.
    io_ops: BTreeSet<u64>,
    /// Site name → artificial delay per visit.
    delays: BTreeMap<String, Duration>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panic_rounds.is_empty() && self.io_ops.is_empty() && self.delays.is_empty()
    }

    /// Arms one panic at the first attempt of hierarchy round `round`.
    pub fn with_panic_at_round(self, round: usize) -> Self {
        self.with_panic_at_round_times(round, 1)
    }

    /// Arms panics at the first `times` attempts of hierarchy round `round`
    /// (`times >= 2` makes the fault persistent: the quarantine re-run
    /// panics too and the run fails with `WorkerPanicked`).
    pub fn with_panic_at_round_times(mut self, round: usize, times: u32) -> Self {
        *self.panic_rounds.entry(round).or_insert(0) += times;
        self
    }

    /// Arms one panic each at `count` distinct rounds drawn deterministically
    /// from `seed` out of `0..round_limit`. The same `(seed, count,
    /// round_limit)` always yields the same rounds.
    pub fn with_seeded_panics(mut self, seed: u64, count: usize, round_limit: usize) -> Self {
        if round_limit == 0 {
            return self;
        }
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut picked = BTreeSet::new();
        // splitmix64: full-period, seedable, and dependency-free.
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        while picked.len() < count.min(round_limit) {
            picked.insert((next() % round_limit as u64) as usize);
        }
        for round in picked {
            *self.panic_rounds.entry(round).or_insert(0) += 1;
        }
        self
    }

    /// Arms an IO failure on the `nth` (1-based) reader operation.
    pub fn with_io_fault(mut self, nth: u64) -> Self {
        self.io_ops.insert(nth.max(1));
        self
    }

    /// Arms an artificial delay of `delay` at every visit of `site`
    /// (the registered sites are listed in [`SITES`]).
    pub fn with_delay(mut self, site: &str, delay: Duration) -> Self {
        self.delays.insert(site.to_string(), delay);
        self
    }

    /// Parses the `TIE_FAULTS` grammar: comma-separated directives
    ///
    /// * `panic@R` / `panic@R*N` — N panics (default 1) at round R,
    /// * `panic-seeded@SEED:COUNT:LIMIT` — COUNT seeded one-shot panics in
    ///   rounds `0..LIMIT`,
    /// * `io@N` — fail the Nth reader operation,
    /// * `delay:SITE=MICROS` — delay every visit of SITE by MICROS µs.
    ///
    /// Returns a one-line error naming the offending directive.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for directive in spec.split(',').map(str::trim).filter(|d| !d.is_empty()) {
            if let Some(rest) = directive.strip_prefix("panic-seeded@") {
                let parts: Vec<&str> = rest.split(':').collect();
                let parsed: Option<(u64, usize, usize)> = match parts.as_slice() {
                    [s, c, l] => match (s.parse(), c.parse(), l.parse()) {
                        (Ok(s), Ok(c), Ok(l)) => Some((s, c, l)),
                        _ => None,
                    },
                    _ => None,
                };
                let (seed, count, limit) = parsed.ok_or_else(|| {
                    format!("bad fault directive {directive:?}: want panic-seeded@SEED:COUNT:LIMIT")
                })?;
                plan = plan.with_seeded_panics(seed, count, limit);
            } else if let Some(rest) = directive.strip_prefix("panic@") {
                let (round, times) = match rest.split_once('*') {
                    Some((r, t)) => (r.parse::<usize>(), t.parse::<u32>()),
                    None => (rest.parse::<usize>(), Ok(1)),
                };
                match (round, times) {
                    (Ok(r), Ok(t)) if t >= 1 => plan = plan.with_panic_at_round_times(r, t),
                    _ => {
                        return Err(format!(
                        "bad fault directive {directive:?}: want panic@ROUND or panic@ROUND*TIMES"
                    ))
                    }
                }
            } else if let Some(rest) = directive.strip_prefix("io@") {
                let nth: u64 = rest
                    .parse()
                    .map_err(|_| format!("bad fault directive {directive:?}: want io@N"))?;
                plan = plan.with_io_fault(nth);
            } else if let Some(rest) = directive.strip_prefix("delay:") {
                let (site, micros) = rest.split_once('=').ok_or_else(|| {
                    format!("bad fault directive {directive:?}: want delay:SITE=MICROS")
                })?;
                let micros: u64 = micros.parse().map_err(|_| {
                    format!("bad fault directive {directive:?}: MICROS must be a number")
                })?;
                plan = plan.with_delay(site, Duration::from_micros(micros));
            } else {
                return Err(format!(
                    "unknown fault directive {directive:?} (want panic@R[*N], panic-seeded@S:C:L, io@N or delay:SITE=MICROS)"
                ));
            }
        }
        Ok(plan)
    }
}

struct HandleInner {
    /// Remaining panics per round; consumed as they fire so quarantine
    /// re-runs of a once-armed round succeed.
    panic_rounds: Mutex<BTreeMap<usize, u32>>,
    io_ops: BTreeSet<u64>,
    io_counter: AtomicU64,
    delays: BTreeMap<String, Duration>,
    panics_fired: AtomicUsize,
    io_faults_fired: AtomicUsize,
}

/// The cheap, cloneable handle instrumented code probes. A disabled handle
/// (the default, [`FaultHandle::off`]) reduces every probe to one branch on
/// an `Option`, so production paths pay nothing when chaos is off. Clones
/// share fault state: a fault consumed through one clone is consumed for all.
#[derive(Clone, Default)]
pub struct FaultHandle {
    inner: Option<Arc<HandleInner>>,
}

impl std::fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "FaultHandle(off)"),
            Some(_) => write!(f, "FaultHandle(armed)"),
        }
    }
}

impl FaultHandle {
    /// A disabled handle: every probe is a no-op branch.
    pub fn off() -> Self {
        FaultHandle::default()
    }

    /// Activates `plan`. An empty plan yields a disabled handle.
    pub fn new(plan: FaultPlan) -> Self {
        if plan.is_empty() {
            return FaultHandle::off();
        }
        FaultHandle {
            inner: Some(Arc::new(HandleInner {
                panic_rounds: Mutex::new(plan.panic_rounds),
                io_ops: plan.io_ops,
                io_counter: AtomicU64::new(0),
                delays: plan.delays,
                panics_fired: AtomicUsize::new(0),
                io_faults_fired: AtomicUsize::new(0),
            })),
        }
    }

    /// Builds a handle from the `TIE_FAULTS` environment variable: disabled
    /// when unset or empty, `Err` (one line, for CLI reporting) when set but
    /// malformed. Intended for binaries only — libraries take handles.
    pub fn from_env() -> Result<FaultHandle, String> {
        match std::env::var(FAULTS_ENV_VAR) {
            Ok(spec) if !spec.trim().is_empty() => Ok(FaultHandle::new(FaultPlan::parse(&spec)?)),
            _ => Ok(FaultHandle::off()),
        }
    }

    /// Whether any fault is armed (counters may still read >0 after all
    /// faults fired).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Panics iff a panic is armed for `round`, consuming one charge. The
    /// payload starts with [`INJECTED_PANIC_PREFIX`].
    pub fn maybe_panic(&self, round: usize) {
        let Some(inner) = &self.inner else { return };
        let fire = {
            let mut rounds = match inner.panic_rounds.lock() {
                Ok(guard) => guard,
                // A previous injected panic may have poisoned the lock —
                // the map itself is always in a consistent state.
                Err(poisoned) => poisoned.into_inner(),
            };
            match rounds.get_mut(&round) {
                Some(left) if *left > 0 => {
                    *left -= 1;
                    true
                }
                _ => false,
            }
        };
        if fire {
            inner.panics_fired.fetch_add(1, Ordering::Relaxed);
            // tie-lint: allow(no-panic-paths) — this panic IS the injected fault; callers opt in via TIE_FAULTS
            panic!("{INJECTED_PANIC_PREFIX} worker panic at round {round}");
        }
    }

    /// Counts one reader operation and returns an injected error iff this
    /// operation's (1-based) index is armed. `op` names the operation for
    /// the error message.
    pub fn io_fault(&self, op: &str) -> Option<std::io::Error> {
        let inner = self.inner.as_ref()?;
        self.delay("io");
        let nth = inner.io_counter.fetch_add(1, Ordering::Relaxed) + 1;
        if inner.io_ops.contains(&nth) {
            inner.io_faults_fired.fetch_add(1, Ordering::Relaxed);
            Some(std::io::Error::other(format!(
                "{INJECTED_PANIC_PREFIX} IO error on operation #{nth} ({op})"
            )))
        } else {
            None
        }
    }

    /// Sleeps for the delay armed at `site`, if any.
    pub fn delay(&self, site: &str) {
        let Some(inner) = &self.inner else { return };
        if let Some(d) = inner.delays.get(site) {
            std::thread::sleep(*d);
        }
    }

    /// Number of injected panics that actually fired.
    pub fn panics_fired(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.panics_fired.load(Ordering::Relaxed))
    }

    /// Number of injected IO errors that actually fired.
    pub fn io_faults_fired(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.io_faults_fired.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_vocabulary_is_sorted_and_distinct() {
        let mut sorted = SITES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), SITES.len());
        assert!(SITES.contains(&"io"));
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = FaultHandle::off();
        assert!(!h.is_active());
        h.maybe_panic(0);
        assert!(h.io_fault("read").is_none());
        h.delay("round");
        assert_eq!(h.panics_fired(), 0);
        assert_eq!(format!("{h:?}"), "FaultHandle(off)");
    }

    #[test]
    fn empty_plan_yields_disabled_handle() {
        assert!(!FaultHandle::new(FaultPlan::new()).is_active());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn panic_fires_once_and_is_consumed() {
        let h = FaultHandle::new(FaultPlan::new().with_panic_at_round(3));
        h.maybe_panic(2); // not armed
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.maybe_panic(3)));
        assert!(r.is_err());
        assert_eq!(h.panics_fired(), 1);
        // Consumed: the quarantine re-run of round 3 succeeds.
        h.maybe_panic(3);
        assert_eq!(h.panics_fired(), 1);
    }

    #[test]
    fn persistent_panic_fires_repeatedly() {
        let h = FaultHandle::new(FaultPlan::new().with_panic_at_round_times(1, 2));
        for _ in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.maybe_panic(1)));
            assert!(r.is_err());
        }
        h.maybe_panic(1); // third attempt is clean
        assert_eq!(h.panics_fired(), 2);
    }

    #[test]
    fn clones_share_consumption() {
        let h = FaultHandle::new(FaultPlan::new().with_panic_at_round(0));
        let clone = h.clone();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| clone.maybe_panic(0)));
        assert!(r.is_err());
        h.maybe_panic(0); // consumed through the clone
        assert_eq!(h.panics_fired(), 1);
    }

    #[test]
    fn io_fault_counts_operations() {
        let h = FaultHandle::new(FaultPlan::new().with_io_fault(2));
        assert!(h.io_fault("read_metis").is_none());
        let err = h.io_fault("read_metis").expect("second op must fail");
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(h.io_fault("read_metis").is_none());
        assert_eq!(h.io_faults_fired(), 1);
    }

    #[test]
    fn seeded_panics_are_deterministic() {
        let a = FaultPlan::new().with_seeded_panics(42, 3, 40);
        let b = FaultPlan::new().with_seeded_panics(42, 3, 40);
        let c = FaultPlan::new().with_seeded_panics(43, 3, 40);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.panic_rounds.len(), 3);
        assert!(a.panic_rounds.keys().all(|&r| r < 40));
    }

    #[test]
    fn parse_grammar_roundtrip() {
        let plan = FaultPlan::parse("panic@3, panic@7*2, io@1, delay:round=250").unwrap();
        assert_eq!(plan.panic_rounds.get(&3), Some(&1));
        assert_eq!(plan.panic_rounds.get(&7), Some(&2));
        assert!(plan.io_ops.contains(&1));
        assert_eq!(plan.delays.get("round"), Some(&Duration::from_micros(250)));
        assert_eq!(
            FaultPlan::parse("panic-seeded@1:2:10").unwrap(),
            FaultPlan::new().with_seeded_panics(1, 2, 10)
        );
    }

    #[test]
    fn parse_rejects_malformed_directives() {
        for bad in [
            "panic@",
            "panic@x",
            "panic@3*0",
            "io@",
            "io@x",
            "delay:round",
            "delay:round=x",
            "explode@4",
            "panic-seeded@1:2",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains("directive"), "{bad}: {err}");
        }
    }

    #[test]
    fn delay_actually_sleeps() {
        let h = FaultHandle::new(FaultPlan::new().with_delay("round", Duration::from_millis(5)));
        let t = std::time::Instant::now();
        h.delay("round");
        assert!(t.elapsed() >= Duration::from_millis(5));
        let t = std::time::Instant::now();
        h.delay("other-site");
        assert!(t.elapsed() < Duration::from_millis(5));
    }
}
