//! A finer-grained polishing pass on top of the multi-hierarchical search.
//!
//! The paper's conclusion notes that TIMER's local search is deliberately
//! simple and that "further improvements … can be achieved by replacing the
//! simple local search by a more sophisticated method". This module provides
//! such a method as an optional extension: a sweep over the *cut edges* of
//! the application graph that tries to swap the labels of the two endpoints
//! (and, as a second move type, of any two vertices mapped to neighbouring
//! PEs that are adjacent in `Ga`). Unlike the hierarchy sweeps, these swaps
//! are not restricted to label pairs differing in a single digit, so they can
//! escape some of the local minima the digit-wise search gets stuck in. All
//! swaps keep the label set fixed, so the balance of `µ` is preserved.

use tie_graph::Graph;

use crate::labeling::Labeling;
use crate::objective::swap_delta;

/// Statistics of a polish run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolishStats {
    /// Number of label swaps applied.
    pub swaps: usize,
    /// Total improvement of the objective (Coco⁺, as a positive number).
    pub objective_gain: i64,
    /// Number of full sweeps executed.
    pub sweeps: usize,
}

/// Runs up to `max_sweeps` polishing sweeps over the cut edges of `graph`,
/// swapping endpoint labels whenever that improves Coco⁺ (or plain Coco when
/// `use_diversity` is false). Returns swap statistics.
pub fn polish(
    graph: &Graph,
    labeling: &mut Labeling,
    use_diversity: bool,
    max_sweeps: usize,
) -> PolishStats {
    let p_mask = labeling.p_mask();
    let e_mask = if use_diversity {
        labeling.ext_mask()
    } else {
        0
    };
    let mut stats = PolishStats::default();
    for _ in 0..max_sweeps {
        let mut improved_this_sweep = false;
        for (u, v, _) in graph.edges() {
            // Only consider pairs currently mapped to different PEs: swapping
            // labels of same-PE endpoints can only affect the diversity term
            // and is handled well enough by the hierarchy sweeps.
            if labeling.lp_part(u) == labeling.lp_part(v) {
                continue;
            }
            let delta = swap_delta(graph, &labeling.labels, p_mask, e_mask, u, v);
            if delta < 0 {
                labeling.labels.swap(u as usize, v as usize);
                stats.swaps += 1;
                stats.objective_gain += -delta;
                improved_this_sweep = true;
            }
        }
        stats.sweeps += 1;
        if !improved_this_sweep {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{coco, coco_plus};
    use tie_graph::generators;
    use tie_mapping::Mapping;
    use tie_partition::{partition, PartitionConfig};
    use tie_topology::{recognize_partial_cube, Topology};

    fn labeled_instance(seed: u64) -> (Graph, Labeling, Mapping) {
        let ga =
            generators::randomize_edge_weights(&generators::barabasi_albert(300, 3, seed), 4, seed);
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let part = partition(&ga, &PartitionConfig::new(16, seed));
        // Scrambled block-to-PE bijection leaves room for improvement.
        let nu = generators::random_permutation(16, seed ^ 1);
        let mapping = Mapping::from_partition(&part, &nu, 16);
        let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, seed).unwrap();
        (ga, labeling, mapping)
    }

    #[test]
    fn polish_improves_objective_and_preserves_label_set() {
        let (ga, mut labeling, _) = labeled_instance(1);
        let before_plus = coco_plus(&ga, &labeling);
        let before_set = labeling.sorted_label_set();
        let stats = polish(&ga, &mut labeling, true, 5);
        let after_plus = coco_plus(&ga, &labeling);
        assert!(after_plus <= before_plus);
        assert_eq!(before_plus - after_plus, stats.objective_gain);
        assert_eq!(labeling.sorted_label_set(), before_set);
        assert!(labeling.is_unique());
        assert!(
            stats.swaps > 0,
            "scrambled instance should admit polishing swaps"
        );
    }

    #[test]
    fn polish_without_diversity_never_worsens_plain_coco() {
        let (ga, mut labeling, _) = labeled_instance(2);
        let before = coco(&ga, &labeling);
        polish(&ga, &mut labeling, false, 5);
        assert!(coco(&ga, &labeling) <= before);
    }

    #[test]
    fn polish_is_idempotent_at_fixed_point() {
        let (ga, mut labeling, _) = labeled_instance(3);
        polish(&ga, &mut labeling, true, 20);
        let frozen = labeling.labels.clone();
        let stats = polish(&ga, &mut labeling, true, 20);
        assert_eq!(stats.swaps, 0);
        assert_eq!(labeling.labels, frozen);
    }

    #[test]
    fn polish_composes_with_timer_driver() {
        let (ga, _, mapping) = labeled_instance(4);
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let result =
            crate::enhance_mapping(&ga, &pcube, &mapping, crate::TimerConfig::new(5, 4)).unwrap();
        let mut labeling = result.labeling.clone();
        let before = coco_plus(&ga, &labeling);
        let stats = polish(&ga, &mut labeling, true, 5);
        assert!(coco_plus(&ga, &labeling) <= before);
        // Polishing after TIMER may or may not find more swaps, but it must
        // never break uniqueness.
        assert!(labeling.is_unique());
        let _ = stats;
    }
}
