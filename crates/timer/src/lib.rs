//! # tie-timer
//!
//! TIMER — Topology-Induced Mapping EnhanceR — the core contribution of
//! "Topology-induced Enhancement of Mappings" (Glantz, Predari, Meyerhenke;
//! ICPP 2018), implemented natively in Rust.
//!
//! TIMER improves a given mapping `µ : Va -> Vp` of an application graph onto
//! a processor graph that is a *partial cube*. The pipeline is:
//!
//! 1. Label the PEs with bitvectors so that graph distance in `Gp` equals
//!    Hamming distance between labels (`tie-topology`).
//! 2. Transfer the labels to the application vertices via `µ` and extend them
//!    with per-block extension bits so they become unique on `Va`
//!    ([`labeling`], Section 4 of the paper).
//! 3. Optimize the extended objective `Coco⁺ = Coco − Div` ([`objective`],
//!    Section 5) by swapping labels between application vertices inside many
//!    diverse hierarchies obtained from random permutations of the label
//!    digits ([`hierarchy`], [`assemble`], [`driver`], Section 6).
//!
//! The entry point is [`Timer::enhance`] (or the convenience function
//! [`enhance_mapping`]). The result carries both the improved mapping and
//! before/after objective values.

pub mod assemble;
pub mod driver;
pub mod hierarchy;
pub mod labeling;
pub mod objective;
pub mod parallel;
pub mod refinement;
pub mod telemetry;

pub use driver::{enhance_mapping, Timer, TimerResult};
pub use labeling::Labeling;
pub use objective::{coco, coco_plus, diversity, AcceptGate};
pub use refinement::{polish, PolishStats};
pub use telemetry::RoundTelemetry;

use tie_trace::TraceHandle;

/// Configuration of the TIMER search.
#[derive(Clone, Debug)]
pub struct TimerConfig {
    /// Number of random hierarchies `NH` to try (the paper uses 50; 10 is
    /// often enough, see Section 7.2).
    pub num_hierarchies: usize,
    /// Seed for hierarchy permutations and the extension-label shuffle.
    pub seed: u64,
    /// If false, the diversity term `Div` is dropped and plain `Coco` is
    /// optimized (ablation of the Section 5 extension).
    pub use_diversity: bool,
    /// Number of worker threads for the speculative hierarchy batches
    /// (1 = fully sequential, the paper's setting; >1 runs whole hierarchy
    /// rounds concurrently, the Section 6.3 outlook). The result is
    /// byte-identical for every thread count.
    pub threads: usize,
    /// Cap on the adaptive speculation depth (hierarchy rounds in flight per
    /// batch); 0 (the default) matches `threads`. Purely a scheduling knob —
    /// results never depend on it — and values above `threads` only add
    /// wasted work when a round is accepted, so the default is almost always
    /// right.
    pub batch: usize,
    /// Flight-recorder handle (see `tie-trace`). Disabled by default, in
    /// which case every instrumentation point is a single branch and
    /// `Timer::enhance` behaves byte-identically to the uninstrumented
    /// driver. Tracing never influences the search — it only records it.
    pub trace: TraceHandle,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            num_hierarchies: 50,
            seed: 0,
            use_diversity: true,
            threads: 1,
            batch: 0,
            trace: TraceHandle::off(),
        }
    }
}

impl TimerConfig {
    /// Config with the given number of hierarchies and seed, the defaults
    /// otherwise.
    pub fn new(num_hierarchies: usize, seed: u64) -> Self {
        TimerConfig {
            num_hierarchies,
            seed,
            ..Default::default()
        }
    }

    /// Disables the diversity term (optimize plain Coco).
    pub fn without_diversity(mut self) -> Self {
        self.use_diversity = false;
        self
    }

    /// Sets the number of worker threads for speculative hierarchy batches.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Caps the number of hierarchy rounds speculated per batch
    /// (0 = match `threads`).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Attaches a flight-recorder handle; the driver emits accept-gate,
    /// phase-timing and speculation events through it.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// The speculation-depth cap the driver actually uses: `batch` with the
    /// `0` sentinel resolved to `threads`. The single source of truth for
    /// that resolution — harness and reporting code must use this instead of
    /// re-deriving it.
    pub fn effective_batch(&self) -> usize {
        if self.batch == 0 {
            self.threads.max(1)
        } else {
            self.batch
        }
    }
}
