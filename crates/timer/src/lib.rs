//! # tie-timer
//!
//! TIMER — Topology-Induced Mapping EnhanceR — the core contribution of
//! "Topology-induced Enhancement of Mappings" (Glantz, Predari, Meyerhenke;
//! ICPP 2018), implemented natively in Rust.
//!
//! TIMER improves a given mapping `µ : Va -> Vp` of an application graph onto
//! a processor graph that is a *partial cube*. The pipeline is:
//!
//! 1. Label the PEs with bitvectors so that graph distance in `Gp` equals
//!    Hamming distance between labels (`tie-topology`).
//! 2. Transfer the labels to the application vertices via `µ` and extend them
//!    with per-block extension bits so they become unique on `Va`
//!    ([`labeling`], Section 4 of the paper).
//! 3. Optimize the extended objective `Coco⁺ = Coco − Div` ([`objective`],
//!    Section 5) by swapping labels between application vertices inside many
//!    diverse hierarchies obtained from random permutations of the label
//!    digits ([`hierarchy`], [`assemble`], [`driver`], Section 6).
//!
//! The entry point is [`Timer::enhance`] (or the convenience function
//! [`enhance_mapping`]). The result carries both the improved mapping and
//! before/after objective values.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod assemble;
pub mod context;
pub mod driver;
pub mod error;
pub mod hierarchy;
pub mod labeling;
pub mod objective;
pub mod parallel;
pub mod refinement;
pub mod telemetry;

pub use context::TopologyContext;
pub use driver::{enhance_mapping, Timer, TimerResult};
pub use error::{CancelToken, StopReason, TieError};
pub use labeling::Labeling;
pub use objective::{coco, coco_plus, diversity, AcceptGate};
pub use refinement::{polish, PolishStats};
pub use telemetry::RoundTelemetry;

use std::time::Duration;
use tie_fault::FaultHandle;
use tie_trace::TraceHandle;

/// Configuration of the TIMER search.
#[derive(Clone, Debug)]
pub struct TimerConfig {
    /// Number of random hierarchies `NH` to try (the paper uses 50; 10 is
    /// often enough, see Section 7.2).
    pub num_hierarchies: usize,
    /// Seed for hierarchy permutations and the extension-label shuffle.
    pub seed: u64,
    /// If false, the diversity term `Div` is dropped and plain `Coco` is
    /// optimized (ablation of the Section 5 extension).
    pub use_diversity: bool,
    /// Number of worker threads for the speculative hierarchy batches
    /// (1 = fully sequential, the paper's setting; >1 runs whole hierarchy
    /// rounds concurrently, the Section 6.3 outlook). The result is
    /// byte-identical for every thread count.
    pub threads: usize,
    /// Cap on the adaptive speculation depth (hierarchy rounds in flight per
    /// batch); 0 (the default) matches `threads`. Purely a scheduling knob —
    /// results never depend on it — and values above `threads` only add
    /// wasted work when a round is accepted, so the default is almost always
    /// right.
    pub batch: usize,
    /// Flight-recorder handle (see `tie-trace`). Disabled by default, in
    /// which case every instrumentation point is a single branch and
    /// `Timer::enhance` behaves byte-identically to the uninstrumented
    /// driver. Tracing never influences the search — it only records it.
    pub trace: TraceHandle,
    /// Optional wall-clock budget for the whole search. Checked at batch
    /// boundaries; on expiry the driver returns the best labeling accepted
    /// so far with [`StopReason::DeadlineExceeded`]. `None` (the default)
    /// means unbounded. Note that a wall-clock stop may land on a different
    /// round for different thread counts, so deadline-bounded runs are the
    /// one mode exempt from the byte-identity guarantee.
    pub deadline: Option<Duration>,
    /// Opt-in adaptive stopping rule: stop after this many *consecutive*
    /// rejected hierarchy rounds (counted in commit order, so the truncation
    /// point — and hence the result — is identical for every thread count).
    /// `None` (the default) disables the rule; `Some(0)` is rejected by
    /// [`TimerConfig::validate`].
    pub max_consecutive_rejections: Option<usize>,
    /// Cooperative cancellation, checked at batch boundaries. The default
    /// token is never cancelled.
    pub cancel: CancelToken,
    /// Fault-injection handle (see `tie-fault`). Disabled by default — a
    /// single branch per probe site, exactly like `trace`. Only the chaos
    /// tests and `TIE_FAULTS`-aware binaries arm it.
    pub faults: FaultHandle,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            num_hierarchies: 50,
            seed: 0,
            use_diversity: true,
            threads: 1,
            batch: 0,
            trace: TraceHandle::off(),
            deadline: None,
            max_consecutive_rejections: None,
            cancel: CancelToken::new(),
            faults: FaultHandle::off(),
        }
    }
}

impl TimerConfig {
    /// Config with the given number of hierarchies and seed, the defaults
    /// otherwise.
    pub fn new(num_hierarchies: usize, seed: u64) -> Self {
        TimerConfig {
            num_hierarchies,
            seed,
            ..Default::default()
        }
    }

    /// Disables the diversity term (optimize plain Coco).
    pub fn without_diversity(mut self) -> Self {
        self.use_diversity = false;
        self
    }

    /// Sets the number of worker threads for speculative hierarchy batches.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Caps the number of hierarchy rounds speculated per batch
    /// (0 = match `threads`).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Attaches a flight-recorder handle; the driver emits accept-gate,
    /// phase-timing and speculation events through it.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Sets a wall-clock deadline; the driver returns best-so-far with
    /// [`StopReason::DeadlineExceeded`] when it expires.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables the adaptive stopping rule: stop after `k` consecutive
    /// rejected rounds. `k` must be ≥ 1 (enforced by [`TimerConfig::validate`]).
    pub fn stop_after_rejections(mut self, k: usize) -> Self {
        self.max_consecutive_rejections = Some(k);
        self
    }

    /// Attaches a cancellation token; `token.cancel()` makes the driver
    /// return best-so-far with [`StopReason::Cancelled`] at the next batch
    /// boundary.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a fault-injection handle (chaos testing only).
    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    /// The speculation-depth cap the driver actually uses: `batch` with the
    /// `0` sentinel resolved to `threads`. The single source of truth for
    /// that resolution — harness and reporting code must use this instead of
    /// re-deriving it.
    pub fn effective_batch(&self) -> usize {
        if self.batch == 0 {
            self.threads.max(1)
        } else {
            self.batch
        }
    }

    /// Checks the config's internal sanity (the instance-independent half of
    /// validation; `Timer::enhance` also checks the config against the
    /// concrete graph/topology/mapping). Called by the driver up front so a
    /// bad config fails fast with a [`TieError::InvalidInput`] instead of
    /// misbehaving mid-run.
    pub fn validate(&self) -> Result<(), TieError> {
        if self.threads == 0 {
            return Err(TieError::InvalidInput(
                "threads must be >= 1 (0 workers cannot make progress)".into(),
            ));
        }
        if self.max_consecutive_rejections == Some(0) {
            return Err(TieError::InvalidInput(
                "max_consecutive_rejections must be >= 1 when set \
                 (0 would stop before the first round)"
                    .into(),
            ));
        }
        if self.deadline == Some(Duration::ZERO) {
            return Err(TieError::InvalidInput(
                "deadline must be > 0 when set (use cancel() for an \
                 immediate stop)"
                    .into(),
            ));
        }
        Ok(())
    }
}
