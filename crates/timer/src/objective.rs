//! The mapping objectives of Sections 1 and 5: `Coco`, the diversity term
//! `Div`, and the combined `Coco⁺ = Coco − Div`.
//!
//! With the label encoding of [`crate::Labeling`] the objectives become pure
//! bit arithmetic: for an edge `{u, v}` the Coco contribution is the Hamming
//! distance of the PE-label parts and the Div contribution the Hamming
//! distance of the extension parts, so
//!
//! ```text
//! Coco⁺ contribution = ω(u,v) · ( |(la(u)⊕la(v)) & p_mask| − |(la(u)⊕la(v)) & e_mask| ).
//! ```
//!
//! The same formula evaluated on the coarse graphs of a hierarchy (with the
//! masks truncated alongside the labels) yields the level-wise estimates used
//! during the multi-hierarchical search.

use tie_graph::{Graph, NodeId};

use crate::Labeling;

/// Signed objective value (Coco⁺ can be negative because Div is subtracted).
pub type Objective = i64;

/// Per-edge Coco⁺ cost of a pair of labels under the given digit masks.
#[inline]
pub fn label_cost(a: u64, b: u64, p_mask: u64, e_mask: u64) -> i64 {
    let x = a ^ b;
    (x & p_mask).count_ones() as i64 - (x & e_mask).count_ones() as i64
}

/// `Coco(µ)` (Eq. (3)): total communication cost of the mapping encoded in
/// the labeling.
pub fn coco(graph: &Graph, labeling: &Labeling) -> u64 {
    let p_mask = labeling.p_mask();
    graph
        .edges()
        .map(|(u, v, w)| {
            w * ((labeling.labels[u as usize] ^ labeling.labels[v as usize]) & p_mask).count_ones()
                as u64
        })
        .sum()
}

/// `Div(la)` (Eq. (12)): diversity of the extension labels.
pub fn diversity(graph: &Graph, labeling: &Labeling) -> u64 {
    let e_mask = labeling.ext_mask();
    graph
        .edges()
        .map(|(u, v, w)| {
            w * ((labeling.labels[u as usize] ^ labeling.labels[v as usize]) & e_mask).count_ones()
                as u64
        })
        .sum()
}

/// `Coco⁺(la) = Coco(la) − Div(la)` (Eq. (14)).
pub fn coco_plus(graph: &Graph, labeling: &Labeling) -> Objective {
    coco(graph, labeling) as i64 - diversity(graph, labeling) as i64
}

/// Generic objective over raw labels and masks (used on coarse levels, where
/// labels and masks have been truncated and possibly permuted).
pub fn objective_for_labels(graph: &Graph, labels: &[u64], p_mask: u64, e_mask: u64) -> Objective {
    graph
        .edges()
        .map(|(u, v, w)| {
            w as i64 * label_cost(labels[u as usize], labels[v as usize], p_mask, e_mask)
        })
        .sum()
}

/// Plain `Coco` and `Div` of raw labels in one edge scan. The driver seeds
/// its [`AcceptGate`] from this instead of scanning the edges once per term.
pub fn coco_and_div_for_labels(
    graph: &Graph,
    labels: &[u64],
    p_mask: u64,
    e_mask: u64,
) -> (u64, u64) {
    let mut coco = 0u64;
    let mut div = 0u64;
    for (u, v, w) in graph.edges() {
        let x = labels[u as usize] ^ labels[v as usize];
        coco += w * (x & p_mask).count_ones() as u64;
        div += w * (x & e_mask).count_ones() as u64;
    }
    (coco, div)
}

/// Exact change of `(Coco, Div)` between two labelings of the same graph,
/// scanning only the edges incident to relabelled vertices. A hierarchy round
/// typically relabels a fraction of the vertices, so this replaces the two
/// full edge scans the accept gate used to pay per round.
pub fn coco_div_delta(
    graph: &Graph,
    old: &[u64],
    new: &[u64],
    p_mask: u64,
    e_mask: u64,
) -> (i64, i64) {
    debug_assert_eq!(old.len(), new.len());
    let changed: Vec<bool> = old.iter().zip(new).map(|(a, b)| a != b).collect();
    let mut coco = 0i64;
    let mut div = 0i64;
    for (u, &u_changed) in changed.iter().enumerate() {
        if !u_changed {
            continue;
        }
        for (w, wt) in graph.edges_of(u as NodeId) {
            let wi = w as usize;
            // Edges between two relabelled endpoints are counted once, from
            // the lower-indexed side.
            if changed[wi] && wi < u {
                continue;
            }
            let xo = old[u] ^ old[wi];
            let xn = new[u] ^ new[wi];
            coco +=
                wt as i64 * ((xn & p_mask).count_ones() as i64 - (xo & p_mask).count_ones() as i64);
            div +=
                wt as i64 * ((xn & e_mask).count_ones() as i64 - (xo & e_mask).count_ones() as i64);
        }
    }
    (coco, div)
}

/// The driver's accept gate (Algorithm 1, lines 17–19, plus the Coco guard):
/// a candidate labeling is **kept** iff it worsens neither the search
/// objective `Coco − Div` nor plain `Coco`. A candidate with two zero deltas
/// (an equal-objective round) is kept too — it replaces the labeling — so
/// [`AcceptGate::kept`], not "strictly improved", is what
/// `TimerResult::hierarchies_accepted` reports.
///
/// The gate carries the accepted `Coco`/`Div` values across rounds and folds
/// in the per-round deltas of [`coco_div_delta`], so accepting a round costs
/// O(1) instead of a full-graph objective recompute.
#[derive(Clone, Debug)]
pub struct AcceptGate {
    coco: i64,
    div: i64,
    kept: usize,
}

impl AcceptGate {
    /// Gate seeded with the objective values of the initial labeling.
    pub fn new(coco: u64, div: u64) -> Self {
        AcceptGate {
            coco: coco as i64,
            div: div as i64,
            kept: 0,
        }
    }

    /// Accepted plain `Coco`.
    pub fn coco(&self) -> i64 {
        self.coco
    }

    /// Accepted `Div`.
    pub fn div(&self) -> i64 {
        self.div
    }

    /// Accepted search objective `Coco − Div`.
    pub fn objective(&self) -> i64 {
        self.coco - self.div
    }

    /// Number of candidates kept so far (including equal-objective ones).
    pub fn kept(&self) -> usize {
        self.kept
    }

    /// Offers a candidate by its exact `(Coco, Div)` deltas against the
    /// currently accepted labeling. Returns whether the candidate is kept;
    /// if so the deltas are folded into the accepted values.
    pub fn offer(&mut self, coco_delta: i64, div_delta: i64) -> bool {
        let objective_delta = coco_delta - div_delta;
        if objective_delta <= 0 && coco_delta <= 0 {
            self.coco += coco_delta;
            self.div += div_delta;
            self.kept += 1;
            true
        } else {
            false
        }
    }
}

/// Change of the objective if the labels of `u` and `v` were swapped
/// (negative = improvement). The edge `{u, v}` itself does not change.
pub fn swap_delta(
    graph: &Graph,
    labels: &[u64],
    p_mask: u64,
    e_mask: u64,
    u: NodeId,
    v: NodeId,
) -> i64 {
    let (lu, lv) = (labels[u as usize], labels[v as usize]);
    if lu == lv {
        return 0;
    }
    let mut delta = 0i64;
    for (w, wt) in graph.edges_of(u) {
        if w == v {
            continue;
        }
        let lw = labels[w as usize];
        delta +=
            wt as i64 * (label_cost(lv, lw, p_mask, e_mask) - label_cost(lu, lw, p_mask, e_mask));
    }
    for (w, wt) in graph.edges_of(v) {
        if w == u {
            continue;
        }
        let lw = labels[w as usize];
        delta +=
            wt as i64 * (label_cost(lu, lw, p_mask, e_mask) - label_cost(lv, lw, p_mask, e_mask));
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_graph::traversal::all_pairs_distances;
    use tie_mapping::{identity_mapping, Mapping};
    use tie_partition::{partition, PartitionConfig};
    use tie_topology::{recognize_partial_cube, Topology};

    fn setup() -> (Graph, Labeling, Mapping, Topology) {
        let ga = generators::randomize_edge_weights(&generators::barabasi_albert(250, 3, 3), 4, 5);
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let part = partition(&ga, &PartitionConfig::new(16, 1));
        let mapping = identity_mapping(&part, 16);
        let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, 3).unwrap();
        (ga, labeling, mapping, topo)
    }

    #[test]
    fn coco_matches_distance_definition() {
        // Coco from labels must equal the textbook definition with BFS
        // distances in Gp (Eq. (3)).
        let (ga, labeling, mapping, topo) = setup();
        let dist = all_pairs_distances(&topo.graph);
        let expected: u64 = ga
            .edges()
            .map(|(u, v, w)| w * dist.get(mapping.pe_of(u), mapping.pe_of(v)) as u64)
            .sum();
        assert_eq!(coco(&ga, &labeling), expected);
    }

    #[test]
    fn coco_plus_is_coco_minus_div() {
        let (ga, labeling, _, _) = setup();
        assert_eq!(
            coco_plus(&ga, &labeling),
            coco(&ga, &labeling) as i64 - diversity(&ga, &labeling) as i64
        );
    }

    #[test]
    fn objective_for_labels_agrees_with_struct_version() {
        let (ga, labeling, _, _) = setup();
        let obj = objective_for_labels(
            &ga,
            &labeling.labels,
            labeling.p_mask(),
            labeling.ext_mask(),
        );
        assert_eq!(obj, coco_plus(&ga, &labeling));
    }

    #[test]
    fn swap_delta_matches_recomputation() {
        let (ga, labeling, _, _) = setup();
        let (p_mask, e_mask) = (labeling.p_mask(), labeling.ext_mask());
        let base = objective_for_labels(&ga, &labeling.labels, p_mask, e_mask);
        // Check a spread of vertex pairs, adjacent and not.
        for (u, v) in [(0u32, 1u32), (5, 17), (3, 200), (10, 11), (40, 41)] {
            let mut swapped = labeling.labels.clone();
            swapped.swap(u as usize, v as usize);
            let expected = objective_for_labels(&ga, &swapped, p_mask, e_mask) - base;
            assert_eq!(
                swap_delta(&ga, &labeling.labels, p_mask, e_mask, u, v),
                expected
            );
        }
    }

    #[test]
    fn coco_and_div_single_scan_agrees_with_separate_scans() {
        let (ga, labeling, _, _) = setup();
        let (c, d) = coco_and_div_for_labels(
            &ga,
            &labeling.labels,
            labeling.p_mask(),
            labeling.ext_mask(),
        );
        assert_eq!(c, coco(&ga, &labeling));
        assert_eq!(d, diversity(&ga, &labeling));
    }

    #[test]
    fn coco_div_delta_matches_full_recomputation() {
        let (ga, labeling, _, _) = setup();
        let (p_mask, e_mask) = (labeling.p_mask(), labeling.ext_mask());
        let old = &labeling.labels;
        let (c0, d0) = coco_and_div_for_labels(&ga, old, p_mask, e_mask);
        // A wholesale relabeling touching a scattered set of vertices, the
        // shape a hierarchy round produces: swap several disjoint pairs and
        // rotate one triple (adjacent and non-adjacent vertices alike).
        let mut new = old.clone();
        for (u, v) in [(0usize, 1usize), (5, 17), (3, 200), (40, 41), (100, 7)] {
            new.swap(u, v);
        }
        let tmp = new[60];
        new[60] = new[61];
        new[61] = new[62];
        new[62] = tmp;
        let (c1, d1) = coco_and_div_for_labels(&ga, &new, p_mask, e_mask);
        assert_eq!(
            coco_div_delta(&ga, old, &new, p_mask, e_mask),
            (c1 as i64 - c0 as i64, d1 as i64 - d0 as i64)
        );
        // Identical labelings have zero delta.
        assert_eq!(coco_div_delta(&ga, old, old, p_mask, e_mask), (0, 0));
    }

    #[test]
    fn accept_gate_keeps_equal_objective_candidates_and_counts_them() {
        let mut gate = AcceptGate::new(100, 10);
        assert_eq!(gate.objective(), 90);
        // Strict improvement: kept.
        assert!(gate.offer(-5, 0));
        assert_eq!((gate.coco(), gate.div(), gate.kept()), (95, 10, 1));
        // Equal-objective candidate (both deltas zero): also kept — the
        // labels are replaced — and therefore counted.
        assert!(gate.offer(0, 0));
        assert_eq!(gate.kept(), 2);
        // Worse objective: rejected, values untouched.
        assert!(!gate.offer(3, 0));
        assert_eq!((gate.coco(), gate.kept()), (95, 2));
        // Div growing faster than Coco shrinks the objective but would drag
        // plain Coco upward: the Coco guard rejects it.
        assert!(!gate.offer(2, 7));
        assert_eq!((gate.coco(), gate.div(), gate.kept()), (95, 10, 2));
        // Div-only improvement with flat Coco: kept.
        assert!(gate.offer(0, 4));
        assert_eq!((gate.coco(), gate.div(), gate.kept()), (95, 14, 3));
    }

    #[test]
    fn swapping_identical_labels_changes_nothing() {
        let g = generators::path_graph(3);
        let labels = vec![5u64, 5, 6];
        assert_eq!(swap_delta(&g, &labels, !0, 0, 0, 1), 0);
    }

    #[test]
    fn diversity_counts_extension_bits_only() {
        // Two adjacent vertices in the same block with different extensions
        // contribute to Div but not to Coco.
        let g = generators::path_graph(2);
        let mut labeling = {
            let topo = Topology::path(2);
            let pcube = recognize_partial_cube(&topo.graph).unwrap();
            let mapping = Mapping::new(vec![0, 0], 2);
            Labeling::from_mapping(&g, &pcube, &mapping, 0).unwrap()
        };
        // Force known labels: same lp part (PE 0), different extension bits.
        let lp0 = labeling.labels[0] >> labeling.ext_bits;
        labeling.labels[0] = lp0 << labeling.ext_bits;
        labeling.labels[1] = (lp0 << labeling.ext_bits) | 1;
        assert_eq!(coco(&g, &labeling), 0);
        assert_eq!(diversity(&g, &labeling), 1);
        assert_eq!(coco_plus(&g, &labeling), -1);
    }

    #[test]
    fn perfect_mapping_of_grid_onto_itself_has_minimal_coco() {
        // Application graph identical to the processor grid with the identity
        // mapping of one vertex per PE: every edge costs exactly one hop.
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let ga = topo.graph.clone();
        let mapping = Mapping::new((0..16u32).collect(), 16);
        let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, 0).unwrap();
        assert_eq!(coco(&ga, &labeling), ga.total_edge_weight());
    }
}
