//! Vertex labels of the application graph (Section 4 of the paper).
//!
//! Every application vertex `va` gets a label
//! `la(va) = lp(µ(va)) ∘ le(va)` — the partial-cube label of its PE (the
//! "left"/high part) concatenated with an extension (the "right"/low part)
//! that makes labels unique within each block. In the `u64` encoding used
//! here the extension occupies the low `ext_bits` bits and the PE label the
//! next `dim_p` bits, so truncating digits from the right (as the hierarchy
//! contraction does) first consumes the extension and then the PE label.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tie_graph::{Graph, NodeId};
use tie_mapping::Mapping;
use tie_topology::PartialCubeLabeling;

use crate::error::TieError;

/// The labeling `la : Va -> {0,1}^dim` of the application vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Labeling {
    /// Label of every application vertex (low `dim` bits meaningful).
    pub labels: Vec<u64>,
    /// Total number of digits `dim_Ga = dim_p + ext_bits`.
    pub dim: usize,
    /// Number of PE-label digits (`dim_Gp`).
    pub dim_p: usize,
    /// Number of extension digits.
    pub ext_bits: usize,
    /// PE id for every PE label, sorted by label for binary-search lookup
    /// (to convert labels back into a mapping).
    pe_of_label: Vec<(u64, u32)>,
    /// Number of PEs of the target machine.
    num_pes: usize,
}

impl Labeling {
    /// Builds the initial labeling from a mapping, following Section 4:
    /// the extension width is `max_vp ceil(log2 |µ^{-1}(vp)|)`; within each
    /// block the extension values `0..size` are assigned in a random order
    /// (the paper shuffles them to provide a good random starting point).
    ///
    /// # Errors
    /// Returns [`TieError::InvalidInput`] if the mapping and graph disagree
    /// on the vertex count, and [`TieError::IncompatibleTopology`] if the
    /// topology and mapping disagree on the PE count, the PE labels are not
    /// pairwise distinct, or the total label width would exceed 64 bits.
    pub fn from_mapping(
        graph: &Graph,
        pcube: &PartialCubeLabeling,
        mapping: &Mapping,
        seed: u64,
    ) -> Result<Self, TieError> {
        if graph.num_vertices() != mapping.num_tasks() {
            return Err(TieError::InvalidInput(format!(
                "graph/mapping size mismatch: graph has {} vertices, \
                 mapping covers {} tasks",
                graph.num_vertices(),
                mapping.num_tasks()
            )));
        }
        if pcube.num_pes() != mapping.num_pes() {
            return Err(TieError::IncompatibleTopology(format!(
                "topology/mapping PE count mismatch: labeling has {} PEs, \
                 mapping targets {}",
                pcube.num_pes(),
                mapping.num_pes()
            )));
        }
        let n = graph.num_vertices();
        let num_pes = mapping.num_pes();

        // Group vertices by PE.
        let mut blocks: Vec<Vec<NodeId>> = vec![Vec::new(); num_pes];
        for v in graph.vertices() {
            blocks[mapping.pe_of(v) as usize].push(v);
        }
        let max_block = blocks.iter().map(|b| b.len()).max().unwrap_or(0);
        let ext_bits = if max_block <= 1 {
            0
        } else {
            (usize::BITS - (max_block - 1).leading_zeros()) as usize
        };
        let dim_p = pcube.dim;
        let dim = dim_p + ext_bits;
        if dim > 64 {
            return Err(TieError::IncompatibleTopology(format!(
                "label width {dim} ({dim_p} PE digits + {ext_bits} extension \
                 digits) exceeds the 64-bit label encoding"
            )));
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels = vec![0u64; n];
        for (pe, block) in blocks.iter().enumerate() {
            let mut order = block.clone();
            order.shuffle(&mut rng);
            let lp = pcube.labels[pe];
            for (idx, &v) in order.iter().enumerate() {
                labels[v as usize] = (lp << ext_bits) | idx as u64;
            }
        }
        let mut pe_of_label: Vec<(u64, u32)> = pcube
            .labels
            .iter()
            .enumerate()
            .map(|(pe, &l)| (l, pe as u32))
            .collect();
        pe_of_label.sort_unstable_by_key(|&(l, _)| l);
        // A duplicate PE label would make `to_mapping` send two PEs' worth
        // of vertices to one PE — reject the inconsistent labeling instead.
        let distinct = num_pes - pe_of_label.windows(2).filter(|w| w[0].0 == w[1].0).count();
        if distinct != num_pes {
            return Err(TieError::IncompatibleTopology(format!(
                "PE labels are not pairwise distinct ({distinct} labels for {num_pes} \
                 PEs); the topology labeling is internally inconsistent"
            )));
        }
        Ok(Labeling {
            labels,
            dim,
            dim_p,
            ext_bits,
            pe_of_label,
            num_pes,
        })
    }

    /// Number of labelled vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of PEs of the target machine.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// PE-label ("left") part of vertex `v`'s label.
    #[inline]
    pub fn lp_part(&self, v: NodeId) -> u64 {
        self.labels[v as usize] >> self.ext_bits
    }

    /// Extension ("right") part of vertex `v`'s label.
    #[inline]
    pub fn le_part(&self, v: NodeId) -> u64 {
        self.labels[v as usize] & self.ext_mask()
    }

    /// Bit mask of the extension digits.
    #[inline]
    pub fn ext_mask(&self) -> u64 {
        if self.ext_bits == 0 {
            0
        } else {
            (1u64 << self.ext_bits) - 1
        }
    }

    /// Bit mask of the PE-label digits (in un-permuted label space).
    #[inline]
    pub fn p_mask(&self) -> u64 {
        let full = if self.dim == 64 {
            u64::MAX
        } else {
            (1u64 << self.dim) - 1
        };
        full & !self.ext_mask()
    }

    /// PE encoded in vertex `v`'s label.
    ///
    /// # Panics
    /// Panics if the label's PE prefix is not in the labeling's PE table —
    /// only possible if an internal invariant broke, since the table is
    /// built from the same labels at construction.
    pub fn pe_of_vertex(&self, v: NodeId) -> u32 {
        let lp = self.lp_part(v);
        match self.pe_of_label.binary_search_by_key(&lp, |&(l, _)| l) {
            Ok(i) => self.pe_of_label[i].1,
            // tie-lint: allow(no-panic-paths) — documented invariant: PE table is derived from these labels
            Err(_) => panic!("label prefix {lp:#b} does not name a PE"),
        }
    }

    /// Converts the labeling back into a mapping `µ : Va -> Vp`.
    pub fn to_mapping(&self) -> Mapping {
        let assignment: Vec<u32> = (0..self.labels.len() as NodeId)
            .map(|v| self.pe_of_vertex(v))
            .collect();
        Mapping::new(assignment, self.num_pes)
    }

    /// True if the labels are pairwise distinct.
    pub fn is_unique(&self) -> bool {
        let mut sorted = self.labels.clone();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    }

    /// The label multiset as a sorted vector (used to verify that label swaps
    /// preserve the label set, which in turn preserves the balance of `µ`).
    pub fn sorted_label_set(&self) -> Vec<u64> {
        let mut sorted = self.labels.clone();
        sorted.sort_unstable();
        sorted
    }

    /// Replaces the label vector (used by the driver after a hierarchy round).
    pub(crate) fn set_labels(&mut self, labels: Vec<u64>) {
        debug_assert_eq!(labels.len(), self.labels.len());
        self.labels = labels;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_mapping::identity_mapping;
    use tie_partition::{partition, PartitionConfig};
    use tie_topology::{recognize_partial_cube, Topology};

    fn setup(seed: u64) -> (Graph, PartialCubeLabeling, Mapping) {
        let ga = generators::barabasi_albert(300, 3, seed);
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let part = partition(&ga, &PartitionConfig::new(16, seed));
        let mapping = identity_mapping(&part, 16);
        (ga, pcube, mapping)
    }

    #[test]
    fn labels_are_unique_and_encode_mapping() {
        let (ga, pcube, mapping) = setup(1);
        let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, 7).unwrap();
        assert!(labeling.is_unique());
        // Requirement 1 of Section 4: la encodes µ.
        for v in ga.vertices() {
            assert_eq!(labeling.pe_of_vertex(v), mapping.pe_of(v));
        }
        assert_eq!(labeling.to_mapping(), mapping);
    }

    #[test]
    fn dimensions_follow_equation_6() {
        let (ga, pcube, mapping) = setup(2);
        let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, 3).unwrap();
        let max_block = mapping.load_per_pe().into_iter().max().unwrap();
        let expected_ext = (max_block as f64).log2().ceil() as usize;
        assert_eq!(labeling.ext_bits, expected_ext);
        assert_eq!(labeling.dim, pcube.dim + expected_ext);
        assert_eq!(labeling.dim_p, pcube.dim);
    }

    #[test]
    fn lp_part_distance_equals_pe_distance() {
        // Requirement 2 of Section 4: the PE distance is readable from labels.
        let (ga, pcube, mapping) = setup(3);
        let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, 1).unwrap();
        let dist = tie_graph::traversal::all_pairs_distances(&Topology::grid2d(4, 4).graph);
        for (u, v, _) in ga.edges().take(500) {
            let h = (labeling.lp_part(u) ^ labeling.lp_part(v)).count_ones();
            assert_eq!(h, dist.get(mapping.pe_of(u), mapping.pe_of(v)));
        }
    }

    #[test]
    fn masks_are_disjoint_and_cover_dim() {
        let (ga, pcube, mapping) = setup(4);
        let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, 2).unwrap();
        assert_eq!(labeling.p_mask() & labeling.ext_mask(), 0);
        assert_eq!(
            (labeling.p_mask() | labeling.ext_mask()).count_ones() as usize,
            labeling.dim
        );
    }

    #[test]
    fn extension_shuffle_is_seed_dependent_but_structure_preserving() {
        let (ga, pcube, mapping) = setup(5);
        let a = Labeling::from_mapping(&ga, &pcube, &mapping, 1).unwrap();
        let b = Labeling::from_mapping(&ga, &pcube, &mapping, 2).unwrap();
        // Same label multiset, same mapping, (very likely) different order.
        assert_eq!(a.sorted_label_set(), b.sorted_label_set());
        assert_eq!(a.to_mapping(), b.to_mapping());
        assert_ne!(a.labels, b.labels);
    }

    #[test]
    fn single_vertex_per_pe_needs_no_extension() {
        let ga = generators::cycle_graph(16);
        let topo = Topology::hypercube(4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let mapping = Mapping::new((0..16u32).collect(), 16);
        let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, 0).unwrap();
        assert_eq!(labeling.ext_bits, 0);
        assert_eq!(labeling.dim, 4);
        assert!(labeling.is_unique());
    }

    #[test]
    fn size_mismatch_is_invalid_input() {
        let (_, pcube, mapping) = setup(6);
        let wrong = generators::cycle_graph(7); // mapping covers 300 tasks
        let err = Labeling::from_mapping(&wrong, &pcube, &mapping, 0).unwrap_err();
        assert!(matches!(err, TieError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn pe_count_mismatch_is_incompatible_topology() {
        let (ga, pcube, _) = setup(7);
        let wrong = Mapping::new(vec![0; ga.num_vertices()], 4); // pcube has 16 PEs
        let err = Labeling::from_mapping(&ga, &pcube, &wrong, 0).unwrap_err();
        assert!(matches!(err, TieError::IncompatibleTopology(_)), "{err}");
    }

    #[test]
    fn oversized_label_width_is_incompatible_topology() {
        // A 60-digit hypercube labeling plus ≥5 extension bits overflows u64.
        let ga = generators::cycle_graph(64);
        let pcube = PartialCubeLabeling {
            labels: (0..2u64).collect(),
            dim: 60,
            edge_class: Vec::new(),
        };
        let mapping = Mapping::new((0..64).map(|v| (v % 2) as u32).collect::<Vec<u32>>(), 2);
        let err = Labeling::from_mapping(&ga, &pcube, &mapping, 0).unwrap_err();
        assert!(matches!(err, TieError::IncompatibleTopology(_)), "{err}");
    }

    #[test]
    fn duplicate_pe_labels_are_rejected() {
        let ga = generators::cycle_graph(8);
        let pcube = PartialCubeLabeling {
            labels: vec![0, 1, 1, 2],
            dim: 2,
            edge_class: Vec::new(),
        };
        let mapping = Mapping::new((0..8).map(|v| (v % 4) as u32).collect::<Vec<u32>>(), 4);
        let err = Labeling::from_mapping(&ga, &pcube, &mapping, 0).unwrap_err();
        assert!(matches!(err, TieError::IncompatibleTopology(_)), "{err}");
    }
}
