//! Label-driven hierarchy construction with interleaved swap sweeps
//! (the inner loop of Algorithm 1, lines 9–14).
//!
//! Starting from the application graph with (digit-permuted) labels, each
//! round first sweeps over all vertex pairs whose labels agree on everything
//! but the last digit and swaps their labels whenever that improves the
//! (level-local) `Coco⁺` estimate, and then contracts such pairs into single
//! vertices while cutting off the last digit. Repeating this until only two
//! digits remain yields a hierarchy of graphs `G¹, …, G^{dim−1}` whose labels
//! encode a recursive bipartition of `Ga` induced by the processor topology —
//! oblivious to `Ga`'s own edge structure, which is exactly the diversity the
//! TIMER search exploits.

use std::time::Instant;

use tie_graph::contract::{contract_into, ContractScratch};
use tie_graph::{Graph, NodeId};
use tie_trace::{Phase, PhaseTimes, TraceEvent, TraceHandle, TraceLevel};

use crate::objective::swap_delta;
use crate::parallel::parallel_sweep;

/// One level of a TIMER hierarchy.
#[derive(Clone, Debug)]
pub struct Level {
    /// The (possibly contracted) graph at this level.
    pub graph: Graph,
    /// Vertex labels at this level (already truncated by the level index).
    pub labels: Vec<u64>,
    /// For every vertex of this level, the vertex of the next coarser level
    /// it is contracted into. Empty for the coarsest level.
    pub fine_to_coarse: Vec<NodeId>,
}

/// A full hierarchy: `levels[0]` is the application graph itself (with the
/// labels as left behind by the level-1 swap sweep), `levels.last()` the
/// coarsest graph with 2-digit labels.
#[derive(Clone, Debug)]
pub struct HierarchyRun {
    /// Levels from finest to coarsest.
    pub levels: Vec<Level>,
    /// Number of label swaps performed across all sweeps.
    pub total_swaps: usize,
    /// Wall-clock spent in the sweeps and contractions of this hierarchy
    /// (accumulated per [`Phase`]; always collected, the cost is two
    /// monotonic-clock reads per level).
    pub phases: PhaseTimes,
}

/// Reusable buffers for the prefix-bucket pair search of
/// [`collect_swap_pairs`]. One hierarchy performs `dim − 1` sweeps; sharing
/// one scratch across all of them (and across candidate-pair collection in
/// the contraction) avoids reallocating the buckets on every level.
#[derive(Clone, Debug, Default)]
pub struct SweepScratch {
    /// `(label >> 1, vertex)` pairs, sorted to group prefix buckets.
    keyed: Vec<(u64, NodeId)>,
    /// The collected candidate pairs, in prefix order.
    pairs: Vec<(NodeId, NodeId)>,
}

/// Collects the candidate swap pairs of a level into `scratch.pairs`: for
/// every label prefix (`label >> 1`) shared by at least two vertices, the two
/// lowest-indexed such vertices, emitted in ascending prefix order. The
/// result is independent of whatever a previous collection left in the
/// scratch.
pub fn collect_swap_pairs(labels: &[u64], scratch: &mut SweepScratch) {
    scratch.keyed.clear();
    scratch.keyed.extend(
        labels
            .iter()
            .enumerate()
            .map(|(v, &l)| (l >> 1, v as NodeId)),
    );
    scratch.keyed.sort_unstable();
    scratch.pairs.clear();
    let mut i = 0;
    while i < scratch.keyed.len() {
        let key = scratch.keyed[i].0;
        let mut j = i + 1;
        while j < scratch.keyed.len() && scratch.keyed[j].0 == key {
            j += 1;
        }
        if j - i >= 2 {
            scratch
                .pairs
                .push((scratch.keyed[i].1, scratch.keyed[i + 1].1));
        }
        i = j;
    }
}

/// Returns the candidate swap pairs of a level: all pairs of vertices whose
/// labels agree on everything but the least significant digit, in
/// deterministic (label) order. Allocating convenience wrapper around
/// [`collect_swap_pairs`].
pub fn swap_pairs(labels: &[u64]) -> Vec<(NodeId, NodeId)> {
    let mut scratch = SweepScratch::default();
    collect_swap_pairs(labels, &mut scratch);
    scratch.pairs
}

/// Sequential swap sweep: for every candidate pair, swap the labels if that
/// strictly decreases the objective. Returns the number of swaps performed.
pub fn sweep(graph: &Graph, labels: &mut [u64], p_mask: u64, e_mask: u64) -> usize {
    let mut scratch = SweepScratch::default();
    sweep_with(graph, labels, p_mask, e_mask, &mut scratch)
}

/// [`sweep`] with caller-provided scratch buffers, for reuse across the
/// levels of a hierarchy.
pub fn sweep_with(
    graph: &Graph,
    labels: &mut [u64],
    p_mask: u64,
    e_mask: u64,
    scratch: &mut SweepScratch,
) -> usize {
    collect_swap_pairs(labels, scratch);
    let mut swaps = 0usize;
    for &(u, v) in &scratch.pairs {
        if swap_delta(graph, labels, p_mask, e_mask, u, v) < 0 {
            labels.swap(u as usize, v as usize);
            swaps += 1;
        }
    }
    swaps
}

/// Reusable buffers for a full hierarchy construction: the sweep's
/// prefix-bucket pair search ([`SweepScratch`]), the sorted-deduped prefix
/// array of the contraction, and the counting-sort buffers of the CSR
/// contraction kernel ([`ContractScratch`]). One scratch serves all
/// `dim − 1` levels of a hierarchy — and, threaded through the driver's
/// speculative workers, all rounds a worker ever executes: buffers grow to
/// the largest level once and are never reallocated again. Results never
/// depend on leftover scratch contents.
#[derive(Clone, Debug, Default)]
pub struct HierarchyScratch {
    /// Pair-search buffers shared by the sweeps.
    sweep: SweepScratch,
    /// Sorted, deduped label prefixes of the level being contracted.
    prefixes: Vec<u64>,
    /// Sorted label multiset of the current level. Sweeps only swap labels,
    /// so the hierarchy loop sorts once per round and every contraction
    /// derives its prefix array from this set in linear time.
    sorted_set: Vec<u64>,
    /// Counting-sort buffers of the CSR contraction kernel.
    contract: ContractScratch,
}

impl HierarchyScratch {
    /// A scratch pre-sized for hierarchies over graphs of roughly `n`
    /// vertices (the finest level dominates every buffer's size). Purely a
    /// latency hint — an undersized scratch grows on first use and an
    /// oversized one only wastes memory; results never depend on it.
    pub fn with_vertex_capacity(n: usize) -> Self {
        HierarchyScratch {
            sweep: SweepScratch {
                keyed: Vec::with_capacity(n),
                pairs: Vec::with_capacity(n / 2),
            },
            prefixes: Vec::with_capacity(n),
            sorted_set: Vec::with_capacity(n),
            contract: ContractScratch::default(),
        }
    }
}

/// Contracts every candidate pair (vertices sharing all but the last label
/// digit) into a single coarse vertex and cuts the last digit off every
/// label. Unpaired vertices are carried over unchanged (minus the digit).
/// Allocating convenience wrapper around [`contract_level_with`].
pub fn contract_level(graph: &Graph, labels: &[u64]) -> (Graph, Vec<u64>, Vec<NodeId>) {
    contract_level_with(graph, labels, &mut HierarchyScratch::default())
}

/// [`contract_level`] with caller-provided scratch: the coarse vertex ids
/// are the ranks of the distinct label prefixes (sorted prefix order, for
/// determinism), found by binary search over the sorted-deduped prefix
/// array; the coarse graph is built by the sort-based CSR kernel
/// ([`contract_into`]) — no hash map anywhere on the path.
pub fn contract_level_with(
    graph: &Graph,
    labels: &[u64],
    scratch: &mut HierarchyScratch,
) -> (Graph, Vec<u64>, Vec<NodeId>) {
    scratch.sorted_set.clear();
    scratch.sorted_set.extend_from_slice(labels);
    scratch.sorted_set.sort_unstable();
    contract_level_presorted(graph, labels, scratch)
}

/// [`contract_level_with`] for callers that already hold the sorted label
/// multiset in `scratch.sorted_set` (the hierarchy loop: sweeps only swap
/// labels, and each contraction's `coarse_labels` is the next level's set
/// already sorted). Skips the per-level sort; everything else is identical.
fn contract_level_presorted(
    graph: &Graph,
    labels: &[u64],
    scratch: &mut HierarchyScratch,
) -> (Graph, Vec<u64>, Vec<NodeId>) {
    let n = graph.num_vertices();
    debug_assert!(
        {
            let mut set = labels.to_vec();
            set.sort_unstable();
            set == scratch.sorted_set
        },
        "sorted_set out of sync with the level's label multiset"
    );
    let prefixes = &mut scratch.prefixes;
    prefixes.clear();
    prefixes.extend(scratch.sorted_set.iter().map(|&l| l >> 1));
    prefixes.dedup();

    let mut fine_to_coarse = vec![0 as NodeId; n];
    for (v, &l) in labels.iter().enumerate() {
        fine_to_coarse[v] = match prefixes.binary_search(&(l >> 1)) {
            Ok(i) => i as NodeId,
            // Unreachable: every prefix was inserted into the array above.
            Err(_) => unreachable!("label prefix missing from its own prefix array"),
        };
    }
    let coarse_labels: Vec<u64> = prefixes.clone();
    // The coarse level's label multiset *is* the (sorted) prefix array:
    // keep `sorted_set` current so the next contraction skips its sort.
    scratch.sorted_set.clear();
    scratch.sorted_set.extend_from_slice(&coarse_labels);
    let coarse_graph = contract_into(
        graph,
        &fine_to_coarse,
        coarse_labels.len(),
        &mut scratch.contract,
    );
    (coarse_graph, coarse_labels, fine_to_coarse)
}

/// Builds the full hierarchy for one permutation round: alternating swap
/// sweeps and contractions until the labels have only two digits left
/// (Algorithm 1, lines 9–14). `p_mask`/`e_mask` are the PE/extension digit
/// masks *in the permuted label space*; they are truncated alongside the
/// labels on coarser levels. `threads > 1` parallelizes the level-1 sweep
/// (the by far most expensive one).
pub fn build_hierarchy(
    graph: &Graph,
    labels: Vec<u64>,
    dim: usize,
    p_mask: u64,
    e_mask: u64,
    threads: usize,
) -> HierarchyRun {
    build_hierarchy_traced(
        graph,
        labels,
        dim,
        p_mask,
        e_mask,
        threads,
        None,
        &TraceHandle::off(),
        &mut HierarchyScratch::default(),
    )
}

/// [`build_hierarchy`] with flight-recorder context and caller-provided
/// scratch: per-level sweep and contraction spans are emitted through
/// `trace` (at `TraceLevel::Debug`) and tagged with `hierarchy_round` so
/// concurrent speculated rounds stay distinguishable in the recording.
/// `scratch` carries the sweep and contraction buffers across all levels —
/// and, when the caller keeps it alive (as the driver's speculative workers
/// do), across hierarchy rounds. The result never depends on what a
/// previous run left in the scratch.
#[allow(clippy::too_many_arguments)] // mirrors build_hierarchy + trace context
pub fn build_hierarchy_traced(
    graph: &Graph,
    labels: Vec<u64>,
    dim: usize,
    p_mask: u64,
    e_mask: u64,
    threads: usize,
    hierarchy_round: Option<usize>,
    trace: &TraceHandle,
    scratch: &mut HierarchyScratch,
) -> HierarchyRun {
    let mut levels: Vec<Level> = Vec::new();
    let mut total_swaps = 0usize;
    let mut current_graph = graph.clone();
    let mut current_labels = labels;
    let mut phases = PhaseTimes::default();
    // Cheap enough to collect always; only *emission* is gated on the level.
    let per_level = trace.enabled(TraceLevel::Debug);

    // Seed the sorted label multiset once per hierarchy: sweeps only swap
    // labels and every contraction leaves the next level's set behind
    // sorted, so this is the only full label sort of the whole round. Timed
    // as contract work — it exists purely to feed the contractions.
    let t = Instant::now();
    scratch.sorted_set.clear();
    scratch.sorted_set.extend_from_slice(&current_labels);
    scratch.sorted_set.sort_unstable();
    phases.add(Phase::Contract, t.elapsed().as_micros() as u64);

    // Paper: for i = 2 .. dim_Ga - 1; sweep on G^{i-1}, contract into G^i.
    let rounds = dim.saturating_sub(2);
    for round in 0..rounds {
        let (pm, em) = (p_mask >> round, e_mask >> round);
        let t = Instant::now();
        total_swaps += if round == 0 && threads > 1 {
            parallel_sweep(&current_graph, &mut current_labels, pm, em, threads)
        } else {
            sweep_with(
                &current_graph,
                &mut current_labels,
                pm,
                em,
                &mut scratch.sweep,
            )
        };
        let sweep_us = t.elapsed().as_micros() as u64;
        phases.add(Phase::Sweep, sweep_us);
        if per_level {
            trace.emit(TraceEvent::Phase {
                phase: Phase::Sweep,
                round: hierarchy_round,
                level: Some(round),
                elapsed_us: sweep_us,
            });
        }
        let t = Instant::now();
        let (coarse_graph, coarse_labels, fine_to_coarse) =
            contract_level_presorted(&current_graph, &current_labels, scratch);
        let contract_us = t.elapsed().as_micros() as u64;
        phases.add(Phase::Contract, contract_us);
        if per_level {
            trace.emit(TraceEvent::Phase {
                phase: Phase::Contract,
                round: hierarchy_round,
                level: Some(round),
                elapsed_us: contract_us,
            });
        }
        levels.push(Level {
            graph: current_graph,
            labels: current_labels,
            fine_to_coarse,
        });
        current_graph = coarse_graph;
        current_labels = coarse_labels;
    }
    // Coarsest level (no further contraction).
    levels.push(Level {
        graph: current_graph,
        labels: current_labels,
        fine_to_coarse: Vec::new(),
    });
    HierarchyRun {
        levels,
        total_swaps,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::objective_for_labels;
    use proptest::prelude::*;
    use tie_graph::{generators, GraphBuilder};

    /// The pre-kernel contraction path (prefix `HashMap` + `GraphBuilder`
    /// edge coalescer), kept verbatim as the oracle the sort-based kernel is
    /// pinned against: `contract_level` must reproduce this byte for byte.
    fn contract_level_reference(graph: &Graph, labels: &[u64]) -> (Graph, Vec<u64>, Vec<NodeId>) {
        use std::collections::HashMap;
        let n = graph.num_vertices();
        let mut prefixes: Vec<u64> = labels.iter().map(|&l| l >> 1).collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        let coarse_of_prefix: HashMap<u64, NodeId> = prefixes
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as NodeId))
            .collect();

        let mut fine_to_coarse = vec![0 as NodeId; n];
        for (v, &l) in labels.iter().enumerate() {
            fine_to_coarse[v] = coarse_of_prefix[&(l >> 1)];
        }
        let coarse_n = prefixes.len();
        let coarse_labels: Vec<u64> = prefixes;

        let mut builder = GraphBuilder::new(coarse_n);
        let mut coarse_weights = vec![0u64; coarse_n];
        for v in graph.vertices() {
            coarse_weights[fine_to_coarse[v as usize] as usize] += graph.vertex_weight(v);
        }
        for (c, &w) in coarse_weights.iter().enumerate() {
            builder.set_vertex_weight(c as NodeId, w);
        }
        for (u, v, w) in graph.edges() {
            let (cu, cv) = (fine_to_coarse[u as usize], fine_to_coarse[v as usize]);
            if cu != cv {
                builder.add_edge(cu, cv, w);
            }
        }
        (builder.build(), coarse_labels, fine_to_coarse)
    }

    /// A small instance with unique 4-digit labels on an 8-vertex graph.
    fn toy() -> (Graph, Vec<u64>) {
        let g = generators::cycle_graph(8);
        // Unique labels 0..8 (4 digits: one "extension" digit + 3 "PE" digits).
        let labels: Vec<u64> = (0..8u64).collect();
        (g, labels)
    }

    #[test]
    fn swap_pairs_are_disjoint_and_complete() {
        let labels: Vec<u64> = vec![0b000, 0b001, 0b010, 0b100, 0b101, 0b111];
        let pairs = swap_pairs(&labels);
        // Prefixes: 00 -> (0,1), 01 -> (2) unpaired, 10 -> (3,4), 11 -> (5) unpaired.
        assert_eq!(pairs.len(), 2);
        let mut used = std::collections::HashSet::new();
        for (a, b) in &pairs {
            assert!(used.insert(*a));
            assert!(used.insert(*b));
            assert_eq!(labels[*a as usize] >> 1, labels[*b as usize] >> 1);
            assert_ne!(labels[*a as usize], labels[*b as usize]);
        }
    }

    #[test]
    fn sweep_never_increases_objective() {
        let (g, labels) = toy();
        let p_mask = 0b1110;
        let e_mask = 0b0001;
        let mut l = labels.clone();
        let before = objective_for_labels(&g, &l, p_mask, e_mask);
        let swaps = sweep(&g, &mut l, p_mask, e_mask);
        let after = objective_for_labels(&g, &l, p_mask, e_mask);
        assert!(after <= before, "sweep must not worsen the objective");
        if swaps == 0 {
            assert_eq!(after, before);
        }
        // The label multiset is preserved.
        let mut sl = l.clone();
        sl.sort_unstable();
        assert_eq!(sl, (0..8u64).collect::<Vec<_>>());
    }

    #[test]
    fn contraction_merges_pairs_and_cuts_digit() {
        let (g, labels) = toy();
        let (cg, cl, f2c) = contract_level(&g, &labels);
        assert_eq!(cg.num_vertices(), 4);
        assert_eq!(cl, vec![0, 1, 2, 3]);
        assert_eq!(f2c, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(cg.total_vertex_weight(), g.total_vertex_weight());
        // Cycle of 8 contracted along consecutive pairs is a cycle of 4.
        assert_eq!(cg.num_edges(), 4);
    }

    #[test]
    fn contraction_coalesces_parallel_coarse_edges() {
        // Vertices 0,1 share prefix 0 and 2,3 share prefix 1, so contraction
        // yields two coarse vertices. Three distinct fine edges cross between
        // the pairs; they must merge into ONE coarse edge of summed weight.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2, 2);
        b.add_edge(0, 3, 3);
        b.add_edge(1, 2, 5);
        b.add_edge(0, 1, 7); // intra-pair edge: vanishes in the coarse graph
        let g = b.build();
        let labels = vec![0b00u64, 0b01, 0b10, 0b11];
        let (cg, cl, f2c) = contract_level(&g, &labels);
        assert_eq!(cg.num_vertices(), 2);
        assert_eq!(
            cg.num_edges(),
            1,
            "fine edges between the same coarse pair must be coalesced"
        );
        assert_eq!(cg.edge_weight(0, 1), Some(2 + 3 + 5));
        assert_eq!(cl, vec![0, 1]);
        assert_eq!(f2c, vec![0, 0, 1, 1]);
    }

    #[test]
    fn scratch_reuse_is_stateless_and_matches_allocating_path() {
        let labels_a: Vec<u64> = vec![0b000, 0b001, 0b010, 0b100, 0b101, 0b111];
        let labels_b: Vec<u64> = (0..32u64).rev().collect();
        let mut scratch = SweepScratch::default();
        collect_swap_pairs(&labels_a, &mut scratch);
        let fresh_a = scratch.pairs.clone();
        assert_eq!(fresh_a, swap_pairs(&labels_a));
        // Dirty the scratch with a larger instance, then redo the first one:
        // the result must not depend on leftover scratch contents.
        collect_swap_pairs(&labels_b, &mut scratch);
        assert_eq!(scratch.pairs, swap_pairs(&labels_b));
        collect_swap_pairs(&labels_a, &mut scratch);
        assert_eq!(scratch.pairs, fresh_a);
    }

    #[test]
    fn sweep_with_scratch_matches_sweep() {
        let g = generators::randomize_edge_weights(&generators::barabasi_albert(96, 3, 5), 4, 5);
        let labels: Vec<u64> = (0..96u64).collect();
        let (p_mask, e_mask) = (0b111_0000, 0b000_1111);
        let mut plain = labels.clone();
        let plain_swaps = sweep(&g, &mut plain, p_mask, e_mask);
        let mut scratched = labels.clone();
        let mut scratch = SweepScratch::default();
        let scratched_swaps = sweep_with(&g, &mut scratched, p_mask, e_mask, &mut scratch);
        assert_eq!(plain_swaps, scratched_swaps);
        assert_eq!(plain, scratched);
    }

    #[test]
    fn contraction_keeps_unpaired_vertices() {
        let g = generators::path_graph(3);
        let labels = vec![0b00u64, 0b01, 0b10];
        let (cg, cl, f2c) = contract_level(&g, &labels);
        assert_eq!(cg.num_vertices(), 2);
        assert_eq!(cl, vec![0, 1]);
        assert_eq!(f2c, vec![0, 0, 1]);
    }

    #[test]
    fn hierarchy_has_expected_depth_and_sizes() {
        let (g, labels) = toy();
        let dim = 4;
        let run = build_hierarchy(&g, labels, dim, 0b1110, 0b0001, 1);
        // dim - 1 = 3 levels: 8, 4, 2 vertices.
        assert_eq!(run.levels.len(), 3);
        assert_eq!(run.levels[0].graph.num_vertices(), 8);
        assert_eq!(run.levels[1].graph.num_vertices(), 4);
        assert_eq!(run.levels[2].graph.num_vertices(), 2);
        // Coarsest labels have 2 digits.
        assert!(run.levels[2].labels.iter().all(|&l| l < 4));
        // fine_to_coarse chains are consistent. (Note: the coarse level's
        // stored labels may have been swapped by its own sweep afterwards, so
        // only structural consistency is checked here, not label prefixes.)
        for j in 0..run.levels.len() - 1 {
            let lvl = &run.levels[j];
            let next = &run.levels[j + 1];
            assert_eq!(lvl.fine_to_coarse.len(), lvl.graph.num_vertices());
            for &c in lvl.fine_to_coarse.iter() {
                assert!((c as usize) < next.graph.num_vertices());
            }
            // Labels are unique on every level.
            let mut labels = next.labels.clone();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), next.graph.num_vertices());
        }
    }

    #[test]
    fn hierarchy_on_two_digit_labels_is_single_level() {
        let g = generators::path_graph(4);
        let labels = vec![0u64, 1, 2, 3];
        let run = build_hierarchy(&g, labels.clone(), 2, 0b10, 0b01, 1);
        assert_eq!(run.levels.len(), 1);
        assert_eq!(run.levels[0].labels, labels);
        assert_eq!(run.total_swaps, 0);
    }

    #[test]
    fn contract_level_matches_reference_oracle_on_fixtures() {
        let (g, labels) = toy();
        assert_eq!(
            contract_level(&g, &labels),
            contract_level_reference(&g, &labels)
        );
        let g = generators::randomize_edge_weights(&generators::barabasi_albert(96, 3, 5), 4, 5);
        let labels: Vec<u64> = (0..96u64).collect();
        assert_eq!(
            contract_level(&g, &labels),
            contract_level_reference(&g, &labels)
        );
    }

    #[test]
    fn contract_scratch_reuse_is_stateless() {
        let (g_a, labels_a) = toy();
        let g_b = generators::randomize_edge_weights(&generators::barabasi_albert(64, 3, 2), 4, 3);
        let labels_b: Vec<u64> = (0..64u64).rev().collect();
        let mut scratch = HierarchyScratch::default();
        let fresh_a = contract_level_with(&g_a, &labels_a, &mut scratch);
        // Dirty the scratch with a larger instance, then redo the first one:
        // the result must not depend on leftover scratch contents.
        let fresh_b = contract_level_with(&g_b, &labels_b, &mut scratch);
        assert_eq!(fresh_b, contract_level_reference(&g_b, &labels_b));
        assert_eq!(contract_level_with(&g_a, &labels_a, &mut scratch), fresh_a);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// On random graphs × random labelings, the sort-based contraction
        /// kernel's `(Graph, coarse_labels, fine_to_coarse)` triple is
        /// identical to the old HashMap path (the `GraphBuilder` coalescer),
        /// including the raw CSR arrays of the coarse graph — the invariant
        /// the whole refactor is pinned by.
        #[test]
        fn contraction_kernel_equivalent_to_hashmap_reference(
            n in 1..150usize,
            m in 0..400usize,
            dim in 2..8u32,
            seed in 0..1000u64,
            dirty_seed in 0..4u64,
        ) {
            let base = generators::erdos_renyi_gnm(n, m.min(n * (n - 1) / 2), seed);
            let g = generators::randomize_edge_weights(&base, 7, seed ^ 0xc0ffee);
            // Random labels over `dim` digits; duplicates are allowed (the
            // contraction only groups by prefix, uniqueness is not required).
            let labels: Vec<u64> = (0..n)
                .map(|v| {
                    let x = (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
                    (x >> 17) & ((1u64 << dim) - 1)
                })
                .collect();
            let mut scratch = HierarchyScratch::default();
            if dirty_seed > 0 {
                // Pre-dirty the scratch with an unrelated contraction so the
                // equivalence also covers reused buffers.
                let other: Vec<u64> = (0..n as u64).map(|v| v ^ dirty_seed).collect();
                let _ = contract_level_with(&g, &other, &mut scratch);
            }
            let kernel = contract_level_with(&g, &labels, &mut scratch);
            let reference = contract_level_reference(&g, &labels);
            prop_assert_eq!(kernel, reference);
        }
    }
}
