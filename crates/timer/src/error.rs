//! The typed failure surface of the TIMER pipeline: [`TieError`] (what went
//! *wrong*), [`StopReason`] (why a run *ended*, including gracefully), and
//! [`CancelToken`] (cooperative cancellation).
//!
//! The taxonomy exists so a long-running service (`mapd`, see
//! `docs/RESILIENCE.md`) can report and survive failures instead of
//! panicking: malformed inputs, incompatible topology/labeling pairs,
//! persistent worker panics and IO failures all surface as values, while
//! deadline expiry, cancellation and the adaptive stopping rule are *not*
//! errors — they end a run gracefully with the best labeling found so far
//! and a [`StopReason`] saying why.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tie_graph::io::IoError;
use tie_topology::RecognitionError;

/// Why a library-path TIMER operation failed. Everything a caller can
/// provoke (bad input, incompatible instance) or the environment can inflict
/// (IO, persistent worker panics) is a variant here; library paths do not
/// panic on these.
#[derive(Debug)]
pub enum TieError {
    /// The input violates a documented precondition (sizes, ranges, flags).
    InvalidInput(String),
    /// The topology/labeling pair cannot carry the mapping: non-partial-cube
    /// topology, PE-count mismatch, duplicate PE labels, label overflow.
    IncompatibleTopology(String),
    /// A hierarchy-round worker panicked and the sequential quarantine
    /// re-run panicked again — the fault is persistent, not transient, so
    /// the run cannot complete. (A *transient* panic is absorbed: see
    /// `RoundTelemetry::worker_panics`.)
    WorkerPanicked {
        /// Round whose re-run failed.
        round: usize,
        /// Panic payload (stringified).
        message: String,
    },
    /// A hard deadline was exceeded where graceful degradation is not
    /// possible (e.g. before a first feasible labeling exists). The driver
    /// itself prefers `StopReason::DeadlineExceeded` + best-so-far.
    DeadlineExceeded,
    /// An underlying IO operation failed.
    Io(std::io::Error),
    /// Reading or parsing a graph file failed.
    GraphIo(IoError),
    /// The processor graph is not a partial cube (or its labeling is
    /// internally inconsistent).
    Recognition(RecognitionError),
}

impl std::fmt::Display for TieError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TieError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            TieError::IncompatibleTopology(msg) => write!(f, "incompatible topology: {msg}"),
            TieError::WorkerPanicked { round, message } => {
                write!(
                    f,
                    "worker panicked persistently at round {round}: {message}"
                )
            }
            TieError::DeadlineExceeded => write!(f, "deadline exceeded"),
            TieError::Io(e) => write!(f, "I/O error: {e}"),
            TieError::GraphIo(e) => write!(f, "graph I/O error: {e}"),
            TieError::Recognition(e) => write!(f, "partial-cube recognition failed: {e}"),
        }
    }
}

impl std::error::Error for TieError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TieError::Io(e) => Some(e),
            TieError::GraphIo(e) => Some(e),
            TieError::Recognition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TieError {
    fn from(e: std::io::Error) -> Self {
        TieError::Io(e)
    }
}

impl From<IoError> for TieError {
    fn from(e: IoError) -> Self {
        TieError::GraphIo(e)
    }
}

impl From<RecognitionError> for TieError {
    fn from(e: RecognitionError) -> Self {
        TieError::Recognition(e)
    }
}

/// Why a TIMER run stopped offering rounds to the accept gate. Anything
/// other than [`StopReason::Completed`] means the run degraded gracefully:
/// the returned labeling is the best accepted so far (never worse than the
/// initial one) and the telemetry says how far the run got.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StopReason {
    /// All `NH` hierarchy rounds were offered to the gate.
    #[default]
    Completed,
    /// The configured deadline expired at a round boundary.
    DeadlineExceeded,
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// The opt-in adaptive stopping rule fired: `k` consecutive rounds were
    /// rejected (the payload is the configured `k`).
    ConsecutiveRejections(usize),
}

impl StopReason {
    /// Stable lower-snake name (used in trace events and JSON artifacts).
    pub fn name(&self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::DeadlineExceeded => "deadline_exceeded",
            StopReason::Cancelled => "cancelled",
            StopReason::ConsecutiveRejections(_) => "consecutive_rejections",
        }
    }

    /// Whether the run offered every configured round to the gate.
    pub fn is_completed(&self) -> bool {
        matches!(self, StopReason::Completed)
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::ConsecutiveRejections(k) => {
                write!(f, "consecutive_rejections(k={k})")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// Cooperative cancellation: cheap to clone, checked by the driver at round
/// boundaries. Cancelling mid-run yields the best labeling found so far with
/// [`StopReason::Cancelled`] — never a panic or a poisoned result.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<(TieError, &str)> = vec![
            (TieError::InvalidInput("x".into()), "invalid input"),
            (
                TieError::IncompatibleTopology("y".into()),
                "incompatible topology",
            ),
            (
                TieError::WorkerPanicked {
                    round: 3,
                    message: "boom".into(),
                },
                "round 3",
            ),
            (TieError::DeadlineExceeded, "deadline"),
            (
                TieError::Io(std::io::Error::other("disk on fire")),
                "disk on fire",
            ),
            (
                TieError::GraphIo(IoError::Parse("bad header".into())),
                "bad header",
            ),
            (
                TieError::Recognition(RecognitionError::NotBipartite),
                "bipartite",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn conversions_preserve_payloads() {
        let e: TieError = IoError::Parse("line 3".into()).into();
        assert!(matches!(e, TieError::GraphIo(_)));
        let e: TieError = RecognitionError::Disconnected.into();
        assert!(matches!(e, TieError::Recognition(_)));
        let e: TieError = std::io::Error::other("nope").into();
        assert!(matches!(e, TieError::Io(_)));
    }

    #[test]
    fn stop_reason_names_and_default() {
        assert_eq!(StopReason::default(), StopReason::Completed);
        assert!(StopReason::Completed.is_completed());
        assert!(!StopReason::Cancelled.is_completed());
        assert_eq!(StopReason::DeadlineExceeded.name(), "deadline_exceeded");
        assert_eq!(
            StopReason::ConsecutiveRejections(4).to_string(),
            "consecutive_rejections(k=4)"
        );
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }
}
