//! The TIMER driver (Algorithm 1): multi-hierarchical label swapping over
//! `NH` random digit permutations.
//!
//! # Speculative hierarchy batches
//!
//! The `NH` rounds form a sequential chain only through the accept gate:
//! round `k` starts from whatever labeling rounds `0..k` left behind. Most
//! rounds are *rejected*, though, so the chain rarely advances — which makes
//! the rounds ideal targets for speculation. With `threads > 1` the driver
//! runs a batch of `B` rounds (distinct digit permutations) concurrently
//! from the same accepted base labeling, then commits the results in
//! permutation order against the live gate. A kept round that actually
//! changes the labels invalidates the not-yet-committed speculations (they
//! were built from a stale base); those rounds are discarded — without
//! touching any counter — and re-executed from the new base in the next
//! batch. The committed trajectory is therefore **byte-identical to the
//! sequential driver** for every `(threads, batch)` combination: same
//! labels, same counters, same result, never worse than the sequential
//! trajectory — batching and threading are pure scheduling knobs.
//!
//! The speculation depth adapts like a branch predictor: it doubles after
//! every batch whose speculations all survived and resets to 1 whenever an
//! acceptance invalidated the batch, so the accept-heavy early rounds run
//! (nearly) waste-free while the reject-heavy tail gets full parallelism.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::Instant;

use crossbeam::thread;

use tie_fault::FaultHandle;
use tie_graph::Graph;
use tie_mapping::Mapping;
use tie_topology::label::{invert_permutation, permute_label_bits};
use tie_topology::PartialCubeLabeling;
use tie_trace::{Phase, PhaseTimes, TraceEvent, TraceHandle};

use crate::assemble::assemble_labels;
use crate::context::TopologyContext;
use crate::error::{StopReason, TieError};
use crate::hierarchy::{build_hierarchy_traced, HierarchyScratch};
use crate::labeling::Labeling;
use crate::objective::{coco_and_div_for_labels, coco_div_delta, AcceptGate};
use crate::telemetry::RoundTelemetry;
use crate::TimerConfig;

/// The TIMER mapping enhancer.
#[derive(Clone, Debug, Default)]
pub struct Timer {
    config: TimerConfig,
}

/// Result of a TIMER run.
#[derive(Clone, Debug)]
pub struct TimerResult {
    /// The enhanced mapping `µ₂`.
    pub mapping: Mapping,
    /// The final labeling of the application vertices.
    pub labeling: Labeling,
    /// `Coco` of the initial mapping.
    pub initial_coco: u64,
    /// `Coco` of the enhanced mapping.
    pub final_coco: u64,
    /// `Coco⁺` of the initial labeling.
    pub initial_coco_plus: i64,
    /// `Coco⁺` of the final labeling.
    pub final_coco_plus: i64,
    /// `Div` of the final labeling.
    pub final_diversity: u64,
    /// Number of hierarchy rounds whose result was kept.
    pub hierarchies_accepted: usize,
    /// Number of label swaps performed across all hierarchy sweeps.
    pub total_swaps: usize,
    /// Number of vertices whose assembled label needed the bijection repair.
    pub total_repaired: usize,
    /// Flight-recorder summary of the run: accept/reject/tie counts, the
    /// per-round `ΔCoco`/`ΔDiv` histograms and a per-phase wall-clock
    /// breakdown. Always collected (the gate side rides the delta scan the
    /// driver performs anyway); the gate side is byte-identical across
    /// `(threads, batch)` settings, the phase side is wall-clock.
    pub telemetry: RoundTelemetry,
    /// Why the run stopped offering rounds: [`StopReason::Completed`] on a
    /// full run, or the deadline / cancellation / adaptive-stopping cause
    /// that cut it short (the labeling is then the best accepted so far).
    pub stop_reason: StopReason,
}

impl TimerResult {
    /// Relative improvement of Coco, `1 - final/initial` (0 if initial is 0).
    pub fn coco_improvement(&self) -> f64 {
        if self.initial_coco == 0 {
            0.0
        } else {
            1.0 - self.final_coco as f64 / self.initial_coco as f64
        }
    }
}

impl Timer {
    /// Creates a TIMER instance with the given configuration.
    pub fn new(config: TimerConfig) -> Self {
        Timer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TimerConfig {
        &self.config
    }

    /// Enhances `initial` — a mapping of `graph` onto the partial cube
    /// described by `pcube` — and returns the improved mapping together with
    /// quality bookkeeping. The balance of the initial mapping is preserved
    /// exactly (labels are only permuted among the vertices).
    ///
    /// # Errors
    /// Returns [`TieError::InvalidInput`] for a malformed config or a
    /// graph/mapping size mismatch, [`TieError::IncompatibleTopology`] when
    /// the labeling cannot carry the mapping (PE-count mismatch, duplicate
    /// PE labels, label overflow), and [`TieError::WorkerPanicked`] when a
    /// hierarchy round panics *persistently* (a transient worker panic is
    /// absorbed: the round is quarantined and re-run sequentially, counted
    /// in `telemetry.worker_panics`). Deadline expiry and cancellation are
    /// not errors — the run returns best-so-far with the matching
    /// [`StopReason`].
    pub fn enhance(
        &self,
        graph: &Graph,
        pcube: &PartialCubeLabeling,
        initial: &Mapping,
    ) -> Result<TimerResult, TieError> {
        // Thin wrapper over the context-borrowing entry point: a transient
        // context built from a clone of the labeling. Pinned byte-identical
        // to `enhance_with_context` by the driver tests.
        self.enhance_with_context(graph, &TopologyContext::new(pcube.clone()), initial)
    }

    /// [`Timer::enhance`] over borrowed per-topology state: the partial-cube
    /// labeling, memoized permutation streams and scratch sizing hints come
    /// from `ctx` instead of being rebuilt per call. This is the entry point
    /// a long-running service uses with a cached [`TopologyContext`]; the
    /// result is byte-identical to [`Timer::enhance`] for the same inputs —
    /// a context is a latency optimization, never a correctness dependency.
    ///
    /// # Errors
    /// Same contract as [`Timer::enhance`].
    pub fn enhance_with_context(
        &self,
        graph: &Graph,
        ctx: &TopologyContext,
        initial: &Mapping,
    ) -> Result<TimerResult, TieError> {
        let cfg = &self.config;
        cfg.validate()?;
        let pcube = ctx.pcube();
        // tie-lint: allow(no-wallclock) — deadline anchor and telemetry total; never read by the algorithm
        let start = Instant::now();
        let deadline = cfg.deadline.map(|d| start + d);
        let faults = &cfg.faults;
        let mut labeling = Labeling::from_mapping(graph, pcube, initial, cfg.seed)?;
        let dim = labeling.dim;
        let p_mask = labeling.p_mask();
        let full_e_mask = labeling.ext_mask();
        let e_mask = if cfg.use_diversity { full_e_mask } else { 0 };

        // One edge scan seeds everything: the reported initial values and the
        // accept gate, which from here on is updated purely from per-round
        // deltas (no full-graph objective recomputes in the round loop).
        let (initial_coco, initial_div) =
            coco_and_div_for_labels(graph, &labeling.labels, p_mask, full_e_mask);
        let initial_coco_plus = initial_coco as i64 - initial_div as i64;
        let original_set = labeling.sorted_label_set();
        let mut gate = AcceptGate::new(
            initial_coco,
            if cfg.use_diversity { initial_div } else { 0 },
        );
        let trace = &cfg.trace;
        let mut telemetry = RoundTelemetry::default();
        trace.emit(TraceEvent::RunStart {
            nh: cfg.num_hierarchies,
            threads: cfg.threads.max(1),
            batch: cfg.effective_batch(),
            initial_coco,
            initial_div: if cfg.use_diversity { initial_div } else { 0 },
        });

        // Line 6 for all rounds up front: the permutation stream depends only
        // on `(seed, dim, NH)`, never on the batching schedule, so every
        // (threads, batch) setting — and every cache disposition — sees
        // identical hierarchies. The context memoizes the stream across runs.
        let perms = ctx.permutations(cfg.seed, dim, cfg.num_hierarchies);

        let mut total_swaps = 0usize;
        let mut total_repaired = 0usize;
        let threads = cfg.threads.max(1);
        let max_batch = cfg.effective_batch();

        // Adaptive speculation depth, branch-predictor style: rounds are
        // accept-heavy early (every acceptance throws speculated successors
        // away) and reject-heavy late (speculation always pays off). Start
        // cautious, double the depth after every batch whose speculations all
        // survived, reset to 1 whenever speculated rounds had to be
        // discarded. The depth only schedules work — the committed trajectory
        // stays byte-identical for every (threads, batch) setting.
        let mut depth = 1usize;

        let mut stop_reason = StopReason::Completed;
        let mut worker_panics = 0usize;
        let mut consecutive_rejections = 0usize;

        // One hierarchy scratch per worker slot, living for the whole run:
        // worker k of every batch reuses slot k's sweep/contraction buffers,
        // so the allocation set of the hot path is paid once per `enhance`
        // call instead of once per level per round. Scratch contents never
        // influence results (pinned by the contraction-equivalence proptest),
        // so the byte-identity guarantee is untouched. The context's sizing
        // hint (high-water vertex count of earlier runs) pre-sizes the
        // buffers so a warm-context run skips the growth reallocations too.
        ctx.note_vertices(graph.num_vertices());
        let scratch_hint = ctx.scratch_vertices_hint();
        let mut scratches: Vec<HierarchyScratch> =
            std::iter::repeat_with(|| HierarchyScratch::with_vertex_capacity(scratch_hint))
                .take(threads)
                .collect();

        let mut next = 0usize;
        while next < perms.len() {
            // Graceful-degradation checks, once per batch boundary: the
            // labeling is always a fully committed (best-so-far) state here,
            // so stopping now loses nothing but unexplored rounds.
            if cfg.cancel.is_cancelled() {
                stop_reason = StopReason::Cancelled;
                break;
            }
            // tie-lint: allow(no-wallclock) — deadline enforcement only decides when to stop, not what is computed
            if deadline.is_some_and(|t| Instant::now() >= t) {
                stop_reason = StopReason::DeadlineExceeded;
                break;
            }
            let b = depth.min(max_batch).min(perms.len() - next);
            let attempts: Vec<Result<RoundOutcome, String>> = if threads == 1 || b == 1 {
                vec![guarded_round(
                    graph,
                    &labeling.labels,
                    &perms[next],
                    dim,
                    p_mask,
                    e_mask,
                    next,
                    trace,
                    faults,
                    &mut scratches[0],
                )]
            } else {
                // Speculation: rounds next..next+b all start from the current
                // accepted base. Workers get contiguous chunks; flattening in
                // chunk order restores permutation order independently of the
                // worker count — which is capped at the hardware parallelism
                // (oversubscribed workers only fight over the cache; on a
                // single-core box the batch runs on one spawned thread).
                let base: &[u64] = &labeling.labels;
                let workers = threads
                    .min(b)
                    .min(hardware_threads().unwrap_or(threads))
                    .max(1);
                let chunk = b.div_ceil(workers);
                let joined = thread::scope(|scope| {
                    let handles: Vec<(usize, _)> = perms[next..next + b]
                        .chunks(chunk)
                        .zip(scratches.iter_mut())
                        .enumerate()
                        .map(|(chunk_idx, (chunk_perms, scratch))| {
                            let first_round = next + chunk_idx * chunk;
                            let handle = scope.spawn(move |_| {
                                chunk_perms
                                    .iter()
                                    .enumerate()
                                    .map(|(i, perm)| {
                                        guarded_round(
                                            graph,
                                            base,
                                            perm,
                                            dim,
                                            p_mask,
                                            e_mask,
                                            first_round + i,
                                            trace,
                                            faults,
                                            scratch,
                                        )
                                    })
                                    .collect::<Vec<_>>()
                            });
                            (chunk_perms.len(), handle)
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|(len, h)| match h.join() {
                            Ok(results) => results,
                            // `guarded_round` catches panics inside the worker,
                            // so a join error means the panic escaped the guard
                            // (e.g. in the iterator plumbing). Degrade it to
                            // per-round failures and let the quarantine below
                            // retry them sequentially.
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                (0..len).map(|_| Err(msg.clone())).collect()
                            }
                        })
                        .collect::<Vec<_>>()
                });
                match joined {
                    Ok(v) => v,
                    // The vendored scope never constructs `Err` (worker panics
                    // are surfaced via `join`, which we handled above), but if
                    // one ever arrives, treat the whole batch as panicked and
                    // let the quarantine retry it.
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        (0..b).map(|_| Err(msg.clone())).collect()
                    }
                }
            };

            // Quarantine: a panicked speculative round is re-run sequentially
            // from the same base. `run_round` is a pure function of
            // (base, perm), so for a *transient* fault the re-run reproduces
            // exactly what the healthy worker would have produced and the
            // trajectory stays byte-identical; a second panic means the fault
            // is persistent and the run fails with a typed error.
            let mut outcomes: Vec<RoundOutcome> = Vec::with_capacity(attempts.len());
            for (i, attempt) in attempts.into_iter().enumerate() {
                let round = next + i;
                match attempt {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(_first_panic) => {
                        worker_panics += 1;
                        match guarded_round(
                            graph,
                            &labeling.labels,
                            &perms[round],
                            dim,
                            p_mask,
                            e_mask,
                            round,
                            trace,
                            faults,
                            &mut scratches[0],
                        ) {
                            Ok(outcome) => outcomes.push(outcome),
                            Err(message) => {
                                return Err(TieError::WorkerPanicked { round, message });
                            }
                        }
                    }
                }
            }

            // Every executed round burned real wall-clock, including the
            // speculations an acceptance is about to discard — the phase
            // breakdown reports all of it. (Counters like `total_swaps` stay
            // commit-only below: they are part of the deterministic
            // trajectory, the phase times are honest work accounting.)
            for outcome in &outcomes {
                telemetry.phases.merge(&outcome.phases);
            }

            // Commit survivors in permutation order against the live gate. A
            // kept round that changes the labels invalidates the remaining
            // speculations: they are dropped without touching any counter and
            // re-run from the new base, which keeps the whole trajectory
            // byte-identical to the sequential driver.
            // tie-lint: allow(no-wallclock) — commit-phase telemetry
            let commit_start = Instant::now();
            let mut committed = 0usize;
            let mut invalidated = false;
            let mut rejection_stop = None;
            for (i, outcome) in outcomes.into_iter().enumerate() {
                total_swaps += outcome.swaps;
                total_repaired += outcome.repaired;
                committed += 1;
                let accepted = gate.offer(outcome.coco_delta, outcome.div_delta);
                // An equal-objective keep: `ΔCoco⁺ = ΔCoco − ΔDiv = 0`.
                let tie = accepted && outcome.coco_delta == outcome.div_delta;
                telemetry.record_gate(outcome.coco_delta, outcome.div_delta, accepted, tie);
                trace.emit(TraceEvent::Gate {
                    round: next + i,
                    coco_delta: outcome.coco_delta,
                    div_delta: outcome.div_delta,
                    accepted,
                    tie,
                    coco: gate.coco(),
                    div: gate.div(),
                });
                if accepted {
                    consecutive_rejections = 0;
                    invalidated = outcome.labels != labeling.labels;
                    labeling.set_labels(outcome.labels);
                    if invalidated {
                        break;
                    }
                } else {
                    consecutive_rejections += 1;
                    // Adaptive stopping rule (opt-in): counted in commit
                    // order, which is permutation order for every
                    // (threads, batch) setting — so the truncation point and
                    // hence the result stay byte-identical across thread
                    // counts.
                    if let Some(k) = cfg.max_consecutive_rejections {
                        if consecutive_rejections >= k {
                            rejection_stop = Some(StopReason::ConsecutiveRejections(k));
                            break;
                        }
                    }
                }
            }
            let commit_us = commit_start.elapsed().as_micros() as u64;
            telemetry.phases.add(Phase::Commit, commit_us);
            trace.emit(TraceEvent::Phase {
                phase: Phase::Commit,
                round: None,
                level: None,
                elapsed_us: commit_us,
            });
            if b > 1 {
                trace.emit(TraceEvent::Speculation {
                    first_round: next,
                    batch_len: b,
                    committed,
                    invalidated,
                    depth,
                });
            }
            next += committed;
            // Reset only when speculations were actually discarded (an
            // acceptance in the batch's last slot wastes nothing).
            depth = if invalidated && committed < b {
                1
            } else {
                (depth * 2).min(max_batch.max(1))
            };

            #[cfg(debug_assertions)]
            {
                let (c, d) = coco_and_div_for_labels(graph, &labeling.labels, p_mask, e_mask);
                debug_assert_eq!(gate.coco(), c as i64, "incremental Coco drifted");
                debug_assert_eq!(gate.div(), d as i64, "incremental Div drifted");
            }

            if let Some(reason) = rejection_stop {
                stop_reason = reason;
                break;
            }
        }

        debug_assert_eq!(
            labeling.sorted_label_set(),
            original_set,
            "TIMER must never change the label set (balance preservation)"
        );

        let (final_coco, final_div) =
            coco_and_div_for_labels(graph, &labeling.labels, p_mask, full_e_mask);
        debug_assert_eq!(gate.coco(), final_coco as i64);
        telemetry.worker_panics = worker_panics;
        telemetry.stop_reason = stop_reason;
        trace.emit(TraceEvent::RunEnd {
            final_coco,
            final_div,
            accepted: telemetry.accepted,
            rejected: telemetry.rejected,
            ties: telemetry.ties,
            stop_reason: stop_reason.name(),
            worker_panics,
        });
        Ok(TimerResult {
            mapping: labeling.to_mapping(),
            labeling,
            initial_coco,
            final_coco,
            initial_coco_plus,
            final_coco_plus: final_coco as i64 - final_div as i64,
            final_diversity: final_div,
            hierarchies_accepted: gate.kept(),
            total_swaps,
            total_repaired,
            telemetry,
            stop_reason,
        })
    }
}

/// Usable hardware parallelism (respects CPU affinity/cgroup limits), cached
/// after the first query. `None` when the platform cannot tell — the driver
/// then trusts the configured thread count instead of silently serializing
/// the batch (the old `.unwrap_or(1)` fallback capped every batch to one
/// spawned worker exactly on the platforms where parallelism is unknowable).
fn hardware_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| std::thread::available_parallelism().ok().map(|n| n.get()))
}

/// Stringifies a panic payload (`&str` and `String` payloads cover every
/// `panic!` in this workspace; anything else is described by its type).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Runs one hierarchy round inside a panic guard: a panicking round (real
/// bug or injected fault) becomes an `Err` carrying the panic message
/// instead of unwinding across the driver. `run_round` only touches local
/// state, so unwinding out of it cannot leave broken shared state behind —
/// which is what makes `AssertUnwindSafe` sound here.
#[allow(clippy::too_many_arguments)] // private helper mirroring run_round
fn guarded_round(
    graph: &Graph,
    base: &[u64],
    perm: &[usize],
    dim: usize,
    p_mask: u64,
    e_mask: u64,
    round: usize,
    trace: &TraceHandle,
    faults: &FaultHandle,
    scratch: &mut HierarchyScratch,
) -> Result<RoundOutcome, String> {
    // `scratch` crossing the unwind boundary is sound for the same reason the
    // base state is: every scratch buffer is cleared/resized at the start of
    // its next use, so no result ever depends on what a panicked round left
    // behind in it.
    catch_unwind(AssertUnwindSafe(|| {
        run_round(
            graph, base, perm, dim, p_mask, e_mask, round, trace, faults, scratch,
        )
    }))
    .map_err(|payload| panic_message(payload.as_ref()))
}

/// Result of one executed hierarchy round, ready for the accept gate.
struct RoundOutcome {
    /// Candidate fine-level labels (digit permutation already undone).
    labels: Vec<u64>,
    /// Exact `Coco` change of the candidate vs the base it was built from.
    coco_delta: i64,
    /// Exact `Div` change of the candidate vs the base it was built from.
    div_delta: i64,
    /// Swaps performed by the round's sweeps.
    swaps: usize,
    /// Vertices whose assembled label needed the bijection repair.
    repaired: usize,
    /// Wall-clock breakdown of this round's phases.
    phases: PhaseTimes,
}

/// Executes one full hierarchy round (Algorithm 1 lines 6–16) from `base`:
/// permute digits, build and sweep the hierarchy, assemble, un-permute, and
/// price the candidate against the base via an incidence-limited delta scan.
/// Pure function of `(base, perm)` — the speculation correctness hinges on
/// that; `round`/`trace` only record what happened and never influence it.
#[allow(clippy::too_many_arguments)] // private helper mirroring the algorithm
fn run_round(
    graph: &Graph,
    base: &[u64],
    perm: &[usize],
    dim: usize,
    p_mask: u64,
    e_mask: u64,
    round: usize,
    trace: &TraceHandle,
    faults: &FaultHandle,
    scratch: &mut HierarchyScratch,
) -> RoundOutcome {
    // Chaos probe: with an armed fault plan this round panics here (inside
    // the caller's panic guard); with the default disabled handle it is a
    // single branch, exactly like the trace probes.
    faults.maybe_panic(round);
    let mut phases = PhaseTimes::default();
    let inv = invert_permutation(perm);

    // Line 7: permute labels (and the masks along with them).
    faults.delay("hierarchy_build");
    // tie-lint: allow(no-wallclock) — hierarchy-phase telemetry
    let build_start = Instant::now();
    let permuted: Vec<u64> = base
        .iter()
        .map(|&l| permute_label_bits(l, perm, dim))
        .collect();
    let p_mask_perm = permute_label_bits(p_mask, perm, dim);
    let e_mask_perm = permute_label_bits(e_mask, perm, dim);

    // Lines 9-14: swap sweeps interleaved with contractions. Always built
    // with the sequential sweep: parallelism lives one level up (whole
    // rounds), which is what keeps the result thread-count-invariant.
    let run = build_hierarchy_traced(
        graph,
        permuted,
        dim,
        p_mask_perm,
        e_mask_perm,
        1,
        Some(round),
        trace,
        scratch,
    );
    // The hierarchy-build span contains the per-level sweep/contract spans.
    let build_us = build_start.elapsed().as_micros() as u64;
    phases.merge(&run.phases);
    phases.add(Phase::HierarchyBuild, build_us);
    trace.emit(TraceEvent::Phase {
        phase: Phase::HierarchyBuild,
        round: Some(round),
        level: None,
        elapsed_us: build_us,
    });

    // Line 15: assemble a new fine-level labeling from the hierarchy, then
    // (line 16) undo the digit permutation.
    faults.delay("assemble");
    // tie-lint: allow(no-wallclock) — assemble-phase telemetry
    let assemble_start = Instant::now();
    let assembled = assemble_labels(&run, dim);
    let labels: Vec<u64> = assembled
        .labels
        .iter()
        .map(|&l| permute_label_bits(l, &inv, dim))
        .collect();
    let assemble_us = assemble_start.elapsed().as_micros() as u64;
    phases.add(Phase::Assemble, assemble_us);
    trace.emit(TraceEvent::Phase {
        phase: Phase::Assemble,
        round: Some(round),
        level: None,
        elapsed_us: assemble_us,
    });

    // Lines 17-19 pricing: Div only steers the search, so a round must also
    // not worsen the true communication cost — without the separate Coco
    // delta, rounds that grow Div faster than Coco would be accepted and
    // plain Coco would drift upward as NH grows.
    faults.delay("delta_scan");
    // tie-lint: allow(no-wallclock) — delta-scan-phase telemetry
    let scan_start = Instant::now();
    let (coco_delta, div_delta) = coco_div_delta(graph, base, &labels, p_mask, e_mask);
    let scan_us = scan_start.elapsed().as_micros() as u64;
    phases.add(Phase::DeltaScan, scan_us);
    trace.emit(TraceEvent::Phase {
        phase: Phase::DeltaScan,
        round: Some(round),
        level: None,
        elapsed_us: scan_us,
    });
    RoundOutcome {
        labels,
        coco_delta,
        div_delta,
        swaps: run.total_swaps,
        repaired: assembled.repaired,
        phases,
    }
}

/// Convenience wrapper: runs TIMER with `config` on the given instance.
///
/// # Errors
/// Same contract as [`Timer::enhance`].
pub fn enhance_mapping(
    graph: &Graph,
    pcube: &PartialCubeLabeling,
    initial: &Mapping,
    config: TimerConfig,
) -> Result<TimerResult, TieError> {
    Timer::new(config).enhance(graph, pcube, initial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_graph::traversal::all_pairs_distances;
    use tie_mapping::identity_mapping;
    use tie_partition::{partition, PartitionConfig};
    use tie_topology::{recognize_partial_cube, Topology};

    /// Shared test fixture: a complex network mapped onto a 4x4 grid via a
    /// partition plus the identity bijection (experimental case c2 in small).
    fn fixture(seed: u64) -> (Graph, Topology, PartialCubeLabeling, Mapping) {
        let ga =
            generators::randomize_edge_weights(&generators::barabasi_albert(400, 3, seed), 4, seed);
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let part = partition(&ga, &PartitionConfig::new(16, seed));
        let mapping = identity_mapping(&part, 16);
        (ga, topo, pcube, mapping)
    }

    fn coco_by_distances(ga: &Graph, gp: &Graph, m: &Mapping) -> u64 {
        let dist = all_pairs_distances(gp);
        ga.edges()
            .map(|(u, v, w)| w * dist.get(m.pe_of(u), m.pe_of(v)) as u64)
            .sum()
    }

    #[test]
    fn timer_never_worsens_coco_plus_and_preserves_balance() {
        let (ga, topo, pcube, mapping) = fixture(1);
        let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(10, 7)).unwrap();
        assert!(result.final_coco_plus <= result.initial_coco_plus);
        // Balance: identical load multiset before and after.
        let mut before = mapping.load_per_pe();
        let mut after = result.mapping.load_per_pe();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        // Reported Coco matches the independent distance-based computation.
        assert_eq!(
            result.final_coco,
            coco_by_distances(&ga, &topo.graph, &result.mapping)
        );
        assert_eq!(
            result.initial_coco,
            coco_by_distances(&ga, &topo.graph, &mapping)
        );
    }

    #[test]
    fn timer_improves_a_scrambled_mapping_substantially() {
        // Start from a partition mapped with a *random* bijection of blocks
        // to PEs — plenty of room for improvement, which TIMER must find.
        let (ga, topo, pcube, _) = fixture(2);
        let part = partition(&ga, &PartitionConfig::new(16, 2));
        let scramble = generators::random_permutation(16, 3);
        let bad = Mapping::from_partition(&part, &scramble, 16);
        let result = enhance_mapping(&ga, &pcube, &bad, TimerConfig::new(15, 5)).unwrap();
        assert!(
            result.final_coco < result.initial_coco,
            "TIMER should reduce Coco: {} -> {}",
            result.initial_coco,
            result.final_coco
        );
        assert!(
            result.coco_improvement() > 0.05,
            "improvement {}",
            result.coco_improvement()
        );
        assert!(result.hierarchies_accepted > 0);
        assert_eq!(
            result.final_coco,
            coco_by_distances(&ga, &topo.graph, &result.mapping)
        );
    }

    #[test]
    fn timer_is_deterministic_in_seed() {
        let (ga, _, pcube, mapping) = fixture(3);
        let a = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(5, 11)).unwrap();
        let b = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(5, 11)).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.final_coco, b.final_coco);
    }

    #[test]
    fn enhance_with_context_is_byte_identical_to_enhance() {
        // The context split's headline contract: a shared, reused
        // `TopologyContext` (memoized perm streams, warm scratch hints) must
        // never change result bytes — cold context, warm context and the
        // plain `enhance` wrapper all walk the identical trajectory.
        let (ga, topo, pcube, mapping) = fixture(7);
        let timer = Timer::new(TimerConfig::new(10, 7).with_threads(2));
        let direct = timer.enhance(&ga, &pcube, &mapping).unwrap();
        let ctx = TopologyContext::recognize(&topo.graph).unwrap();
        let cold = timer.enhance_with_context(&ga, &ctx, &mapping).unwrap();
        assert!(
            ctx.scratch_vertices_hint() >= ga.num_vertices(),
            "the first run must warm the context's sizing hint"
        );
        let warm = timer.enhance_with_context(&ga, &ctx, &mapping).unwrap();
        for (label, r) in [("cold", &cold), ("warm", &warm)] {
            assert_eq!(r.labeling.labels, direct.labeling.labels, "{label}");
            assert_eq!(r.mapping, direct.mapping, "{label}");
            assert_eq!(r.final_coco, direct.final_coco, "{label}");
            assert_eq!(r.final_coco_plus, direct.final_coco_plus, "{label}");
            assert_eq!(r.final_diversity, direct.final_diversity, "{label}");
            assert_eq!(
                r.hierarchies_accepted, direct.hierarchies_accepted,
                "{label}"
            );
            assert_eq!(r.total_swaps, direct.total_swaps, "{label}");
            assert_eq!(r.total_repaired, direct.total_repaired, "{label}");
        }
    }

    #[test]
    fn more_hierarchies_do_not_hurt() {
        let (ga, _, pcube, mapping) = fixture(4);
        let few = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(2, 9)).unwrap();
        let many = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(20, 9)).unwrap();
        assert!(many.final_coco_plus <= few.final_coco_plus);
    }

    #[test]
    fn diversity_ablation_still_valid() {
        let (ga, topo, pcube, mapping) = fixture(5);
        let result = enhance_mapping(
            &ga,
            &pcube,
            &mapping,
            TimerConfig::new(8, 3).without_diversity(),
        )
        .unwrap();
        assert!(result.final_coco <= result.initial_coco);
        assert_eq!(
            result.final_coco,
            coco_by_distances(&ga, &topo.graph, &result.mapping)
        );
    }

    #[test]
    fn batched_variant_produces_valid_result() {
        let (ga, topo, pcube, mapping) = fixture(6);
        let result = enhance_mapping(
            &ga,
            &pcube,
            &mapping,
            TimerConfig::new(6, 2).with_threads(4),
        )
        .unwrap();
        assert!(result.final_coco_plus <= result.initial_coco_plus);
        assert_eq!(
            result.final_coco,
            coco_by_distances(&ga, &topo.graph, &result.mapping)
        );
        let mut before = mapping.load_per_pe();
        let mut after = result.mapping.load_per_pe();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn batched_enhance_is_byte_identical_across_threads_and_batches() {
        // Threads and batch are pure scheduling knobs: every combination must
        // reproduce the sequential trajectory bit for bit, counters included.
        let (ga, _, pcube, mapping) = fixture(8);
        let sequential = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(12, 4)).unwrap();
        for (threads, batch) in [(2, 0), (4, 0), (4, 2), (3, 5), (8, 8), (1, 4)] {
            let r = enhance_mapping(
                &ga,
                &pcube,
                &mapping,
                TimerConfig::new(12, 4)
                    .with_threads(threads)
                    .with_batch(batch),
            )
            .unwrap();
            assert_eq!(
                r.labeling.labels, sequential.labeling.labels,
                "threads={threads} batch={batch}"
            );
            assert_eq!(r.mapping, sequential.mapping);
            assert_eq!(r.final_coco, sequential.final_coco);
            assert_eq!(r.final_coco_plus, sequential.final_coco_plus);
            assert_eq!(r.final_diversity, sequential.final_diversity);
            assert_eq!(r.hierarchies_accepted, sequential.hierarchies_accepted);
            assert_eq!(r.total_swaps, sequential.total_swaps);
            assert_eq!(r.total_repaired, sequential.total_repaired);
        }
    }

    #[test]
    fn equal_objective_rounds_count_as_accepted() {
        // Regression for the accept-gate bookkeeping: on an edgeless
        // application graph every candidate labeling has objective 0, so
        // every round ties with the incumbent, is kept (its labels replace
        // the labeling), and must therefore be counted — the old counter
        // only saw strict improvements and reported 0.
        let topo = Topology::grid2d(2, 2);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let ga = Graph::from_edges(8, &[]);
        let mapping = Mapping::new(vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(6, 1)).unwrap();
        assert_eq!(result.final_coco, 0);
        assert_eq!(
            result.hierarchies_accepted, 6,
            "every equal-objective round replaces the labeling and must be counted"
        );
        // The tie-only instance also exercises the speculation fast path
        // (kept rounds with unchanged labels must not invalidate the batch).
        let batched = enhance_mapping(
            &ga,
            &pcube,
            &mapping,
            TimerConfig::new(6, 1).with_threads(4),
        )
        .unwrap();
        assert_eq!(batched.hierarchies_accepted, 6);
        assert_eq!(batched.labeling.labels, result.labeling.labels);
    }

    #[test]
    fn tie_rounds_are_kept_and_reported_as_ties_in_telemetry() {
        // Accept-gate tie semantics, observed through the flight recorder:
        // on an edgeless application graph every candidate has zero deltas,
        // so every round is an equal-objective tie — kept by the gate
        // (`AcceptGate::offer` folds it in), flagged `tie` on its gate
        // event, and counted in `RoundTelemetry::ties`.
        use std::sync::Arc;
        use tie_trace::{MemorySink, TraceLevel};

        let topo = Topology::grid2d(2, 2);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let ga = Graph::from_edges(8, &[]);
        let mapping = Mapping::new(vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        let nh = 6;
        let sink = Arc::new(MemorySink::default());
        let cfg =
            TimerConfig::new(nh, 1).with_trace(TraceHandle::new(sink.clone(), TraceLevel::Gate));
        let result = enhance_mapping(&ga, &pcube, &mapping, cfg).unwrap();

        assert_eq!(result.telemetry.accepted, nh);
        assert_eq!(result.telemetry.rejected, 0);
        assert_eq!(result.telemetry.ties, nh);
        assert_eq!(result.telemetry.rounds(), nh);

        // One gate event per round, in round order, every one a kept tie
        // with both deltas zero and the objective values unchanged.
        let gates: Vec<_> = sink
            .events()
            .into_iter()
            .filter_map(|r| match r.event {
                TraceEvent::Gate {
                    round,
                    coco_delta,
                    div_delta,
                    accepted,
                    tie,
                    coco,
                    div,
                } => Some((round, coco_delta, div_delta, accepted, tie, coco, div)),
                _ => None,
            })
            .collect();
        assert_eq!(gates.len(), nh);
        for (i, &(round, coco_delta, div_delta, accepted, tie, coco, div)) in
            gates.iter().enumerate()
        {
            assert_eq!(round, i);
            assert_eq!((coco_delta, div_delta), (0, 0));
            assert!(accepted, "tie rounds are kept");
            assert!(tie, "zero-delta rounds must be flagged as ties");
            assert_eq!((coco, div), (0, 0));
        }
    }

    #[test]
    fn works_on_torus_and_hypercube_targets() {
        let ga = generators::watts_strogatz(512, 6, 0.1, 7);
        for topo in [Topology::torus2d(4, 4), Topology::hypercube(4)] {
            let pcube = recognize_partial_cube(&topo.graph).unwrap();
            let part = partition(&ga, &PartitionConfig::new(16, 1));
            let mapping = identity_mapping(&part, 16);
            let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(8, 1)).unwrap();
            assert!(result.final_coco <= result.initial_coco, "{}", topo.name);
            assert_eq!(
                result.final_coco,
                coco_by_distances(&ga, &topo.graph, &result.mapping),
                "{}",
                topo.name
            );
        }
    }

    #[test]
    fn one_task_per_pe_instance() {
        // |Va| = |Vp|: no extension bits at all; TIMER degenerates to pure
        // PE-label swapping and must still not worsen anything.
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let ga = generators::randomize_edge_weights(&topo.graph, 3, 1);
        let mapping = Mapping::new(generators::random_permutation(16, 5), 16);
        let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(20, 3)).unwrap();
        assert!(result.final_coco <= result.initial_coco);
        assert!(result.labeling.is_unique());
    }
}
