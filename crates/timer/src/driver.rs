//! The TIMER driver (Algorithm 1): multi-hierarchical label swapping over
//! `NH` random digit permutations.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tie_graph::Graph;
use tie_mapping::Mapping;
use tie_topology::label::{invert_permutation, permute_label_bits};
use tie_topology::PartialCubeLabeling;

use crate::assemble::assemble_labels;
use crate::hierarchy::build_hierarchy;
use crate::labeling::Labeling;
use crate::objective::{coco, coco_plus, diversity, objective_for_labels};
use crate::TimerConfig;

/// The TIMER mapping enhancer.
#[derive(Clone, Debug, Default)]
pub struct Timer {
    config: TimerConfig,
}

/// Result of a TIMER run.
#[derive(Clone, Debug)]
pub struct TimerResult {
    /// The enhanced mapping `µ₂`.
    pub mapping: Mapping,
    /// The final labeling of the application vertices.
    pub labeling: Labeling,
    /// `Coco` of the initial mapping.
    pub initial_coco: u64,
    /// `Coco` of the enhanced mapping.
    pub final_coco: u64,
    /// `Coco⁺` of the initial labeling.
    pub initial_coco_plus: i64,
    /// `Coco⁺` of the final labeling.
    pub final_coco_plus: i64,
    /// `Div` of the final labeling.
    pub final_diversity: u64,
    /// Number of hierarchy rounds whose result was kept.
    pub hierarchies_accepted: usize,
    /// Number of label swaps performed across all hierarchy sweeps.
    pub total_swaps: usize,
    /// Number of vertices whose assembled label needed the bijection repair.
    pub total_repaired: usize,
}

impl TimerResult {
    /// Relative improvement of Coco, `1 - final/initial` (0 if initial is 0).
    pub fn coco_improvement(&self) -> f64 {
        if self.initial_coco == 0 {
            0.0
        } else {
            1.0 - self.final_coco as f64 / self.initial_coco as f64
        }
    }
}

impl Timer {
    /// Creates a TIMER instance with the given configuration.
    pub fn new(config: TimerConfig) -> Self {
        Timer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TimerConfig {
        &self.config
    }

    /// Enhances `initial` — a mapping of `graph` onto the partial cube
    /// described by `pcube` — and returns the improved mapping together with
    /// quality bookkeeping. The balance of the initial mapping is preserved
    /// exactly (labels are only permuted among the vertices).
    pub fn enhance(
        &self,
        graph: &Graph,
        pcube: &PartialCubeLabeling,
        initial: &Mapping,
    ) -> TimerResult {
        let cfg = &self.config;
        let mut labeling = Labeling::from_mapping(graph, pcube, initial, cfg.seed);
        let dim = labeling.dim;
        let p_mask = labeling.p_mask();
        let e_mask = if cfg.use_diversity {
            labeling.ext_mask()
        } else {
            0
        };

        let initial_coco = coco(graph, &labeling);
        let initial_coco_plus = coco_plus(graph, &labeling);
        let original_set = labeling.sorted_label_set();

        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x51ed_270b));
        let mut accepted = 0usize;
        let mut total_swaps = 0usize;
        let mut total_repaired = 0usize;

        // Accepted objective values, carried across rounds so each round only
        // evaluates the *candidate* labeling. With diversity off (e_mask = 0)
        // the objective IS plain Coco, so the Coco gate reuses that value
        // instead of scanning the edges a second time.
        let mut cur_objective = objective_for_labels(graph, &labeling.labels, p_mask, e_mask);
        let mut cur_coco = if e_mask == 0 {
            cur_objective
        } else {
            objective_for_labels(graph, &labeling.labels, p_mask, 0)
        };

        for _round in 0..cfg.num_hierarchies {
            let old_labels = labeling.labels.clone();

            // Line 6: random permutation of the label digits.
            let mut perm: Vec<usize> = (0..dim).collect();
            perm.shuffle(&mut rng);
            let inv = invert_permutation(&perm);

            // Line 7: permute labels (and the masks along with them).
            let permuted: Vec<u64> = old_labels
                .iter()
                .map(|&l| permute_label_bits(l, &perm, dim))
                .collect();
            let p_mask_perm = permute_label_bits(p_mask, &perm, dim);
            let e_mask_perm = permute_label_bits(e_mask, &perm, dim);

            // Lines 9-14: swap sweeps interleaved with contractions.
            let run = build_hierarchy(graph, permuted, dim, p_mask_perm, e_mask_perm, cfg.threads);
            total_swaps += run.total_swaps;

            // Line 15: assemble a new fine-level labeling from the hierarchy.
            let assembled = assemble_labels(&run, dim);
            total_repaired += assembled.repaired;

            // Line 16: undo the digit permutation.
            let new_labels: Vec<u64> = assembled
                .labels
                .iter()
                .map(|&l| permute_label_bits(l, &inv, dim))
                .collect();

            // Lines 17-19: keep the new labeling only if it does not worsen
            // the objective (the coarse-level gains are only estimates). Div
            // only steers the search, so a round must also not worsen the
            // true communication cost: without this second gate, rounds that
            // grow Div faster than Coco are accepted and plain Coco drifts
            // upward as NH grows.
            let new_objective = objective_for_labels(graph, &new_labels, p_mask, e_mask);
            let new_coco = if e_mask == 0 {
                new_objective
            } else {
                objective_for_labels(graph, &new_labels, p_mask, 0)
            };
            if new_objective <= cur_objective && new_coco <= cur_coco {
                labeling.set_labels(new_labels);
                if new_objective < cur_objective {
                    accepted += 1;
                }
                cur_objective = new_objective;
                cur_coco = new_coco;
            }
        }

        debug_assert_eq!(
            labeling.sorted_label_set(),
            original_set,
            "TIMER must never change the label set (balance preservation)"
        );

        let final_coco = coco(graph, &labeling);
        let final_coco_plus = coco_plus(graph, &labeling);
        let final_diversity = diversity(graph, &labeling);
        TimerResult {
            mapping: labeling.to_mapping(),
            labeling,
            initial_coco,
            final_coco,
            initial_coco_plus,
            final_coco_plus,
            final_diversity,
            hierarchies_accepted: accepted,
            total_swaps,
            total_repaired,
        }
    }
}

/// Convenience wrapper: runs TIMER with `config` on the given instance.
pub fn enhance_mapping(
    graph: &Graph,
    pcube: &PartialCubeLabeling,
    initial: &Mapping,
    config: TimerConfig,
) -> TimerResult {
    Timer::new(config).enhance(graph, pcube, initial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_graph::traversal::all_pairs_distances;
    use tie_mapping::identity_mapping;
    use tie_partition::{partition, PartitionConfig};
    use tie_topology::{recognize_partial_cube, Topology};

    /// Shared test fixture: a complex network mapped onto a 4x4 grid via a
    /// partition plus the identity bijection (experimental case c2 in small).
    fn fixture(seed: u64) -> (Graph, Topology, PartialCubeLabeling, Mapping) {
        let ga =
            generators::randomize_edge_weights(&generators::barabasi_albert(400, 3, seed), 4, seed);
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let part = partition(&ga, &PartitionConfig::new(16, seed));
        let mapping = identity_mapping(&part, 16);
        (ga, topo, pcube, mapping)
    }

    fn coco_by_distances(ga: &Graph, gp: &Graph, m: &Mapping) -> u64 {
        let dist = all_pairs_distances(gp);
        ga.edges()
            .map(|(u, v, w)| w * dist.get(m.pe_of(u), m.pe_of(v)) as u64)
            .sum()
    }

    #[test]
    fn timer_never_worsens_coco_plus_and_preserves_balance() {
        let (ga, topo, pcube, mapping) = fixture(1);
        let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(10, 7));
        assert!(result.final_coco_plus <= result.initial_coco_plus);
        // Balance: identical load multiset before and after.
        let mut before = mapping.load_per_pe();
        let mut after = result.mapping.load_per_pe();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        // Reported Coco matches the independent distance-based computation.
        assert_eq!(
            result.final_coco,
            coco_by_distances(&ga, &topo.graph, &result.mapping)
        );
        assert_eq!(
            result.initial_coco,
            coco_by_distances(&ga, &topo.graph, &mapping)
        );
    }

    #[test]
    fn timer_improves_a_scrambled_mapping_substantially() {
        // Start from a partition mapped with a *random* bijection of blocks
        // to PEs — plenty of room for improvement, which TIMER must find.
        let (ga, topo, pcube, _) = fixture(2);
        let part = partition(&ga, &PartitionConfig::new(16, 2));
        let scramble = generators::random_permutation(16, 3);
        let bad = Mapping::from_partition(&part, &scramble, 16);
        let result = enhance_mapping(&ga, &pcube, &bad, TimerConfig::new(15, 5));
        assert!(
            result.final_coco < result.initial_coco,
            "TIMER should reduce Coco: {} -> {}",
            result.initial_coco,
            result.final_coco
        );
        assert!(
            result.coco_improvement() > 0.05,
            "improvement {}",
            result.coco_improvement()
        );
        assert!(result.hierarchies_accepted > 0);
        assert_eq!(
            result.final_coco,
            coco_by_distances(&ga, &topo.graph, &result.mapping)
        );
    }

    #[test]
    fn timer_is_deterministic_in_seed() {
        let (ga, _, pcube, mapping) = fixture(3);
        let a = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(5, 11));
        let b = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(5, 11));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.final_coco, b.final_coco);
    }

    #[test]
    fn more_hierarchies_do_not_hurt() {
        let (ga, _, pcube, mapping) = fixture(4);
        let few = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(2, 9));
        let many = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(20, 9));
        assert!(many.final_coco_plus <= few.final_coco_plus);
    }

    #[test]
    fn diversity_ablation_still_valid() {
        let (ga, topo, pcube, mapping) = fixture(5);
        let result = enhance_mapping(
            &ga,
            &pcube,
            &mapping,
            TimerConfig::new(8, 3).without_diversity(),
        );
        assert!(result.final_coco <= result.initial_coco);
        assert_eq!(
            result.final_coco,
            coco_by_distances(&ga, &topo.graph, &result.mapping)
        );
    }

    #[test]
    fn parallel_sweep_variant_produces_valid_result() {
        let (ga, topo, pcube, mapping) = fixture(6);
        let result = enhance_mapping(
            &ga,
            &pcube,
            &mapping,
            TimerConfig::new(6, 2).with_threads(4),
        );
        assert!(result.final_coco_plus <= result.initial_coco_plus);
        assert_eq!(
            result.final_coco,
            coco_by_distances(&ga, &topo.graph, &result.mapping)
        );
        let mut before = mapping.load_per_pe();
        let mut after = result.mapping.load_per_pe();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn works_on_torus_and_hypercube_targets() {
        let ga = generators::watts_strogatz(512, 6, 0.1, 7);
        for topo in [Topology::torus2d(4, 4), Topology::hypercube(4)] {
            let pcube = recognize_partial_cube(&topo.graph).unwrap();
            let part = partition(&ga, &PartitionConfig::new(16, 1));
            let mapping = identity_mapping(&part, 16);
            let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(8, 1));
            assert!(result.final_coco <= result.initial_coco, "{}", topo.name);
            assert_eq!(
                result.final_coco,
                coco_by_distances(&ga, &topo.graph, &result.mapping),
                "{}",
                topo.name
            );
        }
    }

    #[test]
    fn one_task_per_pe_instance() {
        // |Va| = |Vp|: no extension bits at all; TIMER degenerates to pure
        // PE-label swapping and must still not worsen anything.
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let ga = generators::randomize_edge_weights(&topo.graph, 3, 1);
        let mapping = Mapping::new(generators::random_permutation(16, 5), 16);
        let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(20, 3));
        assert!(result.final_coco <= result.initial_coco);
        assert!(result.labeling.is_unique());
    }
}
