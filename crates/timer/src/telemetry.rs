//! Per-run accept-gate and phase telemetry, summarized into
//! [`crate::TimerResult`].
//!
//! The driver already computes an exact `(ΔCoco, ΔDiv)` pair per hierarchy
//! round (the incidence-limited scan feeding the accept gate), so recording
//! the gate's evidence here adds no full-graph recomputes — the telemetry
//! rides the existing delta scan. Collection is unconditional: it is a
//! handful of integer ops per round, and having the summary always present
//! lets `bench_timer` embed gate histograms into `BENCH_timer.json` without
//! turning tracing on.

use tie_trace::{LogHistogram, PhaseTimes};

use crate::error::StopReason;

/// Summary of one `Timer::enhance` run: accept-gate verdict counts, the
/// distributions of the per-round objective deltas, and a per-phase
/// wall-clock breakdown.
///
/// The gate-side fields (`accepted`, `rejected`, `ties`, the histograms) are
/// part of the deterministic trajectory and therefore byte-identical across
/// every `(threads, batch)` setting. `phases` is wall-clock and is not:
/// speculated rounds that get invalidated still burned real time, which the
/// breakdown reports honestly.
#[derive(Clone, Debug, Default)]
pub struct RoundTelemetry {
    /// Rounds the gate kept (including equal-objective ties). Mirrors
    /// `TimerResult::hierarchies_accepted`.
    pub accepted: usize,
    /// Rounds the gate rejected.
    pub rejected: usize,
    /// Kept rounds whose objective delta was zero (`ΔCoco == ΔDiv`): the
    /// tie-keeps that replace the labeling without improving `Coco⁺`.
    pub ties: usize,
    /// Distribution of the per-round `ΔCoco` the gate ruled on.
    pub delta_coco: LogHistogram,
    /// Distribution of the per-round `ΔDiv` the gate ruled on.
    pub delta_div: LogHistogram,
    /// Accumulated wall-clock per pipeline phase across the whole run
    /// (including invalidated speculations — real work is counted).
    pub phases: PhaseTimes,
    /// Speculative workers that panicked and were absorbed by the quarantine
    /// re-run (see `docs/RESILIENCE.md`). Zero on every healthy run; like
    /// `phases` it reports what *happened*, not the trajectory, so it is
    /// excluded from [`RoundTelemetry::same_gate_trajectory`].
    pub worker_panics: usize,
    /// Why the run stopped offering rounds ([`StopReason::Completed`] unless
    /// a deadline, cancellation, or the adaptive stopping rule cut it short).
    pub stop_reason: StopReason,
}

impl RoundTelemetry {
    /// Records one gate verdict. `tie` implies `accepted`.
    pub fn record_gate(&mut self, coco_delta: i64, div_delta: i64, accepted: bool, tie: bool) {
        debug_assert!(accepted || !tie, "a tie is by definition kept");
        if accepted {
            self.accepted += 1;
            if tie {
                self.ties += 1;
            }
        } else {
            self.rejected += 1;
        }
        self.delta_coco.record(coco_delta);
        self.delta_div.record(div_delta);
    }

    /// Total rounds the gate ruled on (`accepted + rejected`).
    pub fn rounds(&self) -> usize {
        self.accepted + self.rejected
    }

    /// Whether the gate-side telemetry of two runs agrees (phase wall-clock
    /// excluded — timing is never deterministic). This is the
    /// telemetry-level statement of the byte-identity guarantee.
    pub fn same_gate_trajectory(&self, other: &RoundTelemetry) -> bool {
        self.accepted == other.accepted
            && self.rejected == other.rejected
            && self.ties == other.ties
            && self.delta_coco == other.delta_coco
            && self.delta_div == other.delta_div
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_recording_counts_and_histograms() {
        let mut t = RoundTelemetry::default();
        t.record_gate(-5, -1, true, false);
        t.record_gate(0, 0, true, true);
        t.record_gate(3, -2, false, false);
        t.record_gate(2, 2, true, true);
        assert_eq!(t.accepted, 3);
        assert_eq!(t.rejected, 1);
        assert_eq!(t.ties, 2);
        assert_eq!(t.rounds(), 4);
        assert_eq!(t.delta_coco.count(), 4);
        assert_eq!(t.delta_div.count(), 4);
        assert_eq!(t.delta_coco.min(), Some(-5));
        assert_eq!(t.delta_coco.max(), Some(3));
    }

    #[test]
    fn gate_trajectory_comparison_ignores_phases() {
        let mut a = RoundTelemetry::default();
        let mut b = RoundTelemetry::default();
        a.record_gate(-1, 0, true, false);
        b.record_gate(-1, 0, true, false);
        a.phases.add(tie_trace::Phase::Sweep, 123);
        b.phases.add(tie_trace::Phase::Sweep, 456);
        assert!(a.same_gate_trajectory(&b));
        b.record_gate(1, 1, true, true);
        assert!(!a.same_gate_trajectory(&b));
    }
}
