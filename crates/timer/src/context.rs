//! Per-topology reusable state for the TIMER search.
//!
//! Everything TIMER derives from the *processor* graph alone is pure and
//! reusable across every enhancement request targeting the same topology:
//! the partial-cube labeling, the seeded digit-permutation streams, and the
//! sizing of the hierarchy scratch buffers. A [`TopologyContext`] owns that
//! state so `Timer::enhance_with_context` can borrow it instead of
//! rebuilding it per call — the library split the `mapd` service caches
//! behind a keyed per-topology cache.
//!
//! Correctness contract: a context never influences result bytes, only
//! latency. The permutation streams are memoized verbatim from the driver's
//! original generation code (same seed derivation, same RNG, same shuffle),
//! so a run through a warm context is byte-identical to a run through a
//! cold one — pinned by the driver's `enhance_with_context` tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tie_graph::Graph;
use tie_topology::{recognize_partial_cube, PartialCubeLabeling};

use crate::error::TieError;

/// Cap on memoized permutation streams per context. Streams are keyed by
/// `(seed, dim, num_hierarchies)`; a long-running service that cycles
/// through many seeds must not grow a context without bound, so the oldest
/// key (BTreeMap order) is dropped once the cap is hit. Purely a memory
/// bound — an evicted stream is regenerated identically on the next request.
const MAX_PERM_STREAMS: usize = 64;

/// Memoized permutation streams, keyed by `(seed, dim, num_hierarchies)`.
type PermMemo = BTreeMap<(u64, usize, usize), Arc<Vec<Vec<usize>>>>;

/// Reusable per-topology state: the partial-cube labeling of the processor
/// graph, memoized digit-permutation streams, and a scratch sizing hint.
///
/// A context is immutable from the caller's perspective and `Sync`:
/// concurrent enhancements may share one context through an `Arc`. Interior
/// mutability is limited to the permutation memo (a mutex around a small
/// map) and the sizing high-water mark (an atomic) — neither affects
/// result bytes.
#[derive(Debug)]
pub struct TopologyContext {
    pcube: PartialCubeLabeling,
    /// `(seed, dim, num_hierarchies)` → the permutation stream the driver
    /// draws for that configuration. `dim` includes the per-instance
    /// extension bits, so one topology can hold streams for several widths.
    perms: Mutex<PermMemo>,
    /// Largest application-graph vertex count seen by this context; used to
    /// pre-size `HierarchyScratch` buffers for later runs.
    vertex_high_water: AtomicUsize,
}

impl TopologyContext {
    /// Wraps an already-recognized partial-cube labeling.
    pub fn new(pcube: PartialCubeLabeling) -> Self {
        TopologyContext {
            pcube,
            perms: Mutex::new(BTreeMap::new()),
            vertex_high_water: AtomicUsize::new(0),
        }
    }

    /// Recognizes `gp` as a partial cube and builds a context for it.
    ///
    /// # Errors
    /// [`TieError::Recognition`] when `gp` is not a partial cube.
    pub fn recognize(gp: &Graph) -> Result<Self, TieError> {
        Ok(TopologyContext::new(recognize_partial_cube(gp)?))
    }

    /// The partial-cube labeling of the processor graph.
    pub fn pcube(&self) -> &PartialCubeLabeling {
        &self.pcube
    }

    /// Number of PEs of the underlying topology.
    pub fn num_pes(&self) -> usize {
        self.pcube.num_pes()
    }

    /// The permutation stream for `(seed, dim, num_hierarchies)`, memoized.
    /// The first request generates it with [`generate_permutations`]; later
    /// requests share the same `Arc`. Generation is deterministic, so a
    /// regenerated stream (after eviction, or raced by two cold requests)
    /// is identical to the first.
    pub fn permutations(
        &self,
        seed: u64,
        dim: usize,
        num_hierarchies: usize,
    ) -> Arc<Vec<Vec<usize>>> {
        let key = (seed, dim, num_hierarchies);
        let mut memo = self.lock_perms();
        if let Some(stream) = memo.get(&key) {
            return Arc::clone(stream);
        }
        let generated = Arc::new(generate_permutations(seed, dim, num_hierarchies));
        if memo.len() >= MAX_PERM_STREAMS {
            memo.pop_first();
        }
        memo.insert(key, Arc::clone(&generated));
        generated
    }

    /// Records that an instance with `num_vertices` application vertices ran
    /// against this context (raises the scratch sizing high-water mark).
    pub fn note_vertices(&self, num_vertices: usize) {
        self.vertex_high_water
            .fetch_max(num_vertices, Ordering::Relaxed);
    }

    /// Suggested vertex capacity for pre-sizing `HierarchyScratch` buffers:
    /// the largest instance this context has served so far (0 when cold).
    pub fn scratch_vertices_hint(&self) -> usize {
        self.vertex_high_water.load(Ordering::Relaxed)
    }

    fn lock_perms(&self) -> MutexGuard<'_, PermMemo> {
        match self.perms.lock() {
            Ok(guard) => guard,
            // The memo is only ever mutated under this lock and every
            // mutation leaves it consistent, so a poisoned lock (a panic
            // elsewhere while holding it) is safe to recover.
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Generates the driver's permutation stream for one configuration: one
/// shuffled `0..dim` permutation per hierarchy, drawn from a seeded RNG.
///
/// This is the byte-identity anchor of the context split — the exact code
/// (seed derivation constant included) the driver has always run inline, so
/// every `(threads, batch)` setting and every cache disposition sees the
/// identical hierarchies.
pub fn generate_permutations(seed: u64, dim: usize, num_hierarchies: usize) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x51ed_270b));
    (0..num_hierarchies)
        .map(|_| {
            let mut perm: Vec<usize> = (0..dim).collect();
            perm.shuffle(&mut rng);
            perm
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_topology::Topology;

    #[test]
    fn permutation_streams_are_memoized_and_keyed() {
        let topo = Topology::grid2d(4, 4);
        let ctx = TopologyContext::recognize(&topo.graph).unwrap();
        let a = ctx.permutations(7, 10, 12);
        let b = ctx.permutations(7, 10, 12);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one stream");
        let c = ctx.permutations(7, 11, 12);
        assert!(
            !Arc::ptr_eq(&a, &c),
            "a different dim is a different stream"
        );
        assert_eq!(a.len(), 12);
        for perm in a.iter() {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn memoized_stream_matches_direct_generation() {
        let topo = Topology::grid2d(2, 4);
        let ctx = TopologyContext::recognize(&topo.graph).unwrap();
        assert_eq!(
            *ctx.permutations(3, 8, 5),
            generate_permutations(3, 8, 5),
            "memoization must not change the stream"
        );
    }

    #[test]
    fn vertex_high_water_only_rises() {
        let topo = Topology::hypercube(3);
        let ctx = TopologyContext::recognize(&topo.graph).unwrap();
        assert_eq!(ctx.scratch_vertices_hint(), 0);
        ctx.note_vertices(100);
        ctx.note_vertices(40);
        assert_eq!(ctx.scratch_vertices_hint(), 100);
        ctx.note_vertices(250);
        assert_eq!(ctx.scratch_vertices_hint(), 250);
    }

    #[test]
    fn perm_memo_is_capacity_bounded() {
        let topo = Topology::grid2d(2, 2);
        let ctx = TopologyContext::recognize(&topo.graph).unwrap();
        for seed in 0..(MAX_PERM_STREAMS as u64 + 8) {
            let _ = ctx.permutations(seed, 4, 2);
        }
        assert!(ctx.lock_perms().len() <= MAX_PERM_STREAMS);
        // An evicted stream regenerates identically.
        assert_eq!(*ctx.permutations(0, 4, 2), generate_permutations(0, 4, 2));
    }
}
