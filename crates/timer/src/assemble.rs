//! Reassembling a fine-level labeling from a swapped hierarchy
//! (function `assemble()` — Algorithm 2 of the paper), plus a bijection
//! repair step that guarantees the result is a permutation of the original
//! label set.
//!
//! The least and most significant digit of every fine label are inherited
//! from the (post-sweep) level-1 label; every digit in between is taken from
//! the last digit of the vertex's ancestor on the corresponding level — the
//! *preferred* digit — unless no original label carries the resulting prefix,
//! in which case the inverted digit is written (lines 9–14 of Algorithm 2).
//!
//! Because the preferred-digit rule only checks prefix *existence* (not
//! multiplicity), the assembled labels can occasionally collide or leave the
//! original label set. The paper accepts this as part of the heuristic; to
//! keep the hard invariant that TIMER never changes the label set — which is
//! what preserves the balance of `µ` (Section 4) — [`assemble_labels`]
//! finishes with a repair pass that reassigns leftover original labels to the
//! affected vertices (nearest by Hamming distance on the PE digits first).

use std::collections::{BTreeMap, HashSet};

use crate::hierarchy::HierarchyRun;

/// Outcome of [`assemble_labels`].
#[derive(Clone, Debug)]
pub struct AssembleResult {
    /// New fine-level labels (same label set as the input hierarchy's level 0).
    pub labels: Vec<u64>,
    /// Number of vertices whose assembled label had to be repaired.
    pub repaired: usize,
}

/// Runs Algorithm 2 on a hierarchy and returns repaired fine-level labels.
///
/// `dim` is the total number of label digits at the finest level.
pub fn assemble_labels(run: &HierarchyRun, dim: usize) -> AssembleResult {
    let finest = &run.levels[0];
    let n = finest.labels.len();
    let original: &[u64] = &finest.labels;
    if n == 0 || dim < 2 || run.levels.len() < 2 {
        return AssembleResult {
            labels: original.to_vec(),
            repaired: 0,
        };
    }

    // Prefix-existence sets: prefixes[i] holds every original label truncated
    // to its lowest i digits (needed by the line-10 check of Algorithm 2).
    let mut prefixes: Vec<HashSet<u64>> = vec![HashSet::new(); dim + 1];
    for &l in original {
        for (i, set) in prefixes.iter_mut().enumerate().skip(1) {
            set.insert(l & low_mask(i));
        }
    }

    let msb = 1u64 << (dim - 1);
    let mut new_labels = vec![0u64; n];
    for v in 0..n {
        let old = original[v];
        let mut label = old & 1; // least significant digit inherited
        let mut ancestor = v as u32;
        // Digits 1 .. dim-2 come from the ancestors' last digits.
        for digit in 1..dim.saturating_sub(1) {
            // Ancestor on level `digit` (labels there are truncated by `digit`).
            if digit >= run.levels.len() {
                // Hierarchy shorter than expected (tiny dim); keep old digit.
                label |= old & (1u64 << digit);
                continue;
            }
            ancestor = run.levels[digit - 1].fine_to_coarse[ancestor as usize];
            let parent_label = run.levels[digit].labels[ancestor as usize];
            let preferred = parent_label & 1;
            let candidate = label | (preferred << digit);
            if prefixes[digit + 1].contains(&candidate) {
                label = candidate;
            } else {
                label |= (1 - preferred) << digit;
            }
        }
        // Most significant digit inherited from the old label.
        label |= old & msb;
        new_labels[v] = label;
    }

    let repaired = repair_bijection(&mut new_labels, original);
    AssembleResult {
        labels: new_labels,
        repaired,
    }
}

#[inline]
fn low_mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Makes `labels` a permutation of `original`: vertices whose label is
/// duplicated or absent from the original set receive leftover original
/// labels, nearest first by Hamming distance. Returns the number of repaired
/// vertices.
fn repair_bijection(labels: &mut [u64], original: &[u64]) -> usize {
    // Label-sorted so the leftover list below comes out ordered without an
    // extra sort (and never in hash order).
    let mut budget: BTreeMap<u64, u32> = BTreeMap::new();
    for &l in original {
        *budget.entry(l).or_insert(0) += 1;
    }
    // First pass: consume budget for labels that are fine.
    let mut needs_fix: Vec<usize> = Vec::new();
    for (v, &l) in labels.iter().enumerate() {
        match budget.get_mut(&l) {
            Some(count) if *count > 0 => *count -= 1,
            _ => needs_fix.push(v),
        }
    }
    if needs_fix.is_empty() {
        return 0;
    }
    let mut leftovers: Vec<u64> = budget
        .into_iter()
        .flat_map(|(l, c)| std::iter::repeat_n(l, c as usize))
        .collect();
    for &v in &needs_fix {
        let want = labels[v];
        // Nearest leftover by Hamming distance (ties: numerically smallest).
        // Pigeonhole: every unmatched vertex left exactly one unit of budget
        // unconsumed, so a leftover always exists here.
        let (idx, _) = leftovers
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| ((l ^ want).count_ones(), l))
            // tie-lint: allow(no-panic-paths) — pigeonhole invariant: one leftover per unmatched vertex
            .expect("leftover label must exist for every unmatched vertex");
        labels[v] = leftovers.swap_remove(idx);
    }
    needs_fix.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::build_hierarchy;
    use tie_graph::generators;

    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v
    }

    #[test]
    fn assemble_preserves_label_set() {
        let g = generators::randomize_edge_weights(&generators::barabasi_albert(128, 3, 1), 3, 2);
        let labels: Vec<u64> = (0..128u64).collect();
        let run = build_hierarchy(&g, labels.clone(), 7, 0b111_1000, 0b000_0111, 1);
        let result = assemble_labels(&run, 7);
        assert_eq!(sorted(result.labels.clone()), sorted(labels));
    }

    #[test]
    fn assemble_keeps_lsb_and_msb() {
        let g = generators::cycle_graph(16);
        let labels: Vec<u64> = (0..16u64).collect();
        let run = build_hierarchy(&g, labels, 4, 0b1100, 0b0011, 1);
        let result = assemble_labels(&run, 4);
        for (v, &new) in result.labels.iter().enumerate() {
            if result.repaired == 0 {
                let old = run.levels[0].labels[v];
                assert_eq!(new & 1, old & 1, "LSB of vertex {v}");
                assert_eq!(new & 0b1000, old & 0b1000, "MSB of vertex {v}");
            }
        }
    }

    #[test]
    fn assemble_on_trivial_hierarchy_returns_input() {
        let g = generators::path_graph(4);
        let labels = vec![0u64, 1, 2, 3];
        let run = build_hierarchy(&g, labels.clone(), 2, 0b10, 0b01, 1);
        let result = assemble_labels(&run, 2);
        assert_eq!(result.labels, run.levels[0].labels);
        assert_eq!(result.repaired, 0);
    }

    #[test]
    fn repair_fixes_duplicates() {
        let original = vec![0u64, 1, 2, 3];
        let mut broken = vec![0u64, 1, 1, 7];
        let repaired = repair_bijection(&mut broken, &original);
        assert_eq!(repaired, 2);
        assert_eq!(sorted(broken), original);
    }

    #[test]
    fn repair_noop_on_permutation() {
        let original = vec![4u64, 9, 2, 7];
        let mut permuted = vec![7u64, 2, 9, 4];
        assert_eq!(repair_bijection(&mut permuted, &original), 0);
        assert_eq!(permuted, vec![7, 2, 9, 4]);
    }

    #[test]
    fn repair_prefers_hamming_nearest_label() {
        let original = vec![0b0000u64, 0b0001, 0b1000, 0b1111];
        // Vertex 3 wants 0b1110 (absent); nearest leftover is 0b1111.
        let mut broken = vec![0b0000u64, 0b0001, 0b1000, 0b1110];
        repair_bijection(&mut broken, &original);
        assert_eq!(broken[3], 0b1111);
    }
}
