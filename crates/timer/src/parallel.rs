//! Thread-parallel variant of the level-1 swap sweep.
//!
//! Section 6.3 of the paper suggests loop parallelization of the label-swap
//! loop as the first step towards a parallel TIMER, with the caveat that
//! label accesses must be coordinated to avoid stale data. The implementation
//! here follows a two-phase scheme that needs no locking in the hot loop:
//!
//! 1. **Scoring** — the candidate pairs are split into chunks and every
//!    worker computes swap gains against a frozen snapshot of the labels
//!    (read-only sharing, no data races by construction).
//! 2. **Commit** — the main thread re-validates each positive candidate
//!    against the live labels (gains may have gone stale if a neighbouring
//!    pair was swapped first) and applies it only if it still improves the
//!    objective.
//!
//! The result is deterministic, independent of the thread count (the
//! candidate list comes out in pair order regardless of how the chunks were
//! split), and never worsens the objective or changes the label multiset.
//! It is **not** guaranteed to commit the same swap set as the sequential
//! sweep: a pair whose gain only materializes after an earlier swap is found
//! by the sequential sweep (which scores against live labels) but missed
//! here, because phase 1 scores against the frozen snapshot. Both sweeps
//! improve comparably in practice — see the
//! `parallel_and_sequential_both_improve_comparably` test below and the
//! `parallel_sweep_invariants` proptest.
//!
//! The TIMER driver itself no longer calls this: it parallelizes across
//! whole hierarchy rounds (see [`crate::driver`]), which keeps results
//! byte-identical to the sequential trajectory. This sweep remains the
//! in-round alternative for callers of [`crate::hierarchy::build_hierarchy`]
//! that want intra-round parallelism and can tolerate a different (still
//! monotone) swap set.

use crossbeam::thread;

use tie_graph::{Graph, NodeId};

use crate::hierarchy::swap_pairs;
use crate::objective::swap_delta;

/// Parallel swap sweep over all candidate pairs. Returns the number of swaps
/// actually committed.
pub fn parallel_sweep(
    graph: &Graph,
    labels: &mut [u64],
    p_mask: u64,
    e_mask: u64,
    threads: usize,
) -> usize {
    let pairs = swap_pairs(labels);
    if pairs.is_empty() {
        return 0;
    }
    let threads = threads.max(1).min(pairs.len());

    // Phase 1: score all pairs against a frozen label snapshot.
    let snapshot: &[u64] = labels;
    let chunk_size = pairs.len().div_ceil(threads);
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    if threads == 1 {
        for &(u, v) in &pairs {
            if swap_delta(graph, snapshot, p_mask, e_mask, u, v) < 0 {
                candidates.push((u, v));
            }
        }
    } else {
        let chunk_results = thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in pairs.chunks(chunk_size) {
                handles.push(scope.spawn(move |_| {
                    chunk
                        .iter()
                        .copied()
                        .filter(|&(u, v)| swap_delta(graph, snapshot, p_mask, e_mask, u, v) < 0)
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(chunk) => chunk,
                    // Re-raise the worker's own panic payload instead of
                    // replacing it with an `expect` message; the driver's
                    // per-round panic guard (or the caller) deals with it.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<_>>()
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        for chunk in chunk_results {
            candidates.extend(chunk);
        }
    }

    // Phase 2: sequential re-validation and commit (stale gains are filtered).
    let mut swaps = 0usize;
    for (u, v) in candidates {
        if swap_delta(graph, labels, p_mask, e_mask, u, v) < 0 {
            labels.swap(u as usize, v as usize);
            swaps += 1;
        }
    }
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::sweep;
    use crate::objective::objective_for_labels;
    use tie_graph::generators;

    fn instance(seed: u64) -> (Graph, Vec<u64>) {
        let g =
            generators::randomize_edge_weights(&generators::barabasi_albert(256, 3, seed), 4, seed);
        // 8 digits: 3 extension digits, 5 PE digits; labels 0..256 unique.
        let labels: Vec<u64> = (0..256u64).collect();
        (g, labels)
    }

    #[test]
    fn parallel_sweep_never_worsens_objective() {
        let (g, labels) = instance(1);
        let (p_mask, e_mask) = (0b1111_1000, 0b0000_0111);
        for threads in [1usize, 2, 4] {
            let mut l = labels.clone();
            let before = objective_for_labels(&g, &l, p_mask, e_mask);
            parallel_sweep(&g, &mut l, p_mask, e_mask, threads);
            let after = objective_for_labels(&g, &l, p_mask, e_mask);
            assert!(after <= before, "threads={threads}");
            // Label multiset preserved.
            let mut sl = l.clone();
            sl.sort_unstable();
            assert_eq!(sl, (0..256u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_and_sequential_both_improve_comparably() {
        // The two sweeps may commit slightly different swap sets (the
        // parallel sweep scores against a frozen snapshot), but both must
        // improve the objective on an instance where improvements exist, and
        // neither may change the label multiset.
        let (g, labels) = instance(2);
        let (p_mask, e_mask) = (0b1111_1000, 0b0000_0111);
        let before = objective_for_labels(&g, &labels, p_mask, e_mask);
        let mut seq = labels.clone();
        let seq_swaps = sweep(&g, &mut seq, p_mask, e_mask);
        let mut par = labels.clone();
        let par_swaps = parallel_sweep(&g, &mut par, p_mask, e_mask, 4);
        let seq_after = objective_for_labels(&g, &seq, p_mask, e_mask);
        let par_after = objective_for_labels(&g, &par, p_mask, e_mask);
        assert!(
            seq_swaps > 0 && par_swaps > 0,
            "instance should admit improving swaps"
        );
        assert!(seq_after < before);
        assert!(par_after < before);
    }

    #[test]
    fn parallel_sweep_deterministic() {
        let (g, labels) = instance(3);
        let (p_mask, e_mask) = (0b1111_1000, 0b0000_0111);
        let mut a = labels.clone();
        let mut b = labels.clone();
        parallel_sweep(&g, &mut a, p_mask, e_mask, 3);
        parallel_sweep(&g, &mut b, p_mask, e_mask, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let g = Graph::from_edges(0, &[]);
        let mut labels: Vec<u64> = Vec::new();
        assert_eq!(parallel_sweep(&g, &mut labels, 1, 0, 4), 0);
    }
}
