//! Chaos suite: TIMER under injected worker panics, deadlines, cancellation
//! and the adaptive stopping rule.
//!
//! The central claims under test:
//!
//! * an injected speculative-worker panic is absorbed (quarantined round is
//!   re-run sequentially) and the committed trajectory stays **byte-identical**
//!   to a clean sequential run, for every thread count,
//! * a *persistent* fault (panics again on the sequential re-run) surfaces as
//!   `TieError::WorkerPanicked` instead of tearing the process down,
//! * deadline expiry, cancellation and the k-consecutive-rejections rule
//!   return a fully committed best-so-far labeling with the right
//!   `StopReason`.

use std::sync::Once;
use std::time::Duration;

use tie_fault::{FaultHandle, FaultPlan, INJECTED_PANIC_PREFIX};
use tie_graph::generators;
use tie_mapping::Mapping;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, CancelToken, StopReason, TieError, TimerConfig, TimerResult};
use tie_topology::{recognize_partial_cube, PartialCubeLabeling, Topology};

const NH: usize = 8;
const SEED: u64 = 7;

/// Injected panics are expected here; keep the default hook from spraying
/// backtraces for them while leaving real panics loud.
fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.starts_with(INJECTED_PANIC_PREFIX));
            if !injected {
                default(info);
            }
        }));
    });
}

fn fixture() -> (tie_graph::Graph, PartialCubeLabeling, Mapping, Topology) {
    let ga = generators::barabasi_albert(600, 3, SEED);
    let topo = Topology::grid2d(8, 8);
    let pcube = recognize_partial_cube(&topo.graph).unwrap();
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), SEED));
    let mapping = Mapping::from_partition(
        &part,
        &generators::random_permutation(topo.num_pes(), SEED),
        topo.num_pes(),
    );
    (ga, pcube, mapping, topo)
}

fn assert_same_trajectory(a: &TimerResult, b: &TimerResult, context: &str) {
    assert_eq!(a.labeling.labels, b.labeling.labels, "{context}: labels");
    assert_eq!(a.mapping, b.mapping, "{context}: mapping");
    assert_eq!(a.final_coco, b.final_coco, "{context}: final_coco");
    assert_eq!(
        a.final_coco_plus, b.final_coco_plus,
        "{context}: final_coco_plus"
    );
    assert_eq!(
        a.hierarchies_accepted, b.hierarchies_accepted,
        "{context}: hierarchies_accepted"
    );
    assert_eq!(a.total_swaps, b.total_swaps, "{context}: total_swaps");
}

#[test]
fn transient_worker_panic_is_absorbed_and_byte_identical() {
    silence_injected_panics();
    let (ga, pcube, mapping, _) = fixture();
    let clean = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(NH, SEED)).unwrap();
    assert_eq!(clean.stop_reason, StopReason::Completed);
    assert_eq!(clean.telemetry.worker_panics, 0);

    for threads in 1..=8usize {
        // One panic armed in the middle of the run: it fires on the first
        // attempt of round 3 (speculative or sequential) and is consumed, so
        // the quarantine re-run succeeds.
        let faults = FaultHandle::new(FaultPlan::new().with_panic_at_round(3));
        let cfg = TimerConfig::new(NH, SEED)
            .with_threads(threads)
            .with_faults(faults);
        let faulty = enhance_mapping(&ga, &pcube, &mapping, cfg)
            .unwrap_or_else(|e| panic!("threads {threads}: enhance failed: {e}"));
        assert_eq!(
            faulty.telemetry.worker_panics, 1,
            "threads {threads}: the injected panic must be counted"
        );
        assert_eq!(faulty.stop_reason, StopReason::Completed);
        assert_same_trajectory(&faulty, &clean, &format!("threads {threads}"));
    }
}

#[test]
fn seeded_panic_storm_is_absorbed_and_byte_identical() {
    silence_injected_panics();
    let (ga, pcube, mapping, _) = fixture();
    let clean = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(NH, SEED)).unwrap();

    for threads in [2usize, 4, 8] {
        // Three seeded one-shot panics spread over the first NH rounds.
        let faults = FaultHandle::new(FaultPlan::new().with_seeded_panics(99, 3, NH));
        let cfg = TimerConfig::new(NH, SEED)
            .with_threads(threads)
            .with_faults(faults.clone());
        let faulty = enhance_mapping(&ga, &pcube, &mapping, cfg).unwrap();
        assert_eq!(
            faulty.telemetry.worker_panics,
            faults.panics_fired(),
            "every fired panic must be accounted for"
        );
        assert!(faulty.telemetry.worker_panics >= 1);
        assert_same_trajectory(&faulty, &clean, &format!("storm, threads {threads}"));
    }
}

#[test]
fn persistent_panic_is_reported_as_worker_panicked() {
    silence_injected_panics();
    let (ga, pcube, mapping, _) = fixture();
    for threads in [1usize, 4] {
        // Armed twice at the same round: the quarantine re-run panics too,
        // which the driver must surface as a typed error.
        let faults = FaultHandle::new(FaultPlan::new().with_panic_at_round_times(2, 2));
        let cfg = TimerConfig::new(NH, SEED)
            .with_threads(threads)
            .with_faults(faults);
        match enhance_mapping(&ga, &pcube, &mapping, cfg) {
            Err(TieError::WorkerPanicked { round, message }) => {
                assert_eq!(round, 2);
                assert!(
                    message.contains(INJECTED_PANIC_PREFIX),
                    "panic payload should be preserved: {message}"
                );
            }
            other => panic!("threads {threads}: expected WorkerPanicked, got {other:?}"),
        }
    }
}

#[test]
fn expired_deadline_returns_best_so_far() {
    let (ga, pcube, mapping, topo) = fixture();
    // A deadline far shorter than the run: the driver stops at the first
    // batch boundary it checks. 1 ns is over before the loop starts, so the
    // result is the initial labeling, fully committed and consistent.
    let cfg = TimerConfig::new(NH, SEED).with_deadline(Duration::from_nanos(1));
    let result = enhance_mapping(&ga, &pcube, &mapping, cfg).unwrap();
    assert_eq!(result.stop_reason, StopReason::DeadlineExceeded);
    assert_eq!(result.telemetry.stop_reason, StopReason::DeadlineExceeded);
    assert!(result.hierarchies_accepted <= NH);
    assert!(
        result.final_coco <= result.initial_coco,
        "best-so-far must never be worse than the initial mapping"
    );
    // The returned labeling is a consistent snapshot: it still encodes a
    // valid mapping onto the same topology.
    assert_eq!(result.mapping.num_tasks(), ga.num_vertices());
    assert_eq!(result.mapping.num_pes(), topo.num_pes());
}

#[test]
fn cancel_token_stops_the_run() {
    let (ga, pcube, mapping, _) = fixture();
    let token = CancelToken::new();
    token.cancel();
    let cfg = TimerConfig::new(NH, SEED).with_cancel_token(token);
    let result = enhance_mapping(&ga, &pcube, &mapping, cfg).unwrap();
    assert_eq!(result.stop_reason, StopReason::Cancelled);
    assert_eq!(result.hierarchies_accepted, 0);
    assert_eq!(result.final_coco, result.initial_coco);
}

#[test]
fn rejection_stopping_rule_truncates_identically_across_threads() {
    let (ga, pcube, mapping, _) = fixture();
    let k = 2usize;
    let mut reference: Option<TimerResult> = None;
    for threads in 1..=8usize {
        let cfg = TimerConfig::new(NH, SEED)
            .with_threads(threads)
            .stop_after_rejections(k);
        let result = enhance_mapping(&ga, &pcube, &mapping, cfg).unwrap();
        match result.stop_reason {
            StopReason::Completed => {
                assert!(
                    result.telemetry.rejected < k || result.telemetry.rounds() == NH,
                    "completed runs must not contain an unseen k-rejection streak"
                );
            }
            StopReason::ConsecutiveRejections(seen) => assert_eq!(seen, k),
            other => panic!("unexpected stop reason {other:?}"),
        }
        match &reference {
            None => reference = Some(result),
            Some(r) => assert_same_trajectory(&result, r, &format!("k-stop, threads {threads}")),
        }
    }
}

#[test]
fn zero_deadline_and_zero_k_are_rejected_up_front() {
    let (ga, pcube, mapping, _) = fixture();
    let err = enhance_mapping(
        &ga,
        &pcube,
        &mapping,
        TimerConfig::new(NH, SEED).with_deadline(Duration::ZERO),
    )
    .unwrap_err();
    assert!(matches!(err, TieError::InvalidInput(_)), "{err:?}");
    let err = enhance_mapping(
        &ga,
        &pcube,
        &mapping,
        TimerConfig::new(NH, SEED).stop_after_rejections(0),
    )
    .unwrap_err();
    assert!(matches!(err, TieError::InvalidInput(_)), "{err:?}");
}

#[test]
fn phase_delays_do_not_change_the_trajectory() {
    let (ga, pcube, mapping, _) = fixture();
    let clean = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(NH, SEED)).unwrap();
    let faults = FaultHandle::new(
        FaultPlan::new()
            .with_delay("hierarchy_build", Duration::from_micros(200))
            .with_delay("delta_scan", Duration::from_micros(200)),
    );
    let cfg = TimerConfig::new(NH, SEED)
        .with_threads(4)
        .with_faults(faults);
    let delayed = enhance_mapping(&ga, &pcube, &mapping, cfg).unwrap();
    assert_same_trajectory(&delayed, &clean, "delays");
    assert_eq!(delayed.telemetry.worker_panics, 0);
}
