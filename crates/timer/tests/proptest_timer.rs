//! Property-based tests of the TIMER invariants on randomized instances:
//! the label set (and hence the balance of µ) is always preserved, the
//! accepted objective never worsens, labels stay unique, and the label-based
//! Coco always equals the distance-based Coco.

use proptest::prelude::*;

use tie_graph::traversal::all_pairs_distances;
use tie_graph::{generators, Graph};
use tie_mapping::Mapping;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{coco, enhance_mapping, Labeling, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};

/// Random small instance: a BA network, one of the small topologies, and a
/// partition-based initial mapping with a scrambled block-to-PE bijection.
fn instance(n: usize, topo_idx: usize, seed: u64) -> (Graph, Topology, Mapping) {
    let ga = generators::barabasi_albert(n, 3, seed);
    let topologies = [
        Topology::grid2d(4, 4),
        Topology::torus2d(4, 4),
        Topology::hypercube(4),
        Topology::grid3d(2, 2, 4),
    ];
    let topo = topologies[topo_idx % topologies.len()].clone();
    let k = topo.num_pes();
    let part = partition(&ga, &PartitionConfig::new(k, seed));
    let nu = generators::random_permutation(k, seed ^ 0xabcd);
    let mapping = Mapping::from_partition(&part, &nu, k);
    (ga, topo, mapping)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TIMER preserves the load multiset (balance), keeps labels unique and
    /// never worsens Coco+.
    #[test]
    fn timer_invariants(
        n in 100..400usize,
        topo_idx in 0..4usize,
        seed in 0..200u64,
        nh in 1..6usize,
    ) {
        let (ga, topo, mapping) = instance(n, topo_idx, seed);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(nh, seed)).unwrap();

        // Balance preservation.
        let mut before = mapping.load_per_pe();
        let mut after = result.mapping.load_per_pe();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);

        // Monotone accepted objective.
        prop_assert!(result.final_coco_plus <= result.initial_coco_plus);

        // Unique labels.
        prop_assert!(result.labeling.is_unique());

        // Label-based Coco agrees with the distance-based definition.
        let dist = all_pairs_distances(&topo.graph);
        let expected: u64 = ga
            .edges()
            .map(|(u, v, w)| w * dist.get(result.mapping.pe_of(u), result.mapping.pe_of(v)) as u64)
            .sum();
        prop_assert_eq!(result.final_coco, expected);
    }

    /// The initial labeling is always a valid encoding of the mapping,
    /// regardless of the extension-shuffle seed.
    #[test]
    fn labeling_encoding_roundtrip(n in 50..300usize, seed in 0..500u64, shuffle in 0..500u64) {
        let (ga, topo, mapping) = instance(n, (seed % 4) as usize, seed);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, shuffle).unwrap();
        prop_assert!(labeling.is_unique());
        prop_assert_eq!(labeling.to_mapping(), mapping.clone());
        prop_assert_eq!(coco(&ga, &labeling), {
            let dist = all_pairs_distances(&topo.graph);
            ga.edges()
                .map(|(u, v, w)| w * dist.get(mapping.pe_of(u), mapping.pe_of(v)) as u64)
                .sum::<u64>()
        });
    }

    /// The documented invariant of the snapshot-scored parallel sweep: for
    /// every thread count the label multiset is preserved and the objective
    /// never worsens. (It may commit a different swap set than the
    /// sequential sweep — see the module doc of `tie_timer::parallel` — but
    /// the committed result is identical for all thread counts.)
    #[test]
    fn parallel_sweep_invariants(n in 64..256usize, seed in 0..100u64, ext in 1..4u32) {
        let g = generators::randomize_edge_weights(
            &generators::barabasi_albert(n, 3, seed),
            4,
            seed,
        );
        let labels: Vec<u64> = (0..n as u64).collect();
        let dim = usize::BITS - (n - 1).leading_zeros();
        let e_mask = (1u64 << ext.min(dim - 1)) - 1;
        let p_mask = ((1u64 << dim) - 1) & !e_mask;
        let before = tie_timer::objective::objective_for_labels(&g, &labels, p_mask, e_mask);
        let mut sorted_original = labels.clone();
        sorted_original.sort_unstable();
        let mut reference: Option<Vec<u64>> = None;
        for threads in 1..=8usize {
            let mut l = labels.clone();
            tie_timer::parallel::parallel_sweep(&g, &mut l, p_mask, e_mask, threads);
            let after = tie_timer::objective::objective_for_labels(&g, &l, p_mask, e_mask);
            prop_assert!(after <= before, "threads={} worsened {} -> {}", threads, before, after);
            let mut sorted = l.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &sorted_original);
            match &reference {
                None => reference = Some(l),
                Some(r) => prop_assert_eq!(&l, r, "thread count changed the committed swap set"),
            }
        }
    }

    /// The speculative batched driver is a pure scheduling change: for any
    /// instance, thread count and batch depth, the result is byte-identical
    /// to the sequential trajectory.
    #[test]
    fn batched_driver_matches_sequential(
        n in 100..250usize,
        topo_idx in 0..4usize,
        seed in 0..100u64,
        threads in 2..5usize,
        batch in 0..6usize,
    ) {
        let (ga, topo, mapping) = instance(n, topo_idx, seed);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let sequential = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(4, seed)).unwrap();
        let batched = enhance_mapping(
            &ga,
            &pcube,
            &mapping,
            TimerConfig::new(4, seed).with_threads(threads).with_batch(batch),
        ).unwrap();
        prop_assert_eq!(&batched.labeling.labels, &sequential.labeling.labels);
        prop_assert_eq!(batched.final_coco, sequential.final_coco);
        prop_assert_eq!(batched.hierarchies_accepted, sequential.hierarchies_accepted);
        prop_assert_eq!(batched.total_swaps, sequential.total_swaps);
    }

    /// The incidence-limited delta scan is exact: for any random weighted
    /// graph, arbitrary labeling (duplicates allowed) and random partial
    /// relabeling, `coco_div_delta` agrees bit-for-bit with two full-graph
    /// `coco_and_div_for_labels` recomputes — including edges whose both
    /// endpoints were relabelled, which the scan must count exactly once.
    /// The accept-gate telemetry rides this scan, so its histograms are only
    /// as trustworthy as this equivalence.
    #[test]
    fn coco_div_delta_agrees_with_full_recompute(
        n in 20..200usize,
        seed in 0..500u64,
        ext in 0..4u32,
        change_rate in 1..64u64,
    ) {
        let g = generators::randomize_edge_weights(
            &generators::barabasi_albert(n, 3, seed),
            5,
            seed,
        );
        // Labels and the changed subset from a seeded LCG: the delta must be
        // exact for any labeling, not just valid mapping encodings.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let dim = 8u32;
        let label_mask = (1u64 << dim) - 1;
        let e_mask = (1u64 << ext) - 1; // ext = 0 → no extension digits
        let p_mask = label_mask & !e_mask;
        let old: Vec<u64> = (0..n).map(|_| next() & label_mask).collect();
        let mut new = old.clone();
        for label in new.iter_mut() {
            if next() % 64 < change_rate {
                *label = next() & label_mask;
            }
        }
        let (c0, d0) = tie_timer::objective::coco_and_div_for_labels(&g, &old, p_mask, e_mask);
        let (c1, d1) = tie_timer::objective::coco_and_div_for_labels(&g, &new, p_mask, e_mask);
        prop_assert_eq!(
            tie_timer::objective::coco_div_delta(&g, &old, &new, p_mask, e_mask),
            (c1 as i64 - c0 as i64, d1 as i64 - d0 as i64)
        );
    }

    /// A deadline-stopped run degrades gracefully for any instance and any
    /// deadline length: the result is a fully committed best-so-far labeling
    /// (Coco never worse than the initial mapping's, load multiset
    /// preserved, labels unique) and the stop reason is consistent with the
    /// accounting — `DeadlineExceeded` runs committed at most NH rounds,
    /// `Completed` runs saw every round.
    #[test]
    fn deadline_stop_degrades_gracefully(
        n in 100..300usize,
        topo_idx in 0..4usize,
        seed in 0..100u64,
        deadline_us in 1..2000u64,
    ) {
        let (ga, topo, mapping) = instance(n, topo_idx, seed);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let nh = 4;
        let cfg = TimerConfig::new(nh, seed)
            .with_deadline(std::time::Duration::from_micros(deadline_us));
        let result = enhance_mapping(&ga, &pcube, &mapping, cfg).unwrap();

        match result.stop_reason {
            tie_timer::StopReason::DeadlineExceeded => {
                prop_assert!(result.telemetry.rounds() <= nh);
            }
            tie_timer::StopReason::Completed => {
                prop_assert_eq!(result.telemetry.rounds(), nh);
            }
            other => prop_assert!(false, "unexpected stop reason {:?}", other),
        }
        prop_assert!(result.final_coco <= result.initial_coco);
        prop_assert!(result.final_coco_plus <= result.initial_coco_plus);
        prop_assert!(result.labeling.is_unique());
        let mut before = mapping.load_per_pe();
        let mut after = result.mapping.load_per_pe();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
        prop_assert_eq!(result.mapping.num_pes(), topo.num_pes());
    }

    /// The polish pass (refinement extension) preserves the label set and
    /// never worsens the objective, for any instance and sweep count.
    #[test]
    fn polish_invariants(n in 100..300usize, seed in 0..100u64, sweeps in 1..4usize) {
        let (ga, topo, mapping) = instance(n, (seed % 4) as usize, seed);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let mut labeling = Labeling::from_mapping(&ga, &pcube, &mapping, seed).unwrap();
        let set_before = labeling.sorted_label_set();
        let obj_before = tie_timer::coco_plus(&ga, &labeling);
        tie_timer::polish(&ga, &mut labeling, true, sweeps);
        prop_assert_eq!(labeling.sorted_label_set(), set_before);
        prop_assert!(tie_timer::coco_plus(&ga, &labeling) <= obj_before);
        prop_assert!(labeling.is_unique());
    }
}
