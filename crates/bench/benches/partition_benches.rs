//! Criterion benchmarks for the multilevel partitioner (the KaHIP stand-in
//! whose running time is the denominator of Table 2 / Table 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tie_bench::workloads::{paper_networks, Scale};
use tie_partition::{partition, PartitionConfig};

/// Partitioning one network into k blocks for the k values of Table 3
/// (scaled down: 64 and 128 blocks).
fn partition_by_k(c: &mut Criterion) {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "as-22july06")
        .unwrap();
    let ga = spec.build(Scale::Tiny);
    let mut group = c.benchmark_group("partition_by_k");
    group.sample_size(10);
    for k in [16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| partition(&ga, &PartitionConfig::new(k, 3)));
        });
    }
    group.finish();
}

/// Partitioning time across structurally different networks (Table 3 rows).
fn partition_by_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_by_network");
    group.sample_size(10);
    for spec in paper_networks().iter().take(5) {
        let ga = spec.build(Scale::Tiny);
        group.bench_function(spec.name, |b| {
            b.iter(|| partition(&ga, &PartitionConfig::new(64, 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, partition_by_k, partition_by_network);
criterion_main!(benches);
