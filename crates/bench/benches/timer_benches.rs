//! Criterion micro-benchmarks for the TIMER core: NH sweep (Table 2's cost
//! driver), the Coco⁺ objective ablation, and the sequential driver vs the
//! speculative hierarchy batches (Section 6.3 outlook). The batched driver
//! returns byte-identical results for every thread count, so the
//! `timer_speculative_batches` group measures pure scheduling gains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tie_bench::workloads::{paper_networks, Scale};
use tie_mapping::identity_mapping;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};

fn bench_instance() -> (
    tie_graph::Graph,
    tie_topology::PartialCubeLabeling,
    tie_mapping::Mapping,
    Topology,
) {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "PGPgiantcompo")
        .unwrap();
    let ga = spec.build(Scale::Tiny);
    let topo = Topology::grid2d(8, 8);
    let pcube = recognize_partial_cube(&topo.graph).unwrap();
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 1));
    let mapping = identity_mapping(&part, topo.num_pes());
    (ga, pcube, mapping, topo)
}

/// Ablation: how the number of hierarchies NH drives TIMER's running time
/// (the paper notes NH=10 already captures most of the improvement for c1).
fn nh_sweep(c: &mut Criterion) {
    let (ga, pcube, mapping, _) = bench_instance();
    let mut group = c.benchmark_group("timer_nh_sweep");
    group.sample_size(10);
    for nh in [1usize, 5, 10, 25] {
        group.bench_with_input(BenchmarkId::from_parameter(nh), &nh, |b, &nh| {
            b.iter(|| enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(nh, 3)).unwrap());
        });
    }
    group.finish();
}

/// Ablation: objective with and without the diversity term (Section 5).
fn objective_ablation(c: &mut Criterion) {
    let (ga, pcube, mapping, _) = bench_instance();
    let mut group = c.benchmark_group("timer_objective_ablation");
    group.sample_size(10);
    group.bench_function("coco_plus", |b| {
        b.iter(|| enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(5, 1)).unwrap());
    });
    group.bench_function("coco_only", |b| {
        b.iter(|| {
            enhance_mapping(
                &ga,
                &pcube,
                &mapping,
                TimerConfig::new(5, 1).without_diversity(),
            )
            .unwrap()
        });
    });
    group.finish();
}

/// Sequential driver vs speculative hierarchy batches at 2/4/8 workers
/// (results are byte-identical; only the wall-clock may differ).
fn speculative_batches(c: &mut Criterion) {
    let (ga, pcube, mapping, _) = bench_instance();
    let mut group = c.benchmark_group("timer_speculative_batches");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                enhance_mapping(
                    &ga,
                    &pcube,
                    &mapping,
                    TimerConfig::new(10, 2).with_threads(t),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

/// Per-topology cost of one TIMER run (the rows of Table 2 / Figure 5).
fn per_topology(c: &mut Criterion) {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "p2p-Gnutella")
        .unwrap();
    let ga = spec.build(Scale::Tiny);
    let mut group = c.benchmark_group("timer_per_topology");
    group.sample_size(10);
    for topo in Topology::small_topologies() {
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 1));
        let mapping = identity_mapping(&part, topo.num_pes());
        group.bench_function(&topo.name, |b| {
            b.iter(|| enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(5, 1)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    nh_sweep,
    objective_ablation,
    speculative_batches,
    per_topology
);
criterion_main!(benches);
