//! Criterion micro-benchmarks for the sort-based contraction kernel.
//!
//! `contract_level` is TIMER's hot path: at the medium scale it used to eat
//! ~80 % of the wall-clock through per-level `HashMap` allocation. These
//! benches time one contraction in isolation — both the allocating
//! convenience wrapper and the scratch-reusing kernel the driver actually
//! runs — so the kernel can never silently regress unbenchmarked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tie_bench::workloads::{paper_networks, Scale};
use tie_mapping::identity_mapping;
use tie_partition::{partition, PartitionConfig};
use tie_timer::hierarchy::{contract_level, contract_level_with, HierarchyScratch};
use tie_timer::Labeling;
use tie_topology::{recognize_partial_cube, Topology};

/// A realistic (graph, labels) contraction input: PGPgiantcompo mapped onto
/// grid8x8, labelled exactly as the driver labels its finest level.
fn contract_instance(scale: Scale) -> (tie_graph::Graph, Vec<u64>) {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "PGPgiantcompo")
        .unwrap();
    let ga = spec.build(scale);
    let topo = Topology::grid2d(8, 8);
    let pcube = recognize_partial_cube(&topo.graph).unwrap();
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 1));
    let mapping = identity_mapping(&part, topo.num_pes());
    let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, 1).unwrap();
    let labels = labeling.labels.clone();
    (ga, labels)
}

/// One contraction level through the allocating convenience wrapper.
fn contract_allocating(c: &mut Criterion) {
    let mut group = c.benchmark_group("contract_level_allocating");
    group.sample_size(10);
    for scale in [Scale::Tiny, Scale::Small, Scale::Medium] {
        let (ga, labels) = contract_instance(scale);
        let id = BenchmarkId::from_parameter(format!("{scale:?}"));
        group.bench_with_input(id, &(ga, labels), |b, (ga, labels)| {
            b.iter(|| contract_level(ga, labels));
        });
    }
    group.finish();
}

/// The same contraction with a warm `HierarchyScratch`, as the driver runs
/// it: after the first call every buffer is already sized, so this is the
/// steady-state per-level cost inside a hierarchy round.
fn contract_scratch_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("contract_level_scratch_reuse");
    group.sample_size(10);
    for scale in [Scale::Tiny, Scale::Small, Scale::Medium] {
        let (ga, labels) = contract_instance(scale);
        let id = BenchmarkId::from_parameter(format!("{scale:?}"));
        group.bench_with_input(id, &(ga, labels), |b, (ga, labels)| {
            let mut scratch = HierarchyScratch::default();
            contract_level_with(ga, labels, &mut scratch); // warm the buffers
            b.iter(|| contract_level_with(ga, labels, &mut scratch));
        });
    }
    group.finish();
}

criterion_group!(benches, contract_allocating, contract_scratch_reuse);
criterion_main!(benches);
