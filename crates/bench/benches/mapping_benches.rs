//! Criterion benchmarks for the initial-mapping baselines (the per-case cost
//! of constructing µ1 in Figures 5a–5d).

use criterion::{criterion_group, criterion_main, Criterion};

use tie_bench::workloads::{paper_networks, Scale};
use tie_mapping::{communication_graph, drb, greedy, identity_mapping, refine_by_swaps};
use tie_partition::{partition, PartitionConfig};
use tie_topology::Topology;

fn baselines(c: &mut Criterion) {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "email-EuAll")
        .unwrap();
    let ga = spec.build(Scale::Tiny);
    let topo = Topology::grid2d(8, 8);
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 1));
    let gc = communication_graph(&ga, &part);

    let mut group = c.benchmark_group("mapping_baselines");
    group.sample_size(10);
    group.bench_function("identity", |b| {
        b.iter(|| identity_mapping(&part, topo.num_pes()))
    });
    group.bench_function("greedy_allc", |b| {
        b.iter(|| greedy::greedy_allc(&gc, &topo.graph))
    });
    group.bench_function("greedy_min", |b| {
        b.iter(|| greedy::greedy_min(&gc, &topo.graph))
    });
    group.bench_function("drb", |b| {
        b.iter(|| drb::dual_recursive_bisection(&gc, &topo.graph, 3))
    });
    group.bench_function("ncm_swap_refinement", |b| {
        b.iter(|| {
            let mut nu: Vec<u32> = (0..topo.num_pes() as u32).collect();
            refine_by_swaps(&gc, &topo.graph, &mut nu, 5)
        })
    });
    group.finish();
}

criterion_group!(benches, baselines);
criterion_main!(benches);
