//! Criterion benchmarks for the substrates: partial-cube recognition (the
//! one-off preprocessing of Section 3), graph generation, and the metric
//! computations used by the harness.

use criterion::{criterion_group, criterion_main, Criterion};

use tie_bench::workloads::{paper_networks, Scale};
use tie_graph::generators;
use tie_mapping::Mapping;
use tie_metrics::{coco, congestion};
use tie_topology::{recognize_partial_cube, Topology};

/// Partial-cube recognition of the paper's five topologies (Section 3 claims
/// O(|Ep|^2); this is a one-off cost per machine).
fn partial_cube_recognition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_cube_recognition");
    group.sample_size(10);
    for topo in Topology::paper_topologies() {
        group.bench_function(&topo.name, |b| {
            b.iter(|| recognize_partial_cube(&topo.graph).unwrap());
        });
    }
    group.finish();
}

/// Synthetic network generation (workload preparation cost).
fn generators_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("barabasi_albert_4k", |b| {
        b.iter(|| generators::barabasi_albert(4000, 4, 1))
    });
    group.bench_function("rmat_scale12", |b| {
        b.iter(|| generators::rmat(12, 8, (0.57, 0.19, 0.19, 0.05), 1))
    });
    group.bench_function("watts_strogatz_4k", |b| {
        b.iter(|| generators::watts_strogatz(4000, 6, 0.1, 1))
    });
    group.finish();
}

/// Metric evaluation cost (dominates the harness outside of TIMER itself).
fn metrics_bench(c: &mut Criterion) {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "web-Google")
        .unwrap();
    let ga = spec.build(Scale::Tiny);
    let topo = Topology::grid2d(8, 8);
    let assignment: Vec<u32> = (0..ga.num_vertices() as u32).map(|v| v % 64).collect();
    let mapping = Mapping::new(assignment, 64);
    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    group.bench_function("coco", |b| b.iter(|| coco(&ga, &topo.graph, &mapping)));
    group.bench_function("congestion", |b| {
        b.iter(|| congestion(&ga, &topo.graph, &mapping))
    });
    group.finish();
}

criterion_group!(
    benches,
    partial_cube_recognition,
    generators_bench,
    metrics_bench
);
criterion_main!(benches);
