//! The experiment runner: reproduces one cell of the paper's evaluation
//! (one network × one topology × one experimental case).
//!
//! Each case follows the pipeline of Section 7.1:
//!
//! 1. partition the application graph into `|Vp|` blocks with ε = 3 %
//!    (KaHIP in the paper, `tie-partition` here),
//! 2. construct the initial mapping `µ₁` according to the case
//!    (c1 = DRB/SCOTCH-like, c2 = IDENTITY, c3 = GREEDYALLC,
//!    c4 = GREEDYMIN),
//! 3. run TIMER with `NH` hierarchies to obtain `µ₂`,
//! 4. report quality metrics for both mappings plus wall-clock times.

use std::time::{Duration, Instant};

use tie_fault::FaultHandle;
use tie_graph::Graph;
use tie_mapping::{drb, greedy, identity_mapping, Mapping};
use tie_metrics::{evaluate, MappingQuality};
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, StopReason, TieError, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};
use tie_trace::TraceHandle;

/// The four experimental cases of Section 7.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentCase {
    /// c1: initial mapping from dual recursive bisection (SCOTCH stand-in).
    C1Drb,
    /// c2: IDENTITY mapping on top of the partition.
    C2Identity,
    /// c3: GREEDYALLC construction.
    C3GreedyAllC,
    /// c4: GREEDYMIN construction (LibTopoMap-style construct method).
    C4GreedyMin,
}

impl ExperimentCase {
    /// All four cases in paper order.
    pub fn all() -> [ExperimentCase; 4] {
        [
            ExperimentCase::C1Drb,
            ExperimentCase::C2Identity,
            ExperimentCase::C3GreedyAllC,
            ExperimentCase::C4GreedyMin,
        ]
    }

    /// Short name used in reports (matches the paper's figures).
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentCase::C1Drb => "c1 (SCOTCH-like DRB)",
            ExperimentCase::C2Identity => "c2 (IDENTITY)",
            ExperimentCase::C3GreedyAllC => "c3 (GREEDYALLC)",
            ExperimentCase::C4GreedyMin => "c4 (GREEDYMIN)",
        }
    }

    /// Identifier like `c1`.
    pub fn id(&self) -> &'static str {
        match self {
            ExperimentCase::C1Drb => "c1",
            ExperimentCase::C2Identity => "c2",
            ExperimentCase::C3GreedyAllC => "c3",
            ExperimentCase::C4GreedyMin => "c4",
        }
    }
}

/// Parameters shared by all experiments.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of TIMER hierarchies (`NH`, 50 in the paper).
    pub num_hierarchies: usize,
    /// Load imbalance for the partitioner (3 % in the paper).
    pub epsilon: f64,
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Worker threads for TIMER's speculative hierarchy batches
    /// (1 = paper setting; results are byte-identical for any value).
    pub threads: usize,
    /// Hierarchy rounds speculated per batch (0 = match `threads`).
    pub batch: usize,
    /// Flight-recorder handle passed through to TIMER (disabled by
    /// default; recording never changes results).
    pub trace: TraceHandle,
    /// Optional wall-clock deadline for each TIMER run; expiry yields a
    /// best-so-far result with `StopReason::DeadlineExceeded`.
    pub deadline: Option<Duration>,
    /// Fault-injection handle passed through to TIMER (disabled by default;
    /// armed by the chaos suite and `TIE_FAULTS`-aware binaries).
    pub faults: FaultHandle,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            num_hierarchies: 50,
            epsilon: 0.03,
            seed: 1,
            threads: 1,
            batch: 0,
            trace: TraceHandle::off(),
            deadline: None,
            faults: FaultHandle::off(),
        }
    }
}

/// Result of one experiment run.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Quality of the initial mapping `µ₁`.
    pub initial: MappingQuality,
    /// Quality of the TIMER-enhanced mapping `µ₂`.
    pub enhanced: MappingQuality,
    /// Wall-clock time of the partitioning step.
    pub partition_time: Duration,
    /// Wall-clock time of constructing the initial mapping from the partition.
    pub initial_mapping_time: Duration,
    /// Wall-clock time of the TIMER enhancement.
    pub timer_time: Duration,
    /// Number of hierarchy rounds TIMER accepted.
    pub hierarchies_accepted: usize,
    /// Why the TIMER run stopped (`Completed` unless a deadline or the
    /// adaptive stopping rule cut it short).
    pub stop_reason: StopReason,
    /// Speculative worker panics TIMER absorbed (0 on healthy runs).
    pub worker_panics: usize,
}

impl CaseResult {
    /// `Coco(µ₂) / Coco(µ₁)` — below 1.0 means TIMER improved the mapping.
    pub fn coco_quotient(&self) -> f64 {
        if self.initial.coco == 0 {
            1.0
        } else {
            self.enhanced.coco as f64 / self.initial.coco as f64
        }
    }

    /// `Cut(µ₂) / Cut(µ₁)`.
    pub fn cut_quotient(&self) -> f64 {
        if self.initial.edge_cut == 0 {
            1.0
        } else {
            self.enhanced.edge_cut as f64 / self.initial.edge_cut as f64
        }
    }

    /// Time quotient as reported in Table 2: TIMER time divided by the
    /// baseline time (partitioning for c2–c4, DRB mapping for c1 — the
    /// caller knows which baseline applies and passes it in).
    pub fn time_quotient(&self, baseline: Duration) -> f64 {
        if baseline.is_zero() {
            f64::INFINITY
        } else {
            self.timer_time.as_secs_f64() / baseline.as_secs_f64()
        }
    }
}

/// Runs one experimental case on one (network, topology) pair.
///
/// # Errors
/// Returns `TieError::Recognition` if the topology is not a partial cube
/// (all paper topologies are) and forwards any error from `Timer::enhance`
/// — a sweep over many rows can record the failure and move on instead of
/// aborting (see `run_sweep`).
pub fn run_case(
    ga: &Graph,
    topology: &Topology,
    case: ExperimentCase,
    config: &ExperimentConfig,
) -> Result<CaseResult, TieError> {
    let gp = &topology.graph;
    let num_pes = gp.num_vertices();
    let pcube = recognize_partial_cube(gp)?;

    // Step 1: topology-oblivious partition (KaHIP stand-in).
    let part_cfg = PartitionConfig {
        epsilon: config.epsilon,
        ..PartitionConfig::new(num_pes, config.seed)
    };
    let t0 = Instant::now();
    let part = partition(ga, &part_cfg);
    let partition_time = t0.elapsed();

    // Step 2: initial mapping µ1.
    let t1 = Instant::now();
    let initial_mapping: Mapping = match case {
        ExperimentCase::C1Drb => drb::drb_mapping(ga, &part, gp, config.seed),
        ExperimentCase::C2Identity => identity_mapping(&part, num_pes),
        ExperimentCase::C3GreedyAllC => greedy::greedy_allc_mapping(ga, &part, gp),
        ExperimentCase::C4GreedyMin => greedy::greedy_min_mapping(ga, &part, gp),
    };
    let initial_mapping_time = t1.elapsed();

    // Step 3: TIMER enhancement.
    let timer_cfg = TimerConfig {
        num_hierarchies: config.num_hierarchies,
        seed: config.seed,
        use_diversity: true,
        threads: config.threads,
        batch: config.batch,
        trace: config.trace.clone(),
        deadline: config.deadline,
        faults: config.faults.clone(),
        ..Default::default()
    };
    let t2 = Instant::now();
    let result = enhance_mapping(ga, &pcube, &initial_mapping, timer_cfg)?;
    let timer_time = t2.elapsed();

    // Step 4: metrics.
    let initial = evaluate(ga, gp, &initial_mapping);
    let enhanced = evaluate(ga, gp, &result.mapping);
    debug_assert_eq!(initial.coco, result.initial_coco);
    debug_assert_eq!(enhanced.coco, result.final_coco);

    Ok(CaseResult {
        initial,
        enhanced,
        partition_time,
        initial_mapping_time,
        timer_time,
        hierarchies_accepted: result.hierarchies_accepted,
        stop_reason: result.stop_reason,
        worker_panics: result.telemetry.worker_panics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{quick_networks, Scale};

    #[test]
    fn all_cases_run_and_never_worsen_coco() {
        let spec = &quick_networks()[0];
        let ga = spec.build(Scale::Tiny);
        let topo = Topology::grid2d(4, 4);
        let config = ExperimentConfig {
            num_hierarchies: 5,
            ..Default::default()
        };
        for case in ExperimentCase::all() {
            let r = run_case(&ga, &topo, case, &config).unwrap();
            // TIMER accepts rounds by Coco+ (Coco - Div), so plain Coco may
            // drift up marginally in unlucky runs; anything beyond a few
            // percent indicates a bug.
            assert!(
                r.enhanced.coco as f64 <= r.initial.coco as f64 * 1.05,
                "{}: TIMER should not worsen Coco materially ({} -> {})",
                case.name(),
                r.initial.coco,
                r.enhanced.coco
            );
            assert!(r.coco_quotient() <= 1.05);
            assert!(
                r.enhanced.imbalance <= 0.15,
                "imbalance {}",
                r.enhanced.imbalance
            );
        }
    }

    #[test]
    fn case_names_and_ids() {
        assert_eq!(ExperimentCase::all().len(), 4);
        assert_eq!(ExperimentCase::C1Drb.id(), "c1");
        assert!(ExperimentCase::C4GreedyMin.name().contains("GREEDYMIN"));
    }

    #[test]
    fn time_quotient_handles_zero_baseline() {
        let spec = &quick_networks()[1];
        let ga = spec.build(Scale::Tiny);
        let topo = Topology::hypercube(4);
        let config = ExperimentConfig {
            num_hierarchies: 2,
            ..Default::default()
        };
        let r = run_case(&ga, &topo, ExperimentCase::C2Identity, &config).unwrap();
        assert!(r.time_quotient(Duration::from_millis(100)).is_finite());
        assert!(r.time_quotient(Duration::ZERO).is_infinite());
    }
}
