//! Workload catalogue mirroring Table 1 of the paper.
//!
//! The paper benchmarks on 15 publicly known complex networks
//! (p2p-Gnutella, PGPgiantcompo, …, as-skitter) ranging from ~6 k to ~555 k
//! vertices. The raw data sets are not bundled here, so each network is
//! replaced by a seeded synthetic graph of the same structural family
//! (file-sharing/peer-to-peer → Erdős–Rényi-ish with skew, social/citation →
//! Barabási–Albert or R-MAT, router/AS topologies → heavy-tailed R-MAT,
//! collaboration → planted communities). Sizes are scaled down by a
//! configurable factor so the whole evaluation runs in minutes on one core,
//! while the *relative* behaviour of the mapping algorithms — which is what
//! Figures 5a–5d and Table 2 report — is preserved.

use tie_graph::traversal::largest_connected_component;
use tie_graph::{generators, Graph};

/// How large the synthetic stand-ins should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~0.5–2 k vertices per network: unit tests and smoke runs.
    Tiny,
    /// ~2–8 k vertices per network: the default for the bundled binaries.
    Small,
    /// ~8–30 k vertices per network: closer to the paper's smaller instances.
    Medium,
}

impl Scale {
    fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Medium => 16,
        }
    }
}

/// The structural family a synthetic network is drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetworkFamily {
    /// Preferential attachment (citation / collaboration networks).
    PreferentialAttachment,
    /// Recursive-matrix graphs (web graphs, AS/router topologies).
    RMat,
    /// Small-world rewired lattice (email / interaction networks).
    SmallWorld,
    /// Dense communities plus sparse backbone (social networks).
    Communities,
}

/// Specification of one synthetic stand-in network.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Name of the original network from Table 1.
    pub name: &'static str,
    /// Structural family of the synthetic replacement.
    pub family: NetworkFamily,
    /// Base vertex count at `Scale::Tiny` (multiplied by the scale factor).
    pub base_vertices: usize,
    /// Generator seed (fixed so all experiments are reproducible).
    pub seed: u64,
    /// Description of the original, copied from Table 1.
    pub description: &'static str,
}

impl NetworkSpec {
    /// Instantiates the synthetic network at the given scale. The largest
    /// connected component is returned (mirroring common practice for the
    /// real data sets) with unit edge weights.
    pub fn build(&self, scale: Scale) -> Graph {
        let n = self.base_vertices * scale.factor();
        let raw = match self.family {
            NetworkFamily::PreferentialAttachment => generators::barabasi_albert(n, 4, self.seed),
            NetworkFamily::RMat => {
                let scale_log = (n as f64).log2().ceil() as u32;
                generators::rmat(scale_log, 8, (0.57, 0.19, 0.19, 0.05), self.seed)
            }
            NetworkFamily::SmallWorld => generators::watts_strogatz(n, 6, 0.1, self.seed),
            NetworkFamily::Communities => {
                let communities = (n / 64).max(4);
                let community_size = (n / communities).max(2);
                // Aim for an average intra-community degree of ~10 plus a
                // random backbone of about n inter-community edges.
                let p_in = (10.0 / community_size as f64).min(0.9);
                generators::planted_partition(n, communities, p_in, n, self.seed)
            }
        };
        largest_connected_component(&raw).0
    }
}

/// The 15 networks of Table 1, with synthetic stand-ins.
pub fn paper_networks() -> Vec<NetworkSpec> {
    vec![
        NetworkSpec {
            name: "p2p-Gnutella",
            family: NetworkFamily::RMat,
            base_vertices: 400,
            seed: 101,
            description: "file-sharing network",
        },
        NetworkSpec {
            name: "PGPgiantcompo",
            family: NetworkFamily::Communities,
            base_vertices: 640,
            seed: 102,
            description: "largest connected component in network of PGP users",
        },
        NetworkSpec {
            name: "email-EuAll",
            family: NetworkFamily::SmallWorld,
            base_vertices: 1000,
            seed: 103,
            description: "network of connections via email",
        },
        NetworkSpec {
            name: "as-22july06",
            family: NetworkFamily::RMat,
            base_vertices: 1400,
            seed: 104,
            description: "network of internet routers",
        },
        NetworkSpec {
            name: "soc-Slashdot0902",
            family: NetworkFamily::PreferentialAttachment,
            base_vertices: 1700,
            seed: 105,
            description: "news network",
        },
        NetworkSpec {
            name: "loc-brightkite_edges",
            family: NetworkFamily::Communities,
            base_vertices: 2200,
            seed: 106,
            description: "location-based friendship network",
        },
        NetworkSpec {
            name: "loc-gowalla_edges",
            family: NetworkFamily::PreferentialAttachment,
            base_vertices: 2600,
            seed: 107,
            description: "location-based friendship network",
        },
        NetworkSpec {
            name: "citationCiteseer",
            family: NetworkFamily::PreferentialAttachment,
            base_vertices: 3000,
            seed: 108,
            description: "citation network",
        },
        NetworkSpec {
            name: "coAuthorsCiteseer",
            family: NetworkFamily::Communities,
            base_vertices: 2800,
            seed: 109,
            description: "citation network",
        },
        NetworkSpec {
            name: "wiki-Talk",
            family: NetworkFamily::RMat,
            base_vertices: 2900,
            seed: 110,
            description: "network of user interactions through edits",
        },
        NetworkSpec {
            name: "coAuthorsDBLP",
            family: NetworkFamily::Communities,
            base_vertices: 3100,
            seed: 111,
            description: "citation network",
        },
        NetworkSpec {
            name: "web-Google",
            family: NetworkFamily::RMat,
            base_vertices: 3400,
            seed: 112,
            description: "hyperlink network of web pages",
        },
        NetworkSpec {
            name: "coPapersCiteseer",
            family: NetworkFamily::PreferentialAttachment,
            base_vertices: 3600,
            seed: 113,
            description: "citation network",
        },
        NetworkSpec {
            name: "coPapersDBLP",
            family: NetworkFamily::PreferentialAttachment,
            base_vertices: 3800,
            seed: 114,
            description: "citation network",
        },
        NetworkSpec {
            name: "as-skitter",
            family: NetworkFamily::RMat,
            base_vertices: 4000,
            seed: 115,
            description: "network of internet service providers",
        },
    ]
}

/// A reduced selection (five structurally diverse networks) for quick runs
/// and integration tests.
pub fn quick_networks() -> Vec<NetworkSpec> {
    let all = paper_networks();
    [0usize, 2, 4, 8, 11]
        .iter()
        .map(|&i| all[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::traversal::is_connected;

    #[test]
    fn catalogue_has_fifteen_networks_like_table1() {
        assert_eq!(paper_networks().len(), 15);
        let names: Vec<_> = paper_networks().iter().map(|s| s.name).collect();
        assert!(names.contains(&"as-skitter"));
        assert!(names.contains(&"PGPgiantcompo"));
    }

    #[test]
    fn networks_build_connected_and_nontrivial() {
        for spec in quick_networks() {
            let g = spec.build(Scale::Tiny);
            assert!(is_connected(&g), "{} must be connected", spec.name);
            assert!(
                g.num_vertices() >= 200,
                "{} too small: {}",
                spec.name,
                g.num_vertices()
            );
            assert!(
                g.num_edges() >= g.num_vertices(),
                "{} too sparse",
                spec.name
            );
        }
    }

    #[test]
    fn scale_controls_size() {
        let spec = &paper_networks()[4];
        let tiny = spec.build(Scale::Tiny);
        let small = spec.build(Scale::Small);
        assert!(small.num_vertices() > 2 * tiny.num_vertices());
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = &paper_networks()[0];
        assert_eq!(spec.build(Scale::Tiny), spec.build(Scale::Tiny));
    }
}
