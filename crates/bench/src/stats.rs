//! Statistics used by the paper's evaluation protocol (Section 7.1):
//! min/mean/max over 5 repetitions, quotients "after / before", geometric
//! means over the benchmark networks and geometric standard deviations.

/// Minimum, arithmetic mean and maximum of a series of repetitions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Smallest observed value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty slice of observations.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains NaN.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize zero observations");
        assert!(values.iter().all(|v| !v.is_nan()), "NaN observation");
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Summary { min, mean, max }
    }

    /// Element-wise quotient `self / base`, the normalization step of the
    /// paper (each of min/mean/max is divided by the corresponding value
    /// before the improvement). Zero denominators yield 1.0 (no change).
    pub fn quotient(&self, base: &Summary) -> Summary {
        let div = |a: f64, b: f64| if b == 0.0 { 1.0 } else { a / b };
        Summary {
            min: div(self.min, base.min),
            mean: div(self.mean, base.mean),
            max: div(self.max, base.max),
        }
    }
}

/// Geometric mean of positive values (zeroes are clamped to a tiny epsilon so
/// a single degenerate observation cannot zero out the whole aggregate).
///
/// Returns `None` on an empty slice: a sweep that produced zero results must
/// not silently read as a quotient of 1.0 ("no change") in the table reports.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Geometric standard deviation of positive values.
///
/// Returns `None` on an empty slice (no observations is not the same as no
/// spread); a single observation legitimately has spread 1.0.
pub fn geometric_std_dev(values: &[f64]) -> Option<f64> {
    let gm = geometric_mean(values)?;
    if values.len() < 2 {
        return Some(1.0);
    }
    let var: f64 = values
        .iter()
        .map(|&v| (v.max(1e-12) / gm).ln().powi(2))
        .sum::<f64>()
        / values.len() as f64;
    Some(var.sqrt().exp())
}

/// Geometric mean of the min/mean/max components across networks: the 9
/// quotient values `qT_min, …, qCo_max` of the paper collapse to 3 values per
/// metric; this helper aggregates one component across all networks.
///
/// Returns `None` when there are no per-network summaries to aggregate.
pub fn aggregate_summaries(per_network: &[Summary]) -> Option<Summary> {
    Some(Summary {
        min: geometric_mean(&per_network.iter().map(|s| s.min).collect::<Vec<_>>())?,
        mean: geometric_mean(&per_network.iter().map(|s| s.mean).collect::<Vec<_>>())?,
        max: geometric_mean(&per_network.iter().map(|s| s.max).collect::<Vec<_>>())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_values() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quotient_divides_componentwise() {
        let a = Summary::of(&[2.0, 4.0]);
        let b = Summary::of(&[4.0, 8.0]);
        let q = a.quotient(&b);
        assert!((q.min - 0.5).abs() < 1e-12);
        assert!((q.max - 0.5).abs() < 1e-12);
        assert!((q.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quotient_with_zero_base() {
        let a = Summary::of(&[2.0]);
        let b = Summary::of(&[0.0]);
        let q = a.quotient(&b);
        assert_eq!(q.mean, 1.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_empty_is_none() {
        // An empty sweep must be visible as "no data", never as quotient 1.0.
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_std_dev(&[]), None);
        assert_eq!(aggregate_summaries(&[]), None);
    }

    #[test]
    fn geometric_std_dev_of_constant_series_is_one() {
        assert!((geometric_std_dev(&[3.0, 3.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!(geometric_std_dev(&[1.0, 10.0]).unwrap() > 1.0);
        assert_eq!(geometric_std_dev(&[5.0]), Some(1.0));
    }

    #[test]
    fn aggregate_summaries_geomean() {
        let a = Summary {
            min: 1.0,
            mean: 2.0,
            max: 4.0,
        };
        let b = Summary {
            min: 4.0,
            mean: 2.0,
            max: 1.0,
        };
        let agg = aggregate_summaries(&[a, b]).unwrap();
        assert!((agg.min - 2.0).abs() < 1e-9);
        assert!((agg.mean - 2.0).abs() < 1e-9);
        assert!((agg.max - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn summary_of_empty_panics() {
        let _ = Summary::of(&[]);
    }
}
