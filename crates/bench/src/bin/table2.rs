//! Regenerates Table 2: running-time quotients of TIMER relative to the
//! mapping baseline (DRB for c1) and to the partitioner (for c2–c4), per
//! processor topology.
//!
//! Usage: `cargo run -p tie-bench --bin table2 --release -- [--full] [--scale ...] [--reps N] [--nh N]`
//! By default a reduced sweep (quick networks, 64-PE topologies) is run so the
//! binary finishes in minutes; pass `--paper-topologies` for the 256/512-PE
//! machines of the paper and `--full` for the paper's NH/repetition counts.

use std::process::ExitCode;

use tie_bench::experiment::ExperimentCase;
use tie_bench::harness::{run_sweep, timing_rows, USAGE};
use tie_bench::report::format_timing_table;
use tie_bench::{paper_networks, parse_options, quick_networks};
use tie_topology::Topology;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("table2: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let full_networks = args.iter().any(|a| a == "--full" || a == "--all-networks");
    let paper_topos = args
        .iter()
        .any(|a| a == "--full" || a == "--paper-topologies");

    let networks = if full_networks {
        paper_networks()
    } else {
        quick_networks()
    };
    let topologies = if paper_topos {
        Topology::paper_topologies()
    } else {
        Topology::small_topologies()
    };

    println!(
        "Table 2: running-time quotients (scale {:?}, reps {}, NH {})\n",
        options.scale, options.repetitions, options.num_hierarchies
    );
    let mut per_case = Vec::new();
    for case in ExperimentCase::all() {
        eprintln!("running case {} ...", case.name());
        let cells = run_sweep(&networks, &topologies, case, &options);
        for cell in &cells {
            for err in &cell.errors {
                eprintln!(
                    "warning: {} on {} / {}: {err}",
                    case.id(),
                    cell.network,
                    cell.topology
                );
            }
        }
        per_case.push((case, cells));
    }
    let rows = timing_rows(&per_case, &topologies);
    print!("{}", format_timing_table(&rows));
    ExitCode::SUCCESS
}
