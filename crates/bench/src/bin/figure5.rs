//! Regenerates Figures 5a–5d: relative Coco and edge cut after TIMER,
//! per processor topology, for the experimental cases c1–c4.
//!
//! Usage:
//! `cargo run -p tie-bench --bin figure5 --release -- [--case c1|c2|c3|c4] [--full] [--scale ...] [--reps N] [--nh N] [--threads N] [--batch B]`
//!
//! `--threads`/`--batch` drive TIMER's speculative hierarchy batches; the
//! reported quality numbers are byte-identical for every setting — the flags
//! only change the wall-clock.
//!
//! Without `--case`, all four cases are run (Figures 5a, 5b, 5c and 5d).

use std::process::ExitCode;

use tie_bench::experiment::ExperimentCase;
use tie_bench::harness::{quality_rows, run_sweep, USAGE};
use tie_bench::report::format_quality_table;
use tie_bench::{paper_networks, parse_options, quick_networks};
use tie_topology::Topology;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("figure5: {e}");
            eprintln!("{USAGE} [--case c1|c2|c3|c4]");
            return ExitCode::from(2);
        }
    };
    let full_networks = args.iter().any(|a| a == "--full" || a == "--all-networks");
    let paper_topos = args
        .iter()
        .any(|a| a == "--full" || a == "--paper-topologies");
    let selected_case = match args
        .iter()
        .position(|a| a == "--case")
        .and_then(|i| args.get(i + 1))
        .map(|c| match c.as_str() {
            "c1" => Ok(ExperimentCase::C1Drb),
            "c2" => Ok(ExperimentCase::C2Identity),
            "c3" => Ok(ExperimentCase::C3GreedyAllC),
            "c4" => Ok(ExperimentCase::C4GreedyMin),
            other => Err(format!("unknown case {other:?} (use c1|c2|c3|c4)")),
        })
        .transpose()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("figure5: {e}");
            eprintln!("{USAGE} [--case c1|c2|c3|c4]");
            return ExitCode::from(2);
        }
    };

    let networks = if full_networks {
        paper_networks()
    } else {
        quick_networks()
    };
    let topologies = if paper_topos {
        Topology::paper_topologies()
    } else {
        Topology::small_topologies()
    };

    let cases: Vec<ExperimentCase> = match selected_case {
        Some(c) => vec![c],
        None => ExperimentCase::all().to_vec(),
    };
    let figure_letter = |case: ExperimentCase| match case {
        ExperimentCase::C1Drb => "5a",
        ExperimentCase::C2Identity => "5b",
        ExperimentCase::C3GreedyAllC => "5c",
        ExperimentCase::C4GreedyMin => "5d",
    };

    println!(
        "Figure 5: quality results (scale {:?}, reps {}, NH {}, {} networks, {} topologies)\n",
        options.scale,
        options.repetitions,
        options.num_hierarchies,
        networks.len(),
        topologies.len()
    );
    for case in cases {
        eprintln!("running case {} ...", case.name());
        let cells = run_sweep(&networks, &topologies, case, &options);
        for cell in &cells {
            for err in &cell.errors {
                eprintln!(
                    "warning: {} on {} / {}: {err}",
                    case.id(),
                    cell.network,
                    cell.topology
                );
            }
        }
        let rows = quality_rows(&cells, &topologies);
        println!(
            "--- Figure {} — initial mapping: {} ---",
            figure_letter(case),
            case.name()
        );
        println!("{}", format_quality_table(case.id(), &rows));
    }
    ExitCode::SUCCESS
}
