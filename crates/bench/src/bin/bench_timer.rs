//! TIMER perf-trajectory harness: times `Timer::enhance` per workload scale
//! × thread count and writes the machine-readable `BENCH_timer.json`
//! artifact, so the wall-clock/quality trajectory of the batched driver is
//! tracked across PRs. The batched driver is byte-identical to the
//! sequential one, so `final_coco` must agree across thread counts within a
//! scale — the harness asserts it.
//!
//! Usage:
//!   cargo run -p tie-bench --bin bench_timer --release -- \
//!       [--out BENCH_timer.json] [--nh 40] [--reps 1] [--quick] \
//!       [--trace-out trace.jsonl] [--trace-level gate|phase|debug]
//!
//! `--quick` restricts to the tiny scale with a small NH (for CI smoke runs).
//! `--reps N` repeats every cell N times and reports min/median wall-clock,
//! so single-shot noise cannot masquerade as a perf claim; the trajectory
//! (final Coco, gate telemetry) must be identical across repetitions and the
//! harness asserts it. `--trace-out` streams flight-recorder events (JSONL;
//! `-` = human-readable stderr) from every run; independent of the gate
//! telemetry that is always embedded in the JSON artifact.

use std::process::ExitCode;
use std::time::Instant;

use tie_bench::harness::make_trace_handle;
use tie_bench::report::{format_bench_json, TimerBenchEntry};
use tie_bench::workloads::{paper_networks, Scale};
use tie_fault::FaultHandle;
use tie_graph::generators::random_permutation;
use tie_mapping::Mapping;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, RoundTelemetry, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};
use tie_trace::{TraceHandle, TraceLevel};

const NETWORK: &str = "PGPgiantcompo";
const SEED: u64 = 1;

const USAGE: &str = "usage: bench_timer [--out PATH] [--nh N] [--reps N] [--quick] \
     [--trace-out PATH|-] [--trace-level off|gate|phase|debug]  \
     (env: TIE_FAULTS=<fault spec> arms fault injection)";

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_timer: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
    };
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value("--out").unwrap_or("BENCH_timer.json");
    let nh: usize = match flag_value("--nh") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--nh needs a number, got {v:?}"))?,
        None => {
            if quick {
                6
            } else {
                40
            }
        }
    };
    let reps: usize = match flag_value("--reps") {
        Some(v) => match v.parse() {
            Ok(r) if r >= 1 => r,
            _ => return Err(format!("--reps needs a positive number, got {v:?}")),
        },
        None => 1,
    };
    let scales: &[Scale] = if quick {
        &[Scale::Tiny]
    } else {
        &[Scale::Tiny, Scale::Small, Scale::Medium]
    };
    let thread_counts = [1usize, 2, 4];
    let trace = match flag_value("--trace-out") {
        Some(path) => {
            let level = match flag_value("--trace-level") {
                Some(v) => TraceLevel::parse(v).ok_or_else(|| {
                    format!("--trace-level needs off|gate|phase|debug, got {v:?}")
                })?,
                None => TraceLevel::Phase,
            };
            make_trace_handle(path, level)?
        }
        None => TraceHandle::off(),
    };
    let faults = FaultHandle::from_env().map_err(|e| format!("invalid TIE_FAULTS: {e}"))?;
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == NETWORK)
        .ok_or_else(|| format!("network {NETWORK:?} missing from the catalogue"))?;
    let topo = Topology::grid2d(8, 8);
    let pcube = recognize_partial_cube(&topo.graph)
        .map_err(|e| format!("grid8x8 failed partial-cube recognition: {e}"))?;

    let mut entries: Vec<TimerBenchEntry> = Vec::new();
    let mut telemetry: Vec<(String, RoundTelemetry)> = Vec::new();
    for &scale in scales {
        let ga = spec.build(scale);
        let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), SEED));
        // Scrambled block-to-PE bijection: plenty of room for improvement, so
        // the accept pattern (accept-heavy head, reject-heavy tail) matches
        // the realistic enhancement workload instead of a no-op run.
        let scramble = random_permutation(topo.num_pes(), SEED);
        let mapping = Mapping::from_partition(&part, &scramble, topo.num_pes());
        eprintln!(
            "scale {}: {} vertices, {} edges",
            scale_name(scale),
            ga.num_vertices(),
            ga.num_edges()
        );
        let mut reference_coco: Option<u64> = None;
        let mut reference_telemetry: Option<RoundTelemetry> = None;
        for &threads in &thread_counts {
            let oversubscribed = threads > hardware_threads;
            if oversubscribed {
                eprintln!(
                    "  warning: {threads} threads on {hardware_threads} hardware \
                     thread(s) — wall-clock for this row measures contention"
                );
            }
            // Repeat the cell: the trajectory is deterministic, so every
            // repetition must reproduce the first one exactly — only the
            // wall-clock varies, and min/median tame its noise.
            let mut walls_ms: Vec<f64> = Vec::with_capacity(reps);
            let mut result = None;
            let mut effective_batch = 0;
            for rep in 0..reps {
                let cfg = TimerConfig::new(nh, SEED)
                    .with_threads(threads)
                    .with_trace(trace.clone())
                    .with_faults(faults.clone());
                effective_batch = cfg.effective_batch();
                let start = Instant::now();
                let rep_result = enhance_mapping(&ga, &pcube, &mapping, cfg)
                    .map_err(|e| format!("enhance failed at scale {}: {e}", scale_name(scale)))?;
                walls_ms.push(start.elapsed().as_secs_f64() * 1e3);
                match &result {
                    None => result = Some(rep_result),
                    Some(first) => assert_eq!(
                        rep_result.final_coco, first.final_coco,
                        "rep {rep} diverged from rep 0 at the same cell"
                    ),
                }
            }
            let result = result.expect("reps >= 1 is enforced at parse time");
            walls_ms.sort_by(|a, b| a.total_cmp(b));
            let wall_ms_min = walls_ms[0];
            let wall_ms = if walls_ms.len() % 2 == 1 {
                walls_ms[walls_ms.len() / 2]
            } else {
                let hi = walls_ms.len() / 2;
                (walls_ms[hi - 1] + walls_ms[hi]) / 2.0
            };
            eprintln!(
                "  threads {threads}: median {wall_ms:.1} ms, min {wall_ms_min:.1} ms \
                 over {reps} rep(s), Coco {} -> {} ({} kept rounds{})",
                result.initial_coco,
                result.final_coco,
                result.hierarchies_accepted,
                if result.telemetry.worker_panics > 0 {
                    format!(
                        ", {} worker panic(s) absorbed",
                        result.telemetry.worker_panics
                    )
                } else {
                    String::new()
                }
            );
            match reference_coco {
                None => reference_coco = Some(result.final_coco),
                Some(reference) => assert_eq!(
                    result.final_coco, reference,
                    "batched driver diverged from the sequential trajectory"
                ),
            }
            // Gate outcomes (accept/reject/tie counts and delta histograms)
            // must be byte-identical across thread counts; only the phase
            // wall-clock may differ. The embedded record is the threads = 1
            // run's, so the phase breakdown reads as sequential time.
            match &reference_telemetry {
                None => reference_telemetry = Some(result.telemetry.clone()),
                Some(reference) => assert!(
                    reference.same_gate_trajectory(&result.telemetry),
                    "gate telemetry diverged across thread counts"
                ),
            }
            entries.push(TimerBenchEntry {
                scale: scale_name(scale).to_string(),
                threads,
                batch: effective_batch,
                wall_ms,
                wall_ms_min,
                initial_coco: result.initial_coco,
                final_coco: result.final_coco,
                accepted: result.hierarchies_accepted,
                total_swaps: result.total_swaps,
                threads_oversubscribed: oversubscribed,
            });
        }
        if let Some(t) = reference_telemetry {
            telemetry.push((scale_name(scale).to_string(), t));
        }
    }

    let json = format_bench_json(
        nh,
        reps,
        NETWORK,
        &topo.name,
        hardware_threads,
        &entries,
        &telemetry,
    );
    std::fs::write(out_path, &json)
        .map_err(|e| format!("cannot write bench artifact {out_path:?}: {e}"))?;
    println!("wrote {out_path}");
    print!("{json}");
    Ok(())
}
