//! Regenerates Table 3 (appendix): partitioner running times for
//! |Vp| = 256 and |Vp| = 512 blocks per benchmark network.
//!
//! Usage: `cargo run -p tie-bench --bin table3 --release -- [--scale tiny|small|medium]`

use std::process::ExitCode;
use std::time::Instant;

use tie_bench::harness::USAGE;
use tie_bench::report::format_partition_times;
use tie_bench::{paper_networks, parse_options};
use tie_partition::{partition, PartitionConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("table3: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    println!(
        "Table 3: partitioner running times in seconds for k = 256 and k = 512 (scale {:?}, eps = {}).\n",
        options.scale, options.epsilon
    );
    let mut rows = Vec::new();
    for spec in paper_networks() {
        let g = spec.build(options.scale);
        let mut times = [0.0f64; 2];
        for (slot, k) in [(0usize, 256usize), (1, 512)] {
            let cfg = PartitionConfig {
                epsilon: options.epsilon,
                ..PartitionConfig::new(k, spec.seed)
            };
            let t = Instant::now();
            let p = partition(&g, &cfg);
            times[slot] = t.elapsed().as_secs_f64();
            assert_eq!(p.assignment().len(), g.num_vertices());
        }
        eprintln!("{:<24} done", spec.name);
        rows.push((spec.name.to_string(), times[0], times[1]));
    }
    print!("{}", format_partition_times(&rows, ("k=256", "k=512")));
    ExitCode::SUCCESS
}
