//! Regenerates Table 1: the inventory of benchmark networks.
//!
//! Usage: `cargo run -p tie-bench --bin table1 --release -- [--scale tiny|small|medium]`

use std::process::ExitCode;

use tie_bench::harness::USAGE;
use tie_bench::report::format_inventory;
use tie_bench::{paper_networks, parse_options};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("table1: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    println!(
        "Table 1: complex networks used for benchmarking (synthetic stand-ins, scale {:?})\n",
        options.scale
    );
    let rows: Vec<(String, usize, usize, String)> = paper_networks()
        .iter()
        .map(|spec| {
            let g = spec.build(options.scale);
            (
                spec.name.to_string(),
                g.num_vertices(),
                g.num_edges(),
                spec.description.to_string(),
            )
        })
        .collect();
    print!("{}", format_inventory(&rows));
    ExitCode::SUCCESS
}
