//! Regenerates Table 1: the inventory of benchmark networks.
//!
//! Usage: `cargo run -p tie-bench --bin table1 --release -- [--scale tiny|small|medium]`

use tie_bench::report::format_inventory;
use tie_bench::{paper_networks, parse_options};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_options(&args);
    println!(
        "Table 1: complex networks used for benchmarking (synthetic stand-ins, scale {:?})\n",
        options.scale
    );
    let rows: Vec<(String, usize, usize, String)> = paper_networks()
        .iter()
        .map(|spec| {
            let g = spec.build(options.scale);
            (
                spec.name.to_string(),
                g.num_vertices(),
                g.num_edges(),
                spec.description.to_string(),
            )
        })
        .collect();
    print!("{}", format_inventory(&rows));
}
