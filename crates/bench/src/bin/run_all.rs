//! Runs the complete (reduced-scale) evaluation in one go: Table 1, Table 3,
//! Figures 5a–5d and Table 2. This is the binary EXPERIMENTS.md is generated
//! from.
//!
//! Usage: `cargo run -p tie-bench --bin run_all --release -- [--scale tiny|small|medium] [--reps N] [--nh N] [--threads N] [--batch B] [--deadline-ms N] [--out PATH]`
//!
//! A repetition that fails (fault injection, malformed input, worker panic)
//! does not abort the run: the sweep keeps going, the failure is reported on
//! stderr, and `--out PATH` writes a JSON record with per-row errors.

use std::process::ExitCode;
use std::time::Instant;

use tie_bench::experiment::ExperimentCase;
use tie_bench::harness::{quality_rows, run_sweep, timing_rows, USAGE};
use tie_bench::report::{
    format_inventory, format_partition_times, format_quality_table, format_sweep_json,
    format_timing_table,
};
use tie_bench::{parse_options, quick_networks};
use tie_partition::{partition, PartitionConfig};
use tie_topology::Topology;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("run_all: {e}");
            eprintln!("{USAGE} [--out PATH]");
            return ExitCode::from(2);
        }
    };
    // `--out` is run_all-specific; parse_options ignores flags it does not
    // know so binaries can add their own.
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--out" {
            match args.get(i + 1) {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("run_all: --out needs a path");
                    eprintln!("{USAGE} [--out PATH]");
                    return ExitCode::from(2);
                }
            }
            i += 1;
        }
        i += 1;
    }
    let networks = quick_networks();
    let topologies = Topology::small_topologies();

    println!("== TIMER reproduction: reduced-scale evaluation ==");
    println!(
        "scale {:?}, {} networks, {} topologies, reps {}, NH {}, eps {}, threads {} (batch {})\n",
        options.scale,
        networks.len(),
        topologies.len(),
        options.repetitions,
        options.num_hierarchies,
        options.epsilon,
        options.threads,
        tie_timer::TimerConfig::default()
            .with_threads(options.threads)
            .with_batch(options.batch)
            .effective_batch()
    );

    // Table 1 (reduced).
    println!("--- Table 1: benchmark networks ---");
    let rows: Vec<(String, usize, usize, String)> = networks
        .iter()
        .map(|spec| {
            let g = spec.build(options.scale);
            (
                spec.name.to_string(),
                g.num_vertices(),
                g.num_edges(),
                spec.description.to_string(),
            )
        })
        .collect();
    println!("{}", format_inventory(&rows));

    // Table 3 (reduced): partition times for k = 64 and k = 128 at this scale.
    println!("--- Table 3 (scaled): partitioner running times ---");
    let mut part_rows = Vec::new();
    for spec in &networks {
        let g = spec.build(options.scale);
        let mut times = [0.0f64; 2];
        for (slot, k) in [(0usize, 64usize), (1, 128)] {
            let cfg = PartitionConfig {
                epsilon: options.epsilon,
                ..PartitionConfig::new(k, spec.seed)
            };
            let t = Instant::now();
            let _ = partition(&g, &cfg);
            times[slot] = t.elapsed().as_secs_f64();
        }
        part_rows.push((spec.name.to_string(), times[0], times[1]));
    }
    println!("{}", format_partition_times(&part_rows, ("k=64", "k=128")));

    // Figures 5a-5d and Table 2. Failing repetitions are collected per cell
    // and surfaced below instead of aborting the whole evaluation.
    let mut per_case = Vec::new();
    for case in ExperimentCase::all() {
        eprintln!("running case {} ...", case.name());
        let cells = run_sweep(&networks, &topologies, case, &options);
        for cell in &cells {
            for err in &cell.errors {
                eprintln!(
                    "warning: {} on {} / {}: {err}",
                    case.id(),
                    cell.network,
                    cell.topology
                );
            }
        }
        let rows = quality_rows(&cells, &topologies);
        println!("--- Figure 5 ({}) ---", case.name());
        println!("{}", format_quality_table(case.id(), &rows));
        per_case.push((case, cells));
    }
    println!("--- Table 2: running-time quotients ---");
    println!(
        "{}",
        format_timing_table(&timing_rows(&per_case, &topologies))
    );

    let total_errors: usize = per_case
        .iter()
        .flat_map(|(_, cells)| cells.iter())
        .map(|c| c.errors.len())
        .sum();
    if total_errors > 0 {
        eprintln!("run_all: {total_errors} repetition(s) failed; see warnings above");
    }
    if let Some(path) = out_path {
        let json = format_sweep_json(&per_case);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("run_all: cannot write {path:?}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote sweep record to {path}");
    }
    ExitCode::SUCCESS
}
