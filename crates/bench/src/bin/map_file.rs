//! Command-line mapper: read an application graph from a METIS or edge-list
//! file, map it onto a chosen partial-cube topology, enhance the mapping with
//! TIMER and (optionally) write the resulting vertex-to-PE assignment to a
//! file — the workflow a user of the original tool chain (KaHIP + TIMER)
//! would run.
//!
//! Usage:
//!   cargo run -p tie-bench --bin map_file --release -- \
//!       --graph app.metis --topology grid16x16 [--case c2|c3|c4|c1] \
//!       [--nh 50] [--eps 0.03] [--seed 1] [--threads N] [--batch B] \
//!       [--deadline-ms N] [--out mapping.txt] [--trace-out trace.jsonl] \
//!       [--trace-level gate|phase|debug]
//!
//! Supported topology names: gridAxB, gridAxBxC, torusAxB, torusAxBxC,
//! hypercubeD, treeN, pathN.
//!
//! Every malformed flag or unreadable input is reported as a one-line error
//! plus this usage summary (exit code 2) — the binary never panics on bad
//! input.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::str::FromStr;
use std::time::Duration;

use tie_bench::experiment::{run_case, ExperimentCase, ExperimentConfig};
use tie_bench::harness::make_trace_handle;
use tie_fault::FaultHandle;
use tie_graph::io;
use tie_mapping::{identity_mapping, Mapping};
use tie_metrics::evaluate;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};
use tie_trace::{TraceHandle, TraceLevel};

const USAGE: &str = "usage: map_file --graph FILE --topology NAME \
     [--case c1|c2|c3|c4] [--nh N] [--eps F] [--seed N] [--threads N] \
     [--batch N] [--deadline-ms N] [--out PATH] [--trace-out PATH|-] \
     [--trace-level off|gate|phase|debug]";

fn parse_topology(spec: &str) -> Result<Topology, String> {
    let lower = spec.to_lowercase();
    let dims = |s: &str| -> Vec<usize> { s.split('x').filter_map(|t| t.parse().ok()).collect() };
    if let Some(rest) = lower.strip_prefix("grid") {
        let d = dims(rest);
        return match d.len() {
            2 => Ok(Topology::grid2d(d[0], d[1])),
            3 => Ok(Topology::grid3d(d[0], d[1], d[2])),
            _ => Err(format!("grid topology needs 2 or 3 extents, got {spec:?}")),
        };
    }
    if let Some(rest) = lower.strip_prefix("torus") {
        let d = dims(rest);
        return match d.len() {
            2 => Ok(Topology::torus2d(d[0], d[1])),
            3 => Ok(Topology::torus3d(d[0], d[1], d[2])),
            _ => Err(format!("torus topology needs 2 or 3 extents, got {spec:?}")),
        };
    }
    if let Some(rest) = lower.strip_prefix("hypercube") {
        let d = rest
            .parse()
            .map_err(|_| format!("hypercube needs a dimension, got {rest:?}"))?;
        return Ok(Topology::hypercube(d));
    }
    if let Some(rest) = lower.strip_prefix("tree") {
        let n = rest
            .parse()
            .map_err(|_| format!("tree needs a vertex count, got {rest:?}"))?;
        return Ok(Topology::binary_tree(n));
    }
    if let Some(rest) = lower.strip_prefix("path") {
        let n = rest
            .parse()
            .map_err(|_| format!("path needs a vertex count, got {rest:?}"))?;
        return Ok(Topology::path(n));
    }
    Err(format!("unknown topology {spec:?}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parsed_flag<T: FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} needs a valid value, got {v:?}")),
        None => Ok(default),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let graph_path = flag_value(args, "--graph");
    let topology_spec = flag_value(args, "--topology").unwrap_or("grid8x8");
    let nh: usize = parsed_flag(args, "--nh", 50)?;
    let eps: f64 = parsed_flag(args, "--eps", 0.03)?;
    let seed: u64 = parsed_flag(args, "--seed", 1)?;
    let case = flag_value(args, "--case").unwrap_or("c2");
    let threads: usize = parsed_flag(args, "--threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    let batch: usize = parsed_flag(args, "--batch", 0)?;
    let deadline_ms: u64 = parsed_flag(args, "--deadline-ms", 0)?;
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    let out = flag_value(args, "--out");
    let trace = match flag_value(args, "--trace-out") {
        Some(path) => {
            let level = match flag_value(args, "--trace-level") {
                Some(v) => TraceLevel::parse(v).ok_or_else(|| {
                    format!("--trace-level needs off|gate|phase|debug, got {v:?}")
                })?,
                None => TraceLevel::Phase,
            };
            make_trace_handle(path, level)?
        }
        None => TraceHandle::off(),
    };
    let faults = FaultHandle::from_env().map_err(|e| format!("invalid TIE_FAULTS: {e}"))?;

    // Load the application graph; without --graph a demo network is used so
    // the binary is runnable out of the box.
    let ga = match graph_path {
        Some(path) => {
            if path.ends_with(".metis") || path.ends_with(".graph") {
                io::read_metis(path)
                    .map_err(|e| format!("cannot read METIS graph {path:?}: {e}"))?
            } else {
                io::read_edge_list(path)
                    .map_err(|e| format!("cannot read edge list {path:?}: {e}"))?
            }
        }
        None => {
            eprintln!("no --graph given; using a demo Barabási–Albert network with 4096 vertices");
            tie_graph::generators::barabasi_albert(4096, 4, seed)
        }
    };
    let topo = parse_topology(topology_spec)?;
    eprintln!(
        "application graph: {} vertices, {} edges; topology: {} ({} PEs)",
        ga.num_vertices(),
        ga.num_edges(),
        topo.name,
        topo.num_pes()
    );

    let experiment_case = match case {
        "c1" => Some(ExperimentCase::C1Drb),
        "c2" => None, // handled inline below (identity), keeps timing simple
        "c3" => Some(ExperimentCase::C3GreedyAllC),
        "c4" => Some(ExperimentCase::C4GreedyMin),
        other => return Err(format!("unknown case {other:?} (use c1|c2|c3|c4)")),
    };

    let timer_cfg = || {
        let mut cfg = TimerConfig::new(nh, seed)
            .with_threads(threads)
            .with_batch(batch)
            .with_trace(trace.clone())
            .with_faults(faults.clone());
        if let Some(d) = deadline {
            cfg = cfg.with_deadline(d);
        }
        cfg
    };
    let (initial, enhanced): (Mapping, Mapping) = match experiment_case {
        Some(c) => {
            let config = ExperimentConfig {
                num_hierarchies: nh,
                epsilon: eps,
                seed,
                threads,
                batch,
                trace: trace.clone(),
                deadline,
                faults: faults.clone(),
            };
            let result = run_case(&ga, &topo, c, &config).map_err(|e| e.to_string())?;
            eprintln!(
                "case {}: Coco {} -> {} ({} accepted hierarchies, stop: {})",
                c.id(),
                result.initial.coco,
                result.enhanced.coco,
                result.hierarchies_accepted,
                result.stop_reason
            );
            // Re-run the pipeline pieces to obtain the mappings themselves.
            let part = partition(
                &ga,
                &PartitionConfig {
                    epsilon: eps,
                    ..PartitionConfig::new(topo.num_pes(), seed)
                },
            );
            let initial = match c {
                ExperimentCase::C1Drb => {
                    tie_mapping::drb::drb_mapping(&ga, &part, &topo.graph, seed)
                }
                ExperimentCase::C3GreedyAllC => {
                    tie_mapping::greedy::greedy_allc_mapping(&ga, &part, &topo.graph)
                }
                ExperimentCase::C4GreedyMin => {
                    tie_mapping::greedy::greedy_min_mapping(&ga, &part, &topo.graph)
                }
                ExperimentCase::C2Identity => identity_mapping(&part, topo.num_pes()),
            };
            let pcube = recognize_partial_cube(&topo.graph)
                .map_err(|e| format!("topology {} is not a partial cube: {e}", topo.name))?;
            let res =
                enhance_mapping(&ga, &pcube, &initial, timer_cfg()).map_err(|e| e.to_string())?;
            (initial, res.mapping)
        }
        None => {
            let part = partition(
                &ga,
                &PartitionConfig {
                    epsilon: eps,
                    ..PartitionConfig::new(topo.num_pes(), seed)
                },
            );
            let initial = identity_mapping(&part, topo.num_pes());
            let pcube = recognize_partial_cube(&topo.graph)
                .map_err(|e| format!("topology {} is not a partial cube: {e}", topo.name))?;
            let res =
                enhance_mapping(&ga, &pcube, &initial, timer_cfg()).map_err(|e| e.to_string())?;
            (initial, res.mapping)
        }
    };

    let before = evaluate(&ga, &topo.graph, &initial);
    let after = evaluate(&ga, &topo.graph, &enhanced);
    println!("{:<18} {:>14} {:>14}", "metric", "initial", "after TIMER");
    println!("{:<18} {:>14} {:>14}", "Coco", before.coco, after.coco);
    println!(
        "{:<18} {:>14} {:>14}",
        "edge cut", before.edge_cut, after.edge_cut
    );
    println!(
        "{:<18} {:>14} {:>14}",
        "congestion", before.congestion, after.congestion
    );
    println!(
        "{:<18} {:>14.4} {:>14.4}",
        "imbalance", before.imbalance, after.imbalance
    );

    if let Some(path) = out {
        let mut content = String::new();
        for v in 0..enhanced.num_tasks() {
            let _ = writeln!(content, "{}", enhanced.pe_of(v as u32));
        }
        std::fs::write(path, content).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("wrote vertex-to-PE assignment to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("map_file: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
