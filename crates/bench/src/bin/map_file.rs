//! Command-line mapper: read an application graph from a METIS or edge-list
//! file, map it onto a chosen partial-cube topology, enhance the mapping
//! with TIMER and (optionally) write the resulting vertex-to-PE assignment
//! to a file — the workflow a user of the original tool chain (KaHIP +
//! TIMER) would run.
//!
//! Every request goes through [`tie_mapd::Service`] — the same pipeline the
//! `mapd` daemon serves — either in-process (the default) or over a daemon
//! socket (`--client SOCKET`). One code path means the one-shot and served
//! results are byte-identical by construction.
//!
//! Usage:
//!   cargo run -p tie-bench --bin map_file --release -- \
//!       --graph app.metis --topology grid16x16 [--case c2|c3|c4|c1] \
//!       [--nh 50] [--eps 0.03] [--seed 1] [--threads N] [--batch B] \
//!       [--deadline-ms N] [--out mapping.txt] [--json] \
//!       [--client SOCKET [--ping | --shutdown [--shutdown-mode drain|cancel]]] \
//!       [--trace-out trace.jsonl] [--trace-level gate|phase|debug]
//!
//! Supported topology names: gridAxB, gridAxBxC, torusAxB, torusAxBxC,
//! hypercubeD, treeN, pathN.
//!
//! Every malformed flag or unreadable input is reported as a one-line error
//! plus this usage summary (exit code 2) — the binary never panics on bad
//! input.

use std::fmt::Write as _;
use std::process::ExitCode;

use tie_fault::FaultHandle;
use tie_mapd::cli::{flag_value, has_flag, parsed_flag, trace_from_flags};
use tie_mapd::protocol::{GraphSource, MapRequest, MapResponse, Response, ShutdownMode};
use tie_mapd::{Service, ServiceOptions};

const USAGE: &str = "usage: map_file --graph FILE --topology NAME \
     [--case c1|c2|c3|c4] [--nh N] [--eps F] [--seed N] [--threads N] \
     [--batch N] [--deadline-ms N] [--out PATH] [--json] \
     [--client SOCKET [--ping | --shutdown [--shutdown-mode drain|cancel]]] \
     [--trace-out PATH|-] [--trace-level off|gate|phase|debug]";

fn build_request(args: &[String]) -> Result<MapRequest, String> {
    let seed: u64 = parsed_flag(args, "--seed", 1)?;
    let threads: usize = parsed_flag(args, "--threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    // Without --graph a demo network is generated so the binary is runnable
    // out of the box. It travels inline even in client mode, so local and
    // served runs rebuild the identical graph.
    let graph = match flag_value(args, "--graph") {
        Some(path) => GraphSource::Path(path.to_string()),
        None => {
            eprintln!("no --graph given; using a demo Barabási–Albert network with 4096 vertices");
            let g = tie_graph::generators::barabasi_albert(4096, 4, seed);
            GraphSource::Inline {
                num_vertices: g.num_vertices(),
                edges: g.edges().collect(),
            }
        }
    };
    Ok(MapRequest {
        graph,
        topology: flag_value(args, "--topology")
            .unwrap_or("grid8x8")
            .to_string(),
        case: flag_value(args, "--case").unwrap_or("c2").to_string(),
        nh: parsed_flag(args, "--nh", 50)?,
        eps: parsed_flag(args, "--eps", 0.03)?,
        seed,
        threads,
        batch: parsed_flag(args, "--batch", 0)?,
        deadline_ms: parsed_flag(args, "--deadline-ms", 0)?,
    })
}

/// Renders a successful map response: `--json` emits the wire form on
/// stdout, the default prints the human-readable metric table.
fn render(resp: &MapResponse, args: &[String]) -> Result<(), String> {
    if has_flag(args, "--json") {
        println!("{}", Response::Map(Box::new(resp.clone())).to_json());
    } else {
        eprintln!(
            "case {}: cache {}, {} accepted hierarchies, {} swaps, stop: {}",
            flag_value(args, "--case").unwrap_or("c2"),
            resp.cache,
            resp.hierarchies_accepted,
            resp.total_swaps,
            resp.stop_reason
        );
        let (b, a) = (&resp.initial, &resp.enhanced);
        println!("{:<18} {:>14} {:>14}", "metric", "initial", "after TIMER");
        println!("{:<18} {:>14} {:>14}", "Coco", b.coco, a.coco);
        println!("{:<18} {:>14} {:>14}", "edge cut", b.edge_cut, a.edge_cut);
        println!(
            "{:<18} {:>14} {:>14}",
            "congestion", b.congestion, a.congestion
        );
        println!(
            "{:<18} {:>14.4} {:>14.4}",
            "imbalance", b.imbalance, a.imbalance
        );
    }
    if let Some(path) = flag_value(args, "--out") {
        let mut content = String::new();
        for &pe in &resp.mapping {
            let _ = writeln!(content, "{pe}");
        }
        std::fs::write(path, content).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("wrote vertex-to-PE assignment to {path}");
    }
    Ok(())
}

#[cfg(unix)]
fn run_client(socket: &str, args: &[String], faults: FaultHandle) -> Result<(), String> {
    use tie_mapd::client::Client;
    use tie_mapd::protocol::Request;

    let mut client =
        Client::connect(std::path::Path::new(socket), faults).map_err(|e| e.to_string())?;
    let request = if has_flag(args, "--ping") {
        Request::Ping
    } else if has_flag(args, "--shutdown") {
        let mode = match flag_value(args, "--shutdown-mode") {
            Some(m) => ShutdownMode::parse(m)
                .ok_or_else(|| format!("--shutdown-mode needs drain|cancel, got {m:?}"))?,
            None => ShutdownMode::Drain,
        };
        Request::Shutdown { mode }
    } else {
        Request::Map(Box::new(build_request(args)?))
    };
    match client.request(&request).map_err(|e| e.to_string())? {
        Response::Map(resp) => render(&resp, args),
        Response::Pong { in_flight, cache } => {
            println!(
                "{{\"status\": \"ok\", \"kind\": \"pong\", \"in_flight\": {}, \"cache\": \
                 {{\"entries\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}}}}",
                in_flight, cache.entries, cache.hits, cache.misses, cache.evictions
            );
            Ok(())
        }
        Response::ShuttingDown { mode } => {
            eprintln!("daemon shutting down ({mode})");
            Ok(())
        }
        Response::Error { message } => Err(message),
    }
}

#[cfg(not(unix))]
fn run_client(_socket: &str, _args: &[String], _faults: FaultHandle) -> Result<(), String> {
    Err("--client requires Unix-domain sockets, unavailable on this platform".to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    let faults = FaultHandle::from_env().map_err(|e| format!("invalid TIE_FAULTS: {e}"))?;
    if let Some(socket) = flag_value(args, "--client") {
        return run_client(socket, args, faults);
    }
    let service = Service::new(ServiceOptions {
        cache_capacity: 1,
        max_inflight: 0,
        trace: trace_from_flags(args)?,
        faults,
    });
    let resp = service
        .execute(&build_request(args)?)
        .map_err(|e| e.to_string())?;
    render(&resp, args)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("map_file: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
