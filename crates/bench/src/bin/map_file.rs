//! Command-line mapper: read an application graph from a METIS or edge-list
//! file, map it onto a chosen partial-cube topology, enhance the mapping with
//! TIMER and (optionally) write the resulting vertex-to-PE assignment to a
//! file — the workflow a user of the original tool chain (KaHIP + TIMER)
//! would run.
//!
//! Usage:
//!   cargo run -p tie-bench --bin map_file --release -- \
//!       --graph app.metis --topology grid16x16 [--case c2|c3|c4|c1] \
//!       [--nh 50] [--eps 0.03] [--seed 1] [--threads N] [--batch B] \
//!       [--out mapping.txt] [--trace-out trace.jsonl] \
//!       [--trace-level gate|phase|debug]
//!
//! Supported topology names: gridAxB, gridAxBxC, torusAxB, torusAxBxC,
//! hypercubeD, treeN, pathN.

use std::fmt::Write as _;

use tie_bench::experiment::{run_case, ExperimentCase, ExperimentConfig};
use tie_bench::harness::make_trace_handle;
use tie_graph::io;
use tie_mapping::{identity_mapping, Mapping};
use tie_metrics::evaluate;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};
use tie_trace::{TraceHandle, TraceLevel};

fn parse_topology(spec: &str) -> Topology {
    let lower = spec.to_lowercase();
    let dims = |s: &str| -> Vec<usize> { s.split('x').filter_map(|t| t.parse().ok()).collect() };
    if let Some(rest) = lower.strip_prefix("grid") {
        let d = dims(rest);
        return match d.len() {
            2 => Topology::grid2d(d[0], d[1]),
            3 => Topology::grid3d(d[0], d[1], d[2]),
            _ => panic!("grid topology needs 2 or 3 extents, got {spec:?}"),
        };
    }
    if let Some(rest) = lower.strip_prefix("torus") {
        let d = dims(rest);
        return match d.len() {
            2 => Topology::torus2d(d[0], d[1]),
            3 => Topology::torus3d(d[0], d[1], d[2]),
            _ => panic!("torus topology needs 2 or 3 extents, got {spec:?}"),
        };
    }
    if let Some(rest) = lower.strip_prefix("hypercube") {
        return Topology::hypercube(rest.parse().expect("hypercube needs a dimension"));
    }
    if let Some(rest) = lower.strip_prefix("tree") {
        return Topology::binary_tree(rest.parse().expect("tree needs a vertex count"));
    }
    if let Some(rest) = lower.strip_prefix("path") {
        return Topology::path(rest.parse().expect("path needs a vertex count"));
    }
    panic!("unknown topology {spec:?}");
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let graph_path = flag_value(&args, "--graph");
    let topology_spec = flag_value(&args, "--topology").unwrap_or("grid8x8");
    let nh: usize = flag_value(&args, "--nh")
        .map(|v| v.parse().unwrap())
        .unwrap_or(50);
    let eps: f64 = flag_value(&args, "--eps")
        .map(|v| v.parse().unwrap())
        .unwrap_or(0.03);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|v| v.parse().unwrap())
        .unwrap_or(1);
    let case = flag_value(&args, "--case").unwrap_or("c2");
    let threads: usize = flag_value(&args, "--threads")
        .map(|v| v.parse().unwrap())
        .unwrap_or(1);
    let batch: usize = flag_value(&args, "--batch")
        .map(|v| v.parse().unwrap())
        .unwrap_or(0);
    let out = flag_value(&args, "--out");
    let trace = match flag_value(&args, "--trace-out") {
        Some(path) => {
            let level = flag_value(&args, "--trace-level")
                .map(|v| TraceLevel::parse(v).expect("--trace-level needs off|gate|phase|debug"))
                .unwrap_or(TraceLevel::Phase);
            make_trace_handle(path, level)
        }
        None => TraceHandle::off(),
    };

    // Load the application graph; without --graph a demo network is used so
    // the binary is runnable out of the box.
    let ga = match graph_path {
        Some(path) => {
            if path.ends_with(".metis") || path.ends_with(".graph") {
                io::read_metis(path).expect("failed to read METIS graph")
            } else {
                io::read_edge_list(path).expect("failed to read edge list")
            }
        }
        None => {
            eprintln!("no --graph given; using a demo Barabási–Albert network with 4096 vertices");
            tie_graph::generators::barabasi_albert(4096, 4, seed)
        }
    };
    let topo = parse_topology(topology_spec);
    eprintln!(
        "application graph: {} vertices, {} edges; topology: {} ({} PEs)",
        ga.num_vertices(),
        ga.num_edges(),
        topo.name,
        topo.num_pes()
    );

    let experiment_case = match case {
        "c1" => Some(ExperimentCase::C1Drb),
        "c2" => None, // handled inline below (identity), keeps timing simple
        "c3" => Some(ExperimentCase::C3GreedyAllC),
        "c4" => Some(ExperimentCase::C4GreedyMin),
        other => panic!("unknown case {other:?}"),
    };

    let (initial, enhanced): (Mapping, Mapping) = match experiment_case {
        Some(c) => {
            let config = ExperimentConfig {
                num_hierarchies: nh,
                epsilon: eps,
                seed,
                threads,
                batch,
                trace: trace.clone(),
            };
            let result = run_case(&ga, &topo, c, &config);
            eprintln!(
                "case {}: Coco {} -> {} ({} accepted hierarchies)",
                c.id(),
                result.initial.coco,
                result.enhanced.coco,
                result.hierarchies_accepted
            );
            // Re-run the pipeline pieces to obtain the mappings themselves.
            let part = partition(
                &ga,
                &PartitionConfig {
                    epsilon: eps,
                    ..PartitionConfig::new(topo.num_pes(), seed)
                },
            );
            let initial = match c {
                ExperimentCase::C1Drb => {
                    tie_mapping::drb::drb_mapping(&ga, &part, &topo.graph, seed)
                }
                ExperimentCase::C3GreedyAllC => {
                    tie_mapping::greedy::greedy_allc_mapping(&ga, &part, &topo.graph)
                }
                ExperimentCase::C4GreedyMin => {
                    tie_mapping::greedy::greedy_min_mapping(&ga, &part, &topo.graph)
                }
                ExperimentCase::C2Identity => identity_mapping(&part, topo.num_pes()),
            };
            let pcube =
                recognize_partial_cube(&topo.graph).expect("topology must be a partial cube");
            let res = enhance_mapping(
                &ga,
                &pcube,
                &initial,
                TimerConfig::new(nh, seed)
                    .with_threads(threads)
                    .with_batch(batch)
                    .with_trace(trace.clone()),
            );
            (initial, res.mapping)
        }
        None => {
            let part = partition(
                &ga,
                &PartitionConfig {
                    epsilon: eps,
                    ..PartitionConfig::new(topo.num_pes(), seed)
                },
            );
            let initial = identity_mapping(&part, topo.num_pes());
            let pcube =
                recognize_partial_cube(&topo.graph).expect("topology must be a partial cube");
            let res = enhance_mapping(
                &ga,
                &pcube,
                &initial,
                TimerConfig::new(nh, seed)
                    .with_threads(threads)
                    .with_batch(batch)
                    .with_trace(trace.clone()),
            );
            (initial, res.mapping)
        }
    };

    let before = evaluate(&ga, &topo.graph, &initial);
    let after = evaluate(&ga, &topo.graph, &enhanced);
    println!("{:<18} {:>14} {:>14}", "metric", "initial", "after TIMER");
    println!("{:<18} {:>14} {:>14}", "Coco", before.coco, after.coco);
    println!(
        "{:<18} {:>14} {:>14}",
        "edge cut", before.edge_cut, after.edge_cut
    );
    println!(
        "{:<18} {:>14} {:>14}",
        "congestion", before.congestion, after.congestion
    );
    println!(
        "{:<18} {:>14.4} {:>14.4}",
        "imbalance", before.imbalance, after.imbalance
    );

    if let Some(path) = out {
        let mut content = String::new();
        for v in 0..enhanced.num_tasks() {
            let _ = writeln!(content, "{}", enhanced.pe_of(v as u32));
        }
        std::fs::write(path, content).expect("failed to write mapping file");
        eprintln!("wrote vertex-to-PE assignment to {path}");
    }
}
