//! # tie-bench
//!
//! Experiment harness for the TIMER reproduction: workload catalogue,
//! experiment runner for the paper's four cases (c1–c4), statistics
//! (min/mean/max over repetitions, quotients, geometric means) and plain-text
//! table/figure emitters.
//!
//! Binaries (each regenerates one artefact of the paper's evaluation):
//!
//! * `table1` — the benchmark-network inventory (Table 1),
//! * `table2` — running-time quotients of TIMER vs the partitioner / the
//!   DRB mapper (Table 2),
//! * `table3` — absolute partitioner running times (Table 3, appendix),
//! * `figure5` — relative Coco and Cut after TIMER for cases c1–c4
//!   (Figures 5a–5d),
//! * `run_all` — everything above in one go (smaller default scale).
//!
//! The original evaluation uses 15 real complex networks; those are replaced
//! by seeded synthetic networks of the same structural family (see
//! [`workloads`] and DESIGN.md).
#![forbid(unsafe_code)]

pub mod experiment;
pub mod harness;
pub mod report;
pub mod stats;
pub mod workloads;

pub use experiment::{run_case, CaseResult, ExperimentCase, ExperimentConfig};
pub use harness::{parse_options, quality_rows, run_sweep, timing_rows, SweepOptions};
pub use stats::{geometric_mean, geometric_std_dev, Summary};
pub use workloads::{paper_networks, quick_networks, NetworkSpec, Scale};
