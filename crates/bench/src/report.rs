//! Plain-text table and figure emitters.
//!
//! The binaries print the same rows/series the paper reports: Table 1
//! (network inventory), Table 2 (running-time quotients), Table 3
//! (partitioner running times), and Figures 5a–5d (relative Coco and Cut per
//! topology after TIMER). Everything is plain ASCII so the output can be
//! diffed and pasted into EXPERIMENTS.md.

use std::fmt::Write as _;

use tie_timer::RoundTelemetry;
use tie_trace::LogHistogram;

use crate::experiment::ExperimentCase;
use crate::harness::CellObservations;
use crate::stats::Summary;

/// One row of a Figure-5-style quality report: relative Cut and Coco
/// (min/mean/max, geometric means over networks) for one topology.
#[derive(Clone, Debug)]
pub struct QualityRow {
    /// Topology name (e.g. `grid16x16`).
    pub topology: String,
    /// Relative edge cut after TIMER (min/mean/max).
    pub cut: Summary,
    /// Relative Coco after TIMER (min/mean/max).
    pub coco: Summary,
}

/// One row of a Table-2-style timing report.
#[derive(Clone, Debug)]
pub struct TimingRow {
    /// Topology name.
    pub topology: String,
    /// Per-case time quotients (min/mean/max), in case order c1..c4.
    pub per_case: Vec<(String, Summary)>,
}

/// Formats a Figure-5-like quality table.
pub fn format_quality_table(case_name: &str, rows: &[QualityRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Relative quality after TIMER — case {case_name} (values < 1.0 mean TIMER improved the metric)");
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8}",
        "topology", "minCut", "Cut", "maxCut", "minCo", "Co", "maxCo"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>8.4} {:>8.4} {:>8.4}   {:>8.4} {:>8.4} {:>8.4}",
            row.topology,
            row.cut.min,
            row.cut.mean,
            row.cut.max,
            row.coco.min,
            row.coco.mean,
            row.coco.max
        );
    }
    out
}

/// Formats a Table-2-like timing table.
pub fn format_timing_table(rows: &[TimingRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Running-time quotients (TIMER time / baseline time; baseline = DRB mapping for c1, partitioning for c2-c4)"
    );
    for row in rows {
        let _ = writeln!(out, "{}", row.topology);
        for (case, s) in &row.per_case {
            let _ = writeln!(
                out,
                "    {:<22} qT_min {:>9.4}  qT_mean {:>9.4}  qT_max {:>9.4}",
                case, s.min, s.mean, s.max
            );
        }
    }
    out
}

/// Formats a Table-1-like inventory row set.
pub fn format_inventory(rows: &[(String, usize, usize, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12}  Type",
        "Name", "#vertices", "#edges"
    );
    for (name, n, m, kind) in rows {
        let _ = writeln!(out, "{:<24} {:>10} {:>12}  {}", name, n, m, kind);
    }
    out
}

/// Formats a Table-3-like running-time listing (seconds). `k_labels` names
/// the two block-count columns (the paper uses k = 256 and k = 512; the
/// reduced-scale harness uses smaller k).
pub fn format_partition_times(rows: &[(String, f64, f64)], k_labels: (&str, &str)) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12}",
        "Name",
        format!("{} [s]", k_labels.0),
        format!("{} [s]", k_labels.1)
    );
    let mut product_256 = 1.0f64;
    let mut product_512 = 1.0f64;
    let mut sum_256 = 0.0f64;
    let mut sum_512 = 0.0f64;
    for (name, t256, t512) in rows {
        let _ = writeln!(out, "{:<24} {:>12.3} {:>12.3}", name, t256, t512);
        product_256 *= t256.max(1e-9);
        product_512 *= t512.max(1e-9);
        sum_256 += t256;
        sum_512 += t512;
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let _ = writeln!(
            out,
            "{:<24} {:>12.3} {:>12.3}",
            "Arithmetic mean",
            sum_256 / n,
            sum_512 / n
        );
        let _ = writeln!(
            out,
            "{:<24} {:>12.3} {:>12.3}",
            "Geometric mean",
            product_256.powf(1.0 / n),
            product_512.powf(1.0 / n)
        );
    }
    out
}

// The canonical JSON string escaper lives in the service crate next to the
// protocol parser; artifacts and wire frames must agree on the encoding.
use tie_mapd::json::escape as escape_json;

/// Formats a float list as a JSON array.
fn format_f64_list(values: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v:.6}");
    }
    out.push(']');
    out
}

/// Serializes a full sweep (all cases × all cells) as the machine-readable
/// artifact `run_all --out` writes. Rows whose repetitions failed carry
/// their error strings instead of silently disappearing, so a partially
/// failed overnight campaign is still a complete, auditable record.
pub fn format_sweep_json(per_case: &[(ExperimentCase, Vec<CellObservations>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"report\": \"sweep\",");
    let total_errors: usize = per_case
        .iter()
        .flat_map(|(_, cells)| cells.iter())
        .map(|c| c.errors.len())
        .sum();
    let _ = writeln!(out, "  \"total_errors\": {total_errors},");
    let _ = writeln!(out, "  \"cases\": [");
    for (i, (case, cells)) in per_case.iter().enumerate() {
        let case_comma = if i + 1 < per_case.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"case\": \"{}\",", case.id());
        let _ = writeln!(out, "      \"rows\": [");
        for (j, c) in cells.iter().enumerate() {
            let row_comma = if j + 1 < cells.len() { "," } else { "" };
            let mut errors = String::from("[");
            for (k, e) in c.errors.iter().enumerate() {
                if k > 0 {
                    errors.push_str(", ");
                }
                let _ = write!(errors, "\"{}\"", escape_json(e));
            }
            errors.push(']');
            let _ = writeln!(
                out,
                "        {{\"network\": \"{}\", \"topology\": \"{}\", \
                 \"coco_quotients\": {}, \"cut_quotients\": {}, \"time_quotients\": {}, \
                 \"errors\": {}}}{}",
                escape_json(&c.network),
                escape_json(&c.topology),
                format_f64_list(&c.coco_quotients),
                format_f64_list(&c.cut_quotients),
                format_f64_list(&c.time_quotients),
                errors,
                row_comma
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{case_comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// One measurement of the TIMER perf-trajectory harness (`bench_timer`):
/// a full `Timer::enhance` run at one scale × thread-count cell.
#[derive(Clone, Debug)]
pub struct TimerBenchEntry {
    /// Workload scale name (`tiny`, `small`, `medium`).
    pub scale: String,
    /// Worker threads for the speculative batches.
    pub threads: usize,
    /// Effective batch depth (the resolved value, not the 0 sentinel).
    pub batch: usize,
    /// Median wall-clock of the `enhance` call across repetitions, in
    /// milliseconds (with `--reps 1` this is the single measurement).
    pub wall_ms: f64,
    /// Minimum wall-clock across repetitions, in milliseconds.
    pub wall_ms_min: f64,
    /// Coco of the initial mapping.
    pub initial_coco: u64,
    /// Coco of the enhanced mapping (byte-identical across thread counts).
    pub final_coco: u64,
    /// Hierarchy rounds whose result was kept.
    pub accepted: usize,
    /// Label swaps performed across all sweeps.
    pub total_swaps: usize,
    /// True when this row asked for more worker threads than the machine
    /// has — its `wall_ms` measures contention, not speedup.
    pub threads_oversubscribed: bool,
}

/// Formats a [`LogHistogram`] as a JSON array of its non-empty buckets,
/// each `{"lo": .., "hi": .., "count": ..}` with inclusive bounds.
fn format_histogram_json(hist: &LogHistogram) -> String {
    let mut out = String::from("[");
    for (i, b) in hist.buckets().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"lo\": {}, \"hi\": {}, \"count\": {}}}",
            b.lo, b.hi, b.count
        );
    }
    out.push(']');
    out
}

/// Serializes the perf-trajectory measurements as the `BENCH_timer.json`
/// artifact: machine-readable, diffable, one object per cell. No external
/// JSON crate is available offline, so the (flat, numeric) structure is
/// emitted by hand.
///
/// `telemetry` carries one accept-gate record per scale (gate outcomes are
/// byte-identical across thread counts, so one record covers all rows of a
/// scale; the phase breakdown comes from that scale's threads = 1 run, and
/// with `reps > 1` from that run's first repetition).
#[allow(clippy::too_many_arguments)] // flat artifact header, one field each
pub fn format_bench_json(
    nh: usize,
    reps: usize,
    network: &str,
    topology: &str,
    hardware_threads: usize,
    entries: &[TimerBenchEntry],
    telemetry: &[(String, RoundTelemetry)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"timer\",");
    let _ = writeln!(out, "  \"nh\": {nh},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(out, "  \"network\": \"{network}\",");
    let _ = writeln!(out, "  \"topology\": \"{topology}\",");
    // Wall-clock context: with hardware_threads = 1 the batched rows can at
    // best tie the sequential row; real speedups need real cores.
    let _ = writeln!(out, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(out, "  \"results\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scale\": \"{}\", \"threads\": {}, \"batch\": {}, \"wall_ms\": {:.3}, \
             \"wall_ms_min\": {:.3}, \"initial_coco\": {}, \"final_coco\": {}, \
             \"accepted\": {}, \"total_swaps\": {}, \"threads_oversubscribed\": {}}}{}",
            e.scale,
            e.threads,
            e.batch,
            e.wall_ms,
            e.wall_ms_min,
            e.initial_coco,
            e.final_coco,
            e.accepted,
            e.total_swaps,
            e.threads_oversubscribed,
            comma
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"telemetry\": [");
    for (i, (scale, t)) in telemetry.iter().enumerate() {
        let comma = if i + 1 < telemetry.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"scale\": \"{scale}\",");
        let _ = writeln!(out, "      \"accepted\": {},", t.accepted);
        let _ = writeln!(out, "      \"rejected\": {},", t.rejected);
        let _ = writeln!(out, "      \"ties\": {},", t.ties);
        let _ = writeln!(
            out,
            "      \"delta_coco_hist\": {},",
            format_histogram_json(&t.delta_coco)
        );
        let _ = writeln!(
            out,
            "      \"delta_div_hist\": {},",
            format_histogram_json(&t.delta_div)
        );
        let mut phases = String::from("{");
        for (j, (phase, us)) in t.phases.iter().enumerate() {
            if j > 0 {
                phases.push_str(", ");
            }
            let _ = write!(phases, "\"{}\": {}", phase.name(), us);
        }
        phases.push('}');
        let _ = writeln!(out, "      \"phases_us\": {phases}");
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_table_contains_all_rows_and_header() {
        let rows = vec![
            QualityRow {
                topology: "grid16x16".into(),
                cut: Summary {
                    min: 1.01,
                    mean: 1.05,
                    max: 1.1,
                },
                coco: Summary {
                    min: 0.7,
                    mean: 0.8,
                    max: 0.9,
                },
            },
            QualityRow {
                topology: "8-dimHQ".into(),
                cut: Summary {
                    min: 1.0,
                    mean: 1.0,
                    max: 1.0,
                },
                coco: Summary {
                    min: 0.9,
                    mean: 0.95,
                    max: 1.0,
                },
            },
        ];
        let s = format_quality_table("c2", &rows);
        assert!(s.contains("grid16x16"));
        assert!(s.contains("8-dimHQ"));
        assert!(s.contains("minCo"));
        assert!(s.contains("0.8000"));
    }

    #[test]
    fn timing_table_lists_cases() {
        let rows = vec![TimingRow {
            topology: "torus16x16".into(),
            per_case: vec![
                (
                    "c1".into(),
                    Summary {
                        min: 20.0,
                        mean: 21.0,
                        max: 22.0,
                    },
                ),
                (
                    "c2".into(),
                    Summary {
                        min: 0.5,
                        mean: 0.6,
                        max: 0.7,
                    },
                ),
            ],
        }];
        let s = format_timing_table(&rows);
        assert!(s.contains("torus16x16"));
        assert!(s.contains("qT_mean"));
        assert!(s.contains("21.0000"));
    }

    #[test]
    fn bench_json_is_well_formed() {
        let entries = vec![
            TimerBenchEntry {
                scale: "tiny".into(),
                threads: 1,
                batch: 1,
                wall_ms: 12.3456,
                wall_ms_min: 11.9,
                initial_coco: 100,
                final_coco: 80,
                accepted: 3,
                total_swaps: 42,
                threads_oversubscribed: false,
            },
            TimerBenchEntry {
                scale: "tiny".into(),
                threads: 4,
                batch: 4,
                wall_ms: 4.0,
                wall_ms_min: 3.5,
                initial_coco: 100,
                final_coco: 80,
                accepted: 3,
                total_swaps: 42,
                threads_oversubscribed: true,
            },
        ];
        let mut tel = RoundTelemetry::default();
        tel.record_gate(-20, -5, true, false);
        tel.record_gate(3, 3, true, true);
        tel.record_gate(7, 0, false, false);
        use tie_trace::Phase;
        tel.phases.add(Phase::Sweep, 1234);
        tel.phases.add(Phase::DeltaScan, 56);
        let telemetry = vec![("tiny".to_string(), tel)];
        let s = format_bench_json(10, 3, "PGPgiantcompo", "grid8x8", 4, &entries, &telemetry);
        // Structural sanity without a JSON parser: balanced braces/brackets,
        // exactly one trailing-comma-free list, and the key fields present.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert!(!s.contains(",\n  ]"), "trailing comma before list close");
        assert!(s.contains("\"bench\": \"timer\""));
        assert!(s.contains("\"nh\": 10"));
        assert!(s.contains("\"reps\": 3"));
        assert!(s.contains("\"hardware_threads\": 4"));
        assert!(s.contains("\"wall_ms\": 12.346"));
        assert!(s.contains("\"wall_ms_min\": 11.900"));
        assert!(s.contains("\"threads\": 4"));
        assert!(s.contains("\"final_coco\": 80"));
        assert!(s.contains("\"threads_oversubscribed\": false"));
        assert!(s.contains("\"threads_oversubscribed\": true"));
        // Telemetry block: gate counts, histograms with inclusive bounds,
        // and the full fixed phase vocabulary.
        assert!(s.contains("\"accepted\": 2,"));
        assert!(s.contains("\"rejected\": 1,"));
        assert!(s.contains("\"ties\": 1,"));
        assert!(s.contains("\"delta_coco_hist\": ["));
        assert!(s.contains("{\"lo\": -31, \"hi\": -16, \"count\": 1}"));
        assert!(s.contains("\"delta_div_hist\": ["));
        assert!(s.contains("\"phases_us\": {"));
        assert!(s.contains("\"sweep\": 1234"));
        assert!(s.contains("\"delta_scan\": 56"));
        assert!(s.contains("\"hierarchy_build\": 0"));
        // "scale" appears once per result row and once per telemetry record.
        assert_eq!(s.matches("\"scale\"").count(), 3);
    }

    #[test]
    fn sweep_json_records_errors_and_balances() {
        let cells = vec![
            CellObservations {
                network: "netA".into(),
                topology: "grid4x4".into(),
                coco_quotients: vec![0.9, 0.95],
                cut_quotients: vec![1.0, 1.01],
                time_quotients: vec![2.0, 2.1],
                partition_seconds: vec![0.01, 0.01],
                errors: Vec::new(),
            },
            CellObservations {
                network: "netB".into(),
                topology: "grid4x4".into(),
                coco_quotients: Vec::new(),
                cut_quotients: Vec::new(),
                time_quotients: Vec::new(),
                partition_seconds: Vec::new(),
                errors: vec!["rep 0: worker panicked in hierarchy round 3: \"boom\"".into()],
            },
        ];
        let s = format_sweep_json(&[(ExperimentCase::C2Identity, cells)]);
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert!(s.contains("\"total_errors\": 1"));
        assert!(s.contains("\"case\": \"c2\""));
        assert!(s.contains("\"network\": \"netB\""));
        // The quote inside the error message must arrive escaped.
        assert!(s.contains("round 3: \\\"boom\\\""));
        assert!(s.contains("\"coco_quotients\": [0.900000, 0.950000]"));
        assert!(s.contains("\"errors\": []"));
    }

    #[test]
    fn json_escaping_covers_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn inventory_and_partition_times_format() {
        let inv = format_inventory(&[("net".into(), 100, 200, "test network".into())]);
        assert!(inv.contains("net") && inv.contains("200"));
        let times = format_partition_times(
            &[("net".into(), 1.5, 3.0), ("net2".into(), 2.0, 4.0)],
            ("k=256", "k=512"),
        );
        assert!(times.contains("Geometric mean"));
        assert!(times.contains("Arithmetic mean"));
        assert!(times.contains("k=512 [s]"));
    }
}
