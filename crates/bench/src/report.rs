//! Plain-text table and figure emitters.
//!
//! The binaries print the same rows/series the paper reports: Table 1
//! (network inventory), Table 2 (running-time quotients), Table 3
//! (partitioner running times), and Figures 5a–5d (relative Coco and Cut per
//! topology after TIMER). Everything is plain ASCII so the output can be
//! diffed and pasted into EXPERIMENTS.md.

use std::fmt::Write as _;

use crate::stats::Summary;

/// One row of a Figure-5-style quality report: relative Cut and Coco
/// (min/mean/max, geometric means over networks) for one topology.
#[derive(Clone, Debug)]
pub struct QualityRow {
    /// Topology name (e.g. `grid16x16`).
    pub topology: String,
    /// Relative edge cut after TIMER (min/mean/max).
    pub cut: Summary,
    /// Relative Coco after TIMER (min/mean/max).
    pub coco: Summary,
}

/// One row of a Table-2-style timing report.
#[derive(Clone, Debug)]
pub struct TimingRow {
    /// Topology name.
    pub topology: String,
    /// Per-case time quotients (min/mean/max), in case order c1..c4.
    pub per_case: Vec<(String, Summary)>,
}

/// Formats a Figure-5-like quality table.
pub fn format_quality_table(case_name: &str, rows: &[QualityRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Relative quality after TIMER — case {case_name} (values < 1.0 mean TIMER improved the metric)");
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8}",
        "topology", "minCut", "Cut", "maxCut", "minCo", "Co", "maxCo"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>8.4} {:>8.4} {:>8.4}   {:>8.4} {:>8.4} {:>8.4}",
            row.topology,
            row.cut.min,
            row.cut.mean,
            row.cut.max,
            row.coco.min,
            row.coco.mean,
            row.coco.max
        );
    }
    out
}

/// Formats a Table-2-like timing table.
pub fn format_timing_table(rows: &[TimingRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Running-time quotients (TIMER time / baseline time; baseline = DRB mapping for c1, partitioning for c2-c4)"
    );
    for row in rows {
        let _ = writeln!(out, "{}", row.topology);
        for (case, s) in &row.per_case {
            let _ = writeln!(
                out,
                "    {:<22} qT_min {:>9.4}  qT_mean {:>9.4}  qT_max {:>9.4}",
                case, s.min, s.mean, s.max
            );
        }
    }
    out
}

/// Formats a Table-1-like inventory row set.
pub fn format_inventory(rows: &[(String, usize, usize, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12}  Type",
        "Name", "#vertices", "#edges"
    );
    for (name, n, m, kind) in rows {
        let _ = writeln!(out, "{:<24} {:>10} {:>12}  {}", name, n, m, kind);
    }
    out
}

/// Formats a Table-3-like running-time listing (seconds). `k_labels` names
/// the two block-count columns (the paper uses k = 256 and k = 512; the
/// reduced-scale harness uses smaller k).
pub fn format_partition_times(rows: &[(String, f64, f64)], k_labels: (&str, &str)) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12}",
        "Name",
        format!("{} [s]", k_labels.0),
        format!("{} [s]", k_labels.1)
    );
    let mut product_256 = 1.0f64;
    let mut product_512 = 1.0f64;
    let mut sum_256 = 0.0f64;
    let mut sum_512 = 0.0f64;
    for (name, t256, t512) in rows {
        let _ = writeln!(out, "{:<24} {:>12.3} {:>12.3}", name, t256, t512);
        product_256 *= t256.max(1e-9);
        product_512 *= t512.max(1e-9);
        sum_256 += t256;
        sum_512 += t512;
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let _ = writeln!(
            out,
            "{:<24} {:>12.3} {:>12.3}",
            "Arithmetic mean",
            sum_256 / n,
            sum_512 / n
        );
        let _ = writeln!(
            out,
            "{:<24} {:>12.3} {:>12.3}",
            "Geometric mean",
            product_256.powf(1.0 / n),
            product_512.powf(1.0 / n)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_table_contains_all_rows_and_header() {
        let rows = vec![
            QualityRow {
                topology: "grid16x16".into(),
                cut: Summary {
                    min: 1.01,
                    mean: 1.05,
                    max: 1.1,
                },
                coco: Summary {
                    min: 0.7,
                    mean: 0.8,
                    max: 0.9,
                },
            },
            QualityRow {
                topology: "8-dimHQ".into(),
                cut: Summary {
                    min: 1.0,
                    mean: 1.0,
                    max: 1.0,
                },
                coco: Summary {
                    min: 0.9,
                    mean: 0.95,
                    max: 1.0,
                },
            },
        ];
        let s = format_quality_table("c2", &rows);
        assert!(s.contains("grid16x16"));
        assert!(s.contains("8-dimHQ"));
        assert!(s.contains("minCo"));
        assert!(s.contains("0.8000"));
    }

    #[test]
    fn timing_table_lists_cases() {
        let rows = vec![TimingRow {
            topology: "torus16x16".into(),
            per_case: vec![
                (
                    "c1".into(),
                    Summary {
                        min: 20.0,
                        mean: 21.0,
                        max: 22.0,
                    },
                ),
                (
                    "c2".into(),
                    Summary {
                        min: 0.5,
                        mean: 0.6,
                        max: 0.7,
                    },
                ),
            ],
        }];
        let s = format_timing_table(&rows);
        assert!(s.contains("torus16x16"));
        assert!(s.contains("qT_mean"));
        assert!(s.contains("21.0000"));
    }

    #[test]
    fn inventory_and_partition_times_format() {
        let inv = format_inventory(&[("net".into(), 100, 200, "test network".into())]);
        assert!(inv.contains("net") && inv.contains("200"));
        let times = format_partition_times(
            &[("net".into(), 1.5, 3.0), ("net2".into(), 2.0, 4.0)],
            ("k=256", "k=512"),
        );
        assert!(times.contains("Geometric mean"));
        assert!(times.contains("Arithmetic mean"));
        assert!(times.contains("k=512 [s]"));
    }
}
