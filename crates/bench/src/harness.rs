//! High-level drivers shared by the report binaries: run a whole
//! (networks × topologies × repetitions) sweep for one experimental case and
//! aggregate the results exactly the way Section 7.1 describes.

use std::time::Duration;

use tie_fault::FaultHandle;
use tie_topology::Topology;
use tie_trace::{TraceHandle, TraceLevel};

use crate::experiment::{run_case, ExperimentCase, ExperimentConfig};
use crate::report::{QualityRow, TimingRow};
use crate::stats::{aggregate_summaries, Summary};
use crate::workloads::{NetworkSpec, Scale};

/// Options for a sweep (shared by the binaries; parsed from the CLI).
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Scale of the synthetic networks.
    pub scale: Scale,
    /// Number of repetitions per cell (5 in the paper).
    pub repetitions: usize,
    /// TIMER hierarchies per run (50 in the paper).
    pub num_hierarchies: usize,
    /// Partitioner imbalance (3 % in the paper).
    pub epsilon: f64,
    /// Worker threads for TIMER's speculative hierarchy batches.
    pub threads: usize,
    /// Hierarchy rounds speculated per batch (0 = match `threads`).
    pub batch: usize,
    /// Flight-recorder handle (from `--trace-out`/`--trace-level`; disabled
    /// by default).
    pub trace: TraceHandle,
    /// Optional wall-clock deadline per TIMER run (from `--deadline-ms`).
    pub deadline: Option<Duration>,
    /// Fault-injection handle (from the `TIE_FAULTS` environment variable;
    /// disabled by default).
    pub faults: FaultHandle,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            scale: Scale::Small,
            repetitions: 3,
            num_hierarchies: 10,
            epsilon: 0.03,
            threads: 1,
            batch: 0,
            trace: TraceHandle::off(),
            deadline: None,
            faults: FaultHandle::off(),
        }
    }
}

/// Per-network, per-topology raw observations of one case.
#[derive(Clone, Debug)]
pub struct CellObservations {
    /// Network name.
    pub network: String,
    /// Topology name.
    pub topology: String,
    /// Coco quotients (enhanced / initial), one per repetition.
    pub coco_quotients: Vec<f64>,
    /// Cut quotients, one per repetition.
    pub cut_quotients: Vec<f64>,
    /// Timer time / baseline time quotients, one per repetition.
    pub time_quotients: Vec<f64>,
    /// Partitioning times in seconds, one per repetition.
    pub partition_seconds: Vec<f64>,
    /// Errors of repetitions that failed (one entry per failed repetition;
    /// the sweep keeps going past them instead of aborting the run).
    pub errors: Vec<String>,
}

/// Runs one case over all (network, topology) pairs and returns raw
/// observations.
pub fn run_sweep(
    networks: &[NetworkSpec],
    topologies: &[Topology],
    case: ExperimentCase,
    options: &SweepOptions,
) -> Vec<CellObservations> {
    let mut cells = Vec::new();
    for spec in networks {
        let ga = spec.build(options.scale);
        for topo in topologies {
            let mut coco_q = Vec::new();
            let mut cut_q = Vec::new();
            let mut time_q = Vec::new();
            let mut part_s = Vec::new();
            let mut errors = Vec::new();
            for rep in 0..options.repetitions {
                let config = ExperimentConfig {
                    num_hierarchies: options.num_hierarchies,
                    epsilon: options.epsilon,
                    seed: spec.seed.wrapping_mul(31).wrapping_add(rep as u64),
                    threads: options.threads,
                    batch: options.batch,
                    trace: options.trace.clone(),
                    deadline: options.deadline,
                    faults: options.faults.clone(),
                };
                // A failing repetition is recorded and skipped; the rest of
                // the sweep still runs so one bad row cannot sink a whole
                // overnight campaign.
                let result = match run_case(&ga, topo, case, &config) {
                    Ok(r) => r,
                    Err(e) => {
                        errors.push(format!("rep {rep}: {e}"));
                        continue;
                    }
                };
                coco_q.push(result.coco_quotient());
                cut_q.push(result.cut_quotient());
                // Baseline for the time quotient: the DRB mapping time for c1
                // (the paper divides by SCOTCH's mapping time there), the
                // partitioning time for c2-c4 (divided by KaHIP's time).
                let baseline: Duration = match case {
                    ExperimentCase::C1Drb => result.initial_mapping_time,
                    _ => result.partition_time,
                };
                time_q.push(result.time_quotient(baseline));
                part_s.push(result.partition_time.as_secs_f64());
            }
            cells.push(CellObservations {
                network: spec.name.to_string(),
                topology: topo.name.clone(),
                coco_quotients: coco_q,
                cut_quotients: cut_q,
                time_quotients: time_q,
                partition_seconds: part_s,
                errors,
            });
        }
    }
    cells
}

/// Aggregates raw observations into Figure-5-style quality rows: per
/// topology, the geometric mean over networks of the min/mean/max quotients.
///
/// Topologies for which the sweep produced no observations yield no row
/// (rather than a fabricated "quotient 1.0" row that would read as "no
/// change" in the reports).
pub fn quality_rows(cells: &[CellObservations], topologies: &[Topology]) -> Vec<QualityRow> {
    topologies
        .iter()
        .filter_map(|topo| {
            // Cells whose repetitions all failed carry no observations;
            // `Summary::of` rejects empty slices, so skip them here.
            let per_network_coco: Vec<Summary> = cells
                .iter()
                .filter(|c| c.topology == topo.name && !c.coco_quotients.is_empty())
                .map(|c| Summary::of(&c.coco_quotients))
                .collect();
            let per_network_cut: Vec<Summary> = cells
                .iter()
                .filter(|c| c.topology == topo.name && !c.cut_quotients.is_empty())
                .map(|c| Summary::of(&c.cut_quotients))
                .collect();
            Some(QualityRow {
                topology: topo.name.clone(),
                coco: aggregate_summaries(&per_network_coco)?,
                cut: aggregate_summaries(&per_network_cut)?,
            })
        })
        .collect()
}

/// Aggregates raw observations of several cases into Table-2-style timing
/// rows.
pub fn timing_rows(
    per_case: &[(ExperimentCase, Vec<CellObservations>)],
    topologies: &[Topology],
) -> Vec<TimingRow> {
    topologies
        .iter()
        .map(|topo| {
            let mut case_entries = Vec::new();
            for (case, cells) in per_case {
                let per_network: Vec<Summary> = cells
                    .iter()
                    .filter(|c| c.topology == topo.name && !c.time_quotients.is_empty())
                    .map(|c| Summary::of(&c.time_quotients))
                    .collect();
                // Cases with no observations for this topology are omitted
                // from the row instead of showing up as "no change".
                if let Some(agg) = aggregate_summaries(&per_network) {
                    case_entries.push((case.id().to_string(), agg));
                }
            }
            TimingRow {
                topology: topo.name.clone(),
                per_case: case_entries,
            }
        })
        .collect()
}

/// One-line usage text shared by the report binaries; printed alongside the
/// error when [`parse_options`] rejects a flag.
pub const USAGE: &str = "options: [--scale tiny|small|medium] [--reps N] [--nh N] \
     [--threads N] [--batch N] [--full] [--deadline-ms N] \
     [--trace-out PATH|-] [--trace-level off|gate|phase|debug]  \
     (env: TIE_FAULTS=<fault spec> arms fault injection)";

/// Parses the flags shared by the binaries (`--scale`, `--reps`, `--nh`,
/// `--threads`, `--batch`, `--full`, `--deadline-ms`, `--trace-out`,
/// `--trace-level`). Unknown flags are ignored so binaries can add their
/// own; a *malformed* value for a known flag is an `Err` with a one-line
/// explanation — callers print it with [`USAGE`] and exit instead of
/// panicking mid-parse.
///
/// `--trace-out <path>` enables the flight recorder and writes JSONL events
/// to `<path>` (`-` streams human-readable lines to stderr instead).
/// `--trace-level <gate|phase|debug>` controls verbosity; it defaults to
/// `phase` once `--trace-out` is given and is ignored otherwise.
/// `--deadline-ms <n>` bounds each TIMER run by a wall-clock deadline.
/// The `TIE_FAULTS` environment variable arms deterministic fault
/// injection (see the `tie-fault` crate for the grammar).
pub fn parse_options(args: &[String]) -> Result<SweepOptions, String> {
    fn number(args: &[String], i: usize, flag: &str) -> Result<usize, String> {
        args[i + 1]
            .parse()
            .map_err(|_| format!("{flag} needs a number, got {:?}", args[i + 1]))
    }

    let mut opts = SweepOptions::default();
    let mut trace_out: Option<String> = None;
    let mut trace_level: Option<TraceLevel> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                opts.scale = match args[i + 1].as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => {
                        return Err(format!("unknown scale {other:?} (use tiny|small|medium)"))
                    }
                };
                i += 1;
            }
            "--reps" if i + 1 < args.len() => {
                opts.repetitions = number(args, i, "--reps")?;
                i += 1;
            }
            "--nh" if i + 1 < args.len() => {
                opts.num_hierarchies = number(args, i, "--nh")?;
                i += 1;
            }
            "--threads" if i + 1 < args.len() => {
                opts.threads = number(args, i, "--threads")?;
                if opts.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                i += 1;
            }
            "--batch" if i + 1 < args.len() => {
                opts.batch = number(args, i, "--batch")?;
                i += 1;
            }
            "--full" => {
                // The paper's setting: 5 repetitions, NH = 50.
                opts.repetitions = 5;
                opts.num_hierarchies = 50;
                opts.scale = Scale::Medium;
            }
            "--deadline-ms" if i + 1 < args.len() => {
                let ms = number(args, i, "--deadline-ms")?;
                if ms == 0 {
                    return Err("--deadline-ms must be positive".to_string());
                }
                opts.deadline = Some(Duration::from_millis(ms as u64));
                i += 1;
            }
            "--trace-out" if i + 1 < args.len() => {
                trace_out = Some(args[i + 1].clone());
                i += 1;
            }
            "--trace-level" if i + 1 < args.len() => {
                trace_level = Some(TraceLevel::parse(&args[i + 1]).ok_or_else(|| {
                    format!(
                        "--trace-level needs off|gate|phase|debug, got {:?}",
                        args[i + 1]
                    )
                })?);
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(path) = trace_out {
        opts.trace = make_trace_handle(&path, trace_level.unwrap_or(TraceLevel::Phase))?;
    }
    opts.faults = FaultHandle::from_env().map_err(|e| format!("invalid TIE_FAULTS: {e}"))?;
    Ok(opts)
}

/// Builds a [`TraceHandle`] for `--trace-out`: `-` streams human-readable
/// events to stderr, any other value is a JSONL output path. An unwritable
/// path is reported as an `Err` instead of panicking. (Re-exported from the
/// service crate so the daemon and the experiment binaries agree.)
pub use tie_mapd::cli::make_trace_handle;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::quick_networks;

    #[test]
    fn sweep_and_aggregation_smoke() {
        let networks = &quick_networks()[..2];
        let topologies = vec![Topology::grid2d(4, 4), Topology::hypercube(4)];
        let options = SweepOptions {
            scale: Scale::Tiny,
            repetitions: 2,
            num_hierarchies: 3,
            ..Default::default()
        };
        let cells = run_sweep(networks, &topologies, ExperimentCase::C2Identity, &options);
        assert_eq!(cells.len(), networks.len() * topologies.len());
        for cell in &cells {
            assert!(cell.errors.is_empty(), "{:?}", cell.errors);
            assert_eq!(cell.coco_quotients.len(), 2);
            // TIMER's accept criterion is Coco+, so plain Coco may worsen by a
            // small margin in individual runs; on average it improves.
            assert!(cell.coco_quotients.iter().all(|&q| q > 0.0 && q <= 1.1));
        }
        let rows = quality_rows(&cells, &topologies);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.coco.mean <= 1.05, "{}: {}", row.topology, row.coco.mean);
        }
        let timing = timing_rows(&[(ExperimentCase::C2Identity, cells)], &topologies);
        assert_eq!(timing.len(), 2);
        assert_eq!(timing[0].per_case.len(), 1);
    }

    #[test]
    fn parse_options_flags() {
        let args: Vec<String> = [
            "--scale",
            "tiny",
            "--reps",
            "7",
            "--nh",
            "12",
            "--threads",
            "2",
            "--batch",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.scale, Scale::Tiny);
        assert_eq!(o.repetitions, 7);
        assert_eq!(o.num_hierarchies, 12);
        assert_eq!(o.threads, 2);
        assert_eq!(o.batch, 4);
        assert_eq!(o.deadline, None);
        let full = parse_options(&["--full".to_string()]).unwrap();
        assert_eq!(full.repetitions, 5);
        assert_eq!(full.num_hierarchies, 50);
    }

    #[test]
    fn parse_options_rejects_malformed_values() {
        let cases: &[&[&str]] = &[
            &["--threads", "zero"],
            &["--threads", "0"],
            &["--batch", "-3"],
            &["--reps", "many"],
            &["--nh", "1.5"],
            &["--scale", "huge"],
            &["--deadline-ms", "soon"],
            &["--deadline-ms", "0"],
            &["--trace-level", "loud"],
        ];
        for case in cases {
            let args: Vec<String> = case.iter().map(|s| s.to_string()).collect();
            let err = parse_options(&args).unwrap_err();
            assert!(
                err.contains(case[0]) || err.contains(case[1]),
                "error for {case:?} should name the flag or value: {err}"
            );
        }
    }

    #[test]
    fn parse_options_accepts_deadline() {
        let args: Vec<String> = ["--deadline-ms", "250"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn quality_rows_skip_cells_with_no_observations() {
        let topologies = vec![Topology::grid2d(4, 4)];
        let cells = vec![CellObservations {
            network: "n".to_string(),
            topology: topologies[0].name.clone(),
            coco_quotients: Vec::new(),
            cut_quotients: Vec::new(),
            time_quotients: Vec::new(),
            partition_seconds: Vec::new(),
            errors: vec!["rep 0: injected".to_string()],
        }];
        // Every repetition failed: no fabricated "quotient 1.0" rows.
        assert!(quality_rows(&cells, &topologies).is_empty());
        let timing = timing_rows(&[(ExperimentCase::C2Identity, cells)], &topologies);
        assert_eq!(timing.len(), 1);
        assert!(timing[0].per_case.is_empty());
    }
}
