//! High-level drivers shared by the report binaries: run a whole
//! (networks × topologies × repetitions) sweep for one experimental case and
//! aggregate the results exactly the way Section 7.1 describes.

use std::sync::Arc;
use std::time::Duration;

use tie_topology::Topology;
use tie_trace::{JsonlSink, StderrSink, TraceHandle, TraceLevel};

use crate::experiment::{run_case, ExperimentCase, ExperimentConfig};
use crate::report::{QualityRow, TimingRow};
use crate::stats::{aggregate_summaries, Summary};
use crate::workloads::{NetworkSpec, Scale};

/// Options for a sweep (shared by the binaries; parsed from the CLI).
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Scale of the synthetic networks.
    pub scale: Scale,
    /// Number of repetitions per cell (5 in the paper).
    pub repetitions: usize,
    /// TIMER hierarchies per run (50 in the paper).
    pub num_hierarchies: usize,
    /// Partitioner imbalance (3 % in the paper).
    pub epsilon: f64,
    /// Worker threads for TIMER's speculative hierarchy batches.
    pub threads: usize,
    /// Hierarchy rounds speculated per batch (0 = match `threads`).
    pub batch: usize,
    /// Flight-recorder handle (from `--trace-out`/`--trace-level`; disabled
    /// by default).
    pub trace: TraceHandle,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            scale: Scale::Small,
            repetitions: 3,
            num_hierarchies: 10,
            epsilon: 0.03,
            threads: 1,
            batch: 0,
            trace: TraceHandle::off(),
        }
    }
}

/// Per-network, per-topology raw observations of one case.
#[derive(Clone, Debug)]
pub struct CellObservations {
    /// Network name.
    pub network: String,
    /// Topology name.
    pub topology: String,
    /// Coco quotients (enhanced / initial), one per repetition.
    pub coco_quotients: Vec<f64>,
    /// Cut quotients, one per repetition.
    pub cut_quotients: Vec<f64>,
    /// Timer time / baseline time quotients, one per repetition.
    pub time_quotients: Vec<f64>,
    /// Partitioning times in seconds, one per repetition.
    pub partition_seconds: Vec<f64>,
}

/// Runs one case over all (network, topology) pairs and returns raw
/// observations.
pub fn run_sweep(
    networks: &[NetworkSpec],
    topologies: &[Topology],
    case: ExperimentCase,
    options: &SweepOptions,
) -> Vec<CellObservations> {
    let mut cells = Vec::new();
    for spec in networks {
        let ga = spec.build(options.scale);
        for topo in topologies {
            let mut coco_q = Vec::new();
            let mut cut_q = Vec::new();
            let mut time_q = Vec::new();
            let mut part_s = Vec::new();
            for rep in 0..options.repetitions {
                let config = ExperimentConfig {
                    num_hierarchies: options.num_hierarchies,
                    epsilon: options.epsilon,
                    seed: spec.seed.wrapping_mul(31).wrapping_add(rep as u64),
                    threads: options.threads,
                    batch: options.batch,
                    trace: options.trace.clone(),
                };
                let result = run_case(&ga, topo, case, &config);
                coco_q.push(result.coco_quotient());
                cut_q.push(result.cut_quotient());
                // Baseline for the time quotient: the DRB mapping time for c1
                // (the paper divides by SCOTCH's mapping time there), the
                // partitioning time for c2-c4 (divided by KaHIP's time).
                let baseline: Duration = match case {
                    ExperimentCase::C1Drb => result.initial_mapping_time,
                    _ => result.partition_time,
                };
                time_q.push(result.time_quotient(baseline));
                part_s.push(result.partition_time.as_secs_f64());
            }
            cells.push(CellObservations {
                network: spec.name.to_string(),
                topology: topo.name.clone(),
                coco_quotients: coco_q,
                cut_quotients: cut_q,
                time_quotients: time_q,
                partition_seconds: part_s,
            });
        }
    }
    cells
}

/// Aggregates raw observations into Figure-5-style quality rows: per
/// topology, the geometric mean over networks of the min/mean/max quotients.
///
/// Topologies for which the sweep produced no observations yield no row
/// (rather than a fabricated "quotient 1.0" row that would read as "no
/// change" in the reports).
pub fn quality_rows(cells: &[CellObservations], topologies: &[Topology]) -> Vec<QualityRow> {
    topologies
        .iter()
        .filter_map(|topo| {
            let per_network_coco: Vec<Summary> = cells
                .iter()
                .filter(|c| c.topology == topo.name)
                .map(|c| Summary::of(&c.coco_quotients))
                .collect();
            let per_network_cut: Vec<Summary> = cells
                .iter()
                .filter(|c| c.topology == topo.name)
                .map(|c| Summary::of(&c.cut_quotients))
                .collect();
            Some(QualityRow {
                topology: topo.name.clone(),
                coco: aggregate_summaries(&per_network_coco)?,
                cut: aggregate_summaries(&per_network_cut)?,
            })
        })
        .collect()
}

/// Aggregates raw observations of several cases into Table-2-style timing
/// rows.
pub fn timing_rows(
    per_case: &[(ExperimentCase, Vec<CellObservations>)],
    topologies: &[Topology],
) -> Vec<TimingRow> {
    topologies
        .iter()
        .map(|topo| {
            let mut case_entries = Vec::new();
            for (case, cells) in per_case {
                let per_network: Vec<Summary> = cells
                    .iter()
                    .filter(|c| c.topology == topo.name)
                    .map(|c| Summary::of(&c.time_quotients))
                    .collect();
                // Cases with no observations for this topology are omitted
                // from the row instead of showing up as "no change".
                if let Some(agg) = aggregate_summaries(&per_network) {
                    case_entries.push((case.id().to_string(), agg));
                }
            }
            TimingRow {
                topology: topo.name.clone(),
                per_case: case_entries,
            }
        })
        .collect()
}

/// Parses the flags shared by the binaries (`--scale`, `--reps`, `--nh`,
/// `--threads`, `--batch`, `--full`, `--trace-out`, `--trace-level`).
/// Unknown flags are ignored so binaries can add their own.
///
/// `--trace-out <path>` enables the flight recorder and writes JSONL events
/// to `<path>` (`-` streams human-readable lines to stderr instead).
/// `--trace-level <gate|phase|debug>` controls verbosity; it defaults to
/// `phase` once `--trace-out` is given and is ignored otherwise.
pub fn parse_options(args: &[String]) -> SweepOptions {
    let mut opts = SweepOptions::default();
    let mut trace_out: Option<String> = None;
    let mut trace_level: Option<TraceLevel> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                opts.scale = match args[i + 1].as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => panic!("unknown scale {other:?} (use tiny|small|medium)"),
                };
                i += 1;
            }
            "--reps" if i + 1 < args.len() => {
                opts.repetitions = args[i + 1].parse().expect("--reps needs a number");
                i += 1;
            }
            "--nh" if i + 1 < args.len() => {
                opts.num_hierarchies = args[i + 1].parse().expect("--nh needs a number");
                i += 1;
            }
            "--threads" if i + 1 < args.len() => {
                opts.threads = args[i + 1].parse().expect("--threads needs a number");
                i += 1;
            }
            "--batch" if i + 1 < args.len() => {
                opts.batch = args[i + 1].parse().expect("--batch needs a number");
                i += 1;
            }
            "--full" => {
                // The paper's setting: 5 repetitions, NH = 50.
                opts.repetitions = 5;
                opts.num_hierarchies = 50;
                opts.scale = Scale::Medium;
            }
            "--trace-out" if i + 1 < args.len() => {
                trace_out = Some(args[i + 1].clone());
                i += 1;
            }
            "--trace-level" if i + 1 < args.len() => {
                trace_level = Some(
                    TraceLevel::parse(&args[i + 1])
                        .expect("--trace-level needs off|gate|phase|debug"),
                );
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(path) = trace_out {
        opts.trace = make_trace_handle(&path, trace_level.unwrap_or(TraceLevel::Phase));
    }
    opts
}

/// Builds a [`TraceHandle`] for `--trace-out`: `-` streams human-readable
/// events to stderr, any other value is a JSONL output path.
pub fn make_trace_handle(path: &str, level: TraceLevel) -> TraceHandle {
    if path == "-" {
        TraceHandle::new(Arc::new(StderrSink), level)
    } else {
        let sink = JsonlSink::create(path)
            .unwrap_or_else(|e| panic!("cannot open trace output {path:?}: {e}"));
        TraceHandle::new(Arc::new(sink), level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::quick_networks;

    #[test]
    fn sweep_and_aggregation_smoke() {
        let networks = &quick_networks()[..2];
        let topologies = vec![Topology::grid2d(4, 4), Topology::hypercube(4)];
        let options = SweepOptions {
            scale: Scale::Tiny,
            repetitions: 2,
            num_hierarchies: 3,
            epsilon: 0.03,
            threads: 1,
            batch: 0,
            trace: TraceHandle::off(),
        };
        let cells = run_sweep(networks, &topologies, ExperimentCase::C2Identity, &options);
        assert_eq!(cells.len(), networks.len() * topologies.len());
        for cell in &cells {
            assert_eq!(cell.coco_quotients.len(), 2);
            // TIMER's accept criterion is Coco+, so plain Coco may worsen by a
            // small margin in individual runs; on average it improves.
            assert!(cell.coco_quotients.iter().all(|&q| q > 0.0 && q <= 1.1));
        }
        let rows = quality_rows(&cells, &topologies);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.coco.mean <= 1.05, "{}: {}", row.topology, row.coco.mean);
        }
        let timing = timing_rows(&[(ExperimentCase::C2Identity, cells)], &topologies);
        assert_eq!(timing.len(), 2);
        assert_eq!(timing[0].per_case.len(), 1);
    }

    #[test]
    fn parse_options_flags() {
        let args: Vec<String> = [
            "--scale",
            "tiny",
            "--reps",
            "7",
            "--nh",
            "12",
            "--threads",
            "2",
            "--batch",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_options(&args);
        assert_eq!(o.scale, Scale::Tiny);
        assert_eq!(o.repetitions, 7);
        assert_eq!(o.num_hierarchies, 12);
        assert_eq!(o.threads, 2);
        assert_eq!(o.batch, 4);
        let full = parse_options(&["--full".to_string()]);
        assert_eq!(full.repetitions, 5);
        assert_eq!(full.num_hierarchies, 50);
    }
}
