//! Characterization test for the medium-scale acceptance collapse.
//!
//! `BENCH_timer.json` shows that on the medium workload (PGPgiantcompo
//! scaled ×16 ≈ 10k vertices, grid8x8, scrambled block-to-PE bijection)
//! TIMER accepts **zero** of its hierarchy rounds: Coco stays frozen at the
//! initial mapping's value. ROADMAP.md tracks fixing this as the top open
//! item ("Fix the medium-scale acceptance collapse — quality is the
//! product"). This test pins today's behaviour so the fix, when it lands,
//! flips these assertions loudly instead of drifting in silently — at that
//! point invert them (accepted > 0, final_coco < initial_coco) or delete
//! the test.
//!
//! The setup mirrors `bench_timer`'s medium cell exactly (same network,
//! seed, topology, and scramble), with a small NH: the collapse is already
//! total at NH = 4, and a debug-mode full NH = 40 run would be too slow for
//! tier-1.

use tie_bench::workloads::{paper_networks, Scale};
use tie_graph::generators::random_permutation;
use tie_mapping::Mapping;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};

#[test]
fn medium_scale_accepts_no_rounds_and_leaves_coco_frozen() {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "PGPgiantcompo")
        .expect("catalogue network");
    let ga = spec.build(Scale::Medium);
    let topo = Topology::grid2d(8, 8);
    let pcube = recognize_partial_cube(&topo.graph).expect("grids are partial cubes");
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 1));
    let scramble = random_permutation(topo.num_pes(), 1);
    let mapping = Mapping::from_partition(&part, &scramble, topo.num_pes());

    let nh = 4;
    let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(nh, 1)).unwrap();

    // The committed BENCH_timer.json artifact records this exact value for
    // the medium cell; the partition, scramble and labeling are all
    // deterministic in the seed.
    assert_eq!(
        result.initial_coco, 71581,
        "medium-cell setup drifted — regenerate BENCH_timer.json and update this pin"
    );
    // The anomaly itself: every round is rejected and the mapping never
    // moves. A fixed TIMER would make `hierarchies_accepted > 0` and
    // `final_coco < initial_coco` here.
    assert_eq!(
        result.hierarchies_accepted, 0,
        "medium-scale collapse no longer reproduces — the ROADMAP item may be fixed; \
         update this characterization test"
    );
    assert_eq!(
        result.final_coco, result.initial_coco,
        "Coco should be frozen"
    );
    // The gate telemetry tells the same story: NH offers, NH rejections.
    assert_eq!(result.telemetry.rounds(), nh);
    assert_eq!(result.telemetry.rejected, nh);
    assert_eq!(result.telemetry.accepted, 0);
    assert_eq!(result.telemetry.ties, 0);
}
