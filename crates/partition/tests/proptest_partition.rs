//! Property-based and integration tests for the multilevel partitioner.

use proptest::prelude::*;
use tie_graph::generators;
use tie_partition::{partition, PartitionConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every vertex gets a block id below k, every block is used (when n >= k)
    /// and the balance constraint holds for connected synthetic networks.
    #[test]
    fn partition_invariants_on_ba_graphs(
        n in 200..600usize,
        attach in 2..4usize,
        k_exp in 1..5u32,
        seed in 0..50u64,
    ) {
        let g = generators::barabasi_albert(n, attach, seed);
        let k = 1usize << k_exp;
        let cfg = PartitionConfig::new(k, seed);
        let p = partition(&g, &cfg);
        prop_assert_eq!(p.assignment().len(), n);
        prop_assert!(p.assignment().iter().all(|&b| (b as usize) < k));
        prop_assert_eq!(p.num_nonempty_blocks(), k);
        // Allow a small slack over epsilon: recursive bisection guarantees are
        // heuristic, but gross violations indicate a bug.
        prop_assert!(p.is_balanced(&g, cfg.epsilon + 0.05),
            "imbalance {} too large for k={}", p.imbalance(&g), k);
        // The cut never exceeds the total edge weight.
        prop_assert!(p.edge_cut(&g) <= g.total_edge_weight());
    }

    /// Determinism: same seed, same partition.
    #[test]
    fn partition_deterministic(seed in 0..30u64) {
        let g = generators::watts_strogatz(300, 6, 0.05, seed);
        let cfg = PartitionConfig::new(8, seed);
        let a = partition(&g, &cfg);
        let b = partition(&g, &cfg);
        prop_assert_eq!(a.assignment(), b.assignment());
    }

    /// Grid partitions have locality: the cut of a k-way partition of an
    /// r x r grid stays well below the trivial upper bound of all edges.
    #[test]
    fn grid_partition_cut_reasonable(r in 8..14usize, k_exp in 2..5u32) {
        let g = generators::grid2d(r, r);
        let k = 1usize << k_exp;
        let cfg = PartitionConfig::new(k, 17);
        let p = partition(&g, &cfg);
        let cut = p.edge_cut(&g);
        // Perfectly square blocks would cut about r * (sqrt(k)-1) * 2 edges;
        // allow generous headroom (factor ~4) for the heuristic.
        let generous = (4.0 * 2.0 * r as f64 * ((k as f64).sqrt())) as u64 + 16;
        prop_assert!(cut <= generous, "cut {} above generous bound {}", cut, generous);
    }
}

#[test]
fn partition_256_blocks_like_paper_setting() {
    // The paper partitions complex networks into 256 and 512 blocks with
    // eps = 3 %. Use a scaled-down network but the same k = 256.
    let g = generators::barabasi_albert(4096, 4, 99);
    let cfg = PartitionConfig::new(256, 1);
    let p = partition(&g, &cfg);
    assert_eq!(p.num_nonempty_blocks(), 256);
    assert!(
        p.is_balanced(&g, cfg.epsilon + 0.08),
        "imbalance = {}",
        p.imbalance(&g)
    );
}

#[test]
fn partition_of_disconnected_graph() {
    // Two disjoint cliques; bisection should separate them with zero cut.
    let mut b = tie_graph::GraphBuilder::new(20);
    for a in 0..10u32 {
        for c in (a + 1)..10 {
            b.add_edge(a, c, 1);
            b.add_edge(a + 10, c + 10, 1);
        }
    }
    let g = b.build();
    let p = partition(&g, &PartitionConfig::new(2, 5));
    assert_eq!(p.edge_cut(&g), 0);
    assert_eq!(p.block_sizes(), vec![10, 10]);
}
