//! Integration test comparing the two partitioners of the crate (multilevel
//! recursive bisection vs size-constrained label propagation) on the kind of
//! instances the TIMER experiments use.

use tie_graph::generators;
use tie_partition::{
    label_propagation_partition, partition, LabelPropagationConfig, PartitionConfig,
};

#[test]
fn both_partitioners_satisfy_paper_balance_on_complex_networks() {
    for seed in [1u64, 2, 3] {
        let g = generators::barabasi_albert(1200, 4, seed);
        let ml = partition(&g, &PartitionConfig::new(64, seed));
        let lp = label_propagation_partition(&g, &LabelPropagationConfig::new(64, seed));
        for (name, p) in [("multilevel", &ml), ("label propagation", &lp)] {
            assert!(
                p.is_balanced(&g, 0.03 + 1e-9),
                "{name} violates the 3% bound (imbalance {})",
                p.imbalance(&g)
            );
            assert_eq!(p.k(), 64, "{name}");
            assert!(
                p.num_nonempty_blocks() >= 60,
                "{name} leaves too many blocks empty"
            );
        }
    }
}

#[test]
fn multilevel_cut_is_competitive_with_sclp_on_meshes() {
    // On meshes (strong geometric locality) the multilevel pipeline should
    // produce clearly better cuts than plain label propagation.
    let g = generators::grid2d(24, 24);
    let ml = partition(&g, &PartitionConfig::new(16, 7));
    let lp = label_propagation_partition(&g, &LabelPropagationConfig::new(16, 7));
    assert!(
        ml.edge_cut(&g) <= lp.edge_cut(&g),
        "multilevel ({}) should not cut more than label propagation ({})",
        ml.edge_cut(&g),
        lp.edge_cut(&g)
    );
}

#[test]
fn partitioners_handle_the_papers_k_values() {
    let g = generators::rmat(11, 8, (0.57, 0.19, 0.19, 0.05), 5);
    let (lcc, _) = tie_graph::traversal::largest_connected_component(&g);
    for k in [256usize, 512] {
        let p = partition(&lcc, &PartitionConfig::new(k, 1));
        assert_eq!(p.k(), k);
        assert!(
            p.is_balanced(&lcc, 0.03 + 0.05),
            "k={k}: imbalance {} too high",
            p.imbalance(&lcc)
        );
    }
}
