//! Multilevel bisection: coarsen, initially bisect, project back and refine.

use tie_graph::{Graph, Weight};

use crate::coarsen::coarsen_until;
use crate::fm::refine_bisection;
use crate::initial::{greedy_graph_growing, Bisection};
use crate::PartitionConfig;

/// Bisects `graph` into two sides with target weights `target0` and
/// `total - target0` using the full multilevel pipeline.
pub fn multilevel_bisection(
    graph: &Graph,
    target0: Weight,
    config: &PartitionConfig,
    seed: u64,
) -> Bisection {
    let total = graph.total_vertex_weight();
    let target1 = total.saturating_sub(target0);
    if graph.num_vertices() <= config.coarsen_until {
        let mut b = greedy_graph_growing(
            graph,
            target0,
            config.epsilon,
            config.initial_attempts,
            seed,
        );
        refine_bisection(
            graph,
            &mut b,
            target0,
            target1,
            config.epsilon,
            config.fm_passes,
        );
        return b;
    }

    let hierarchy = coarsen_until(graph, config.coarsen_until, seed);
    let coarsest = hierarchy.coarsest(graph).clone();
    let mut coarse = greedy_graph_growing(
        &coarsest,
        target0,
        config.epsilon,
        config.initial_attempts,
        seed.wrapping_add(1),
    );
    refine_bisection(
        &coarsest,
        &mut coarse,
        target0,
        target1,
        config.epsilon,
        config.fm_passes,
    );

    // Uncoarsen level by level, refining after each projection.
    let mut side_on_level: Vec<u8> = coarse.side;
    for (idx, _) in hierarchy.levels.iter().enumerate().rev() {
        let fine_graph: &Graph = if idx == 0 {
            graph
        } else {
            &hierarchy.levels[idx - 1].graph
        };
        let level = &hierarchy.levels[idx];
        let mut fine_side = vec![0u8; level.fine_to_coarse.len()];
        for (v, &c) in level.fine_to_coarse.iter().enumerate() {
            fine_side[v] = side_on_level[c as usize];
        }
        let mut bis = Bisection::from_sides(fine_graph, fine_side);
        refine_bisection(
            fine_graph,
            &mut bis,
            target0,
            target1,
            config.epsilon,
            config.fm_passes,
        );
        side_on_level = bis.side;
    }
    Bisection::from_sides(graph, side_on_level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;

    #[test]
    fn multilevel_bisection_of_grid_is_good() {
        let g = generators::grid2d(16, 16);
        let cfg = PartitionConfig::new(2, 3);
        let b = multilevel_bisection(&g, 128, &cfg, 3);
        assert_eq!(b.weight0 + b.weight1, 256);
        assert!(
            b.is_feasible(128, 128, cfg.epsilon),
            "w0={} w1={}",
            b.weight0,
            b.weight1
        );
        // The optimal bisection of a 16x16 grid cuts 16 edges; the multilevel
        // heuristic should come close.
        assert!(b.cut <= 28, "cut = {}", b.cut);
    }

    #[test]
    fn multilevel_bisection_of_complex_network() {
        let g = generators::barabasi_albert(1000, 4, 9);
        let cfg = PartitionConfig::new(2, 5);
        let total = g.total_vertex_weight();
        let b = multilevel_bisection(&g, total / 2, &cfg, 5);
        assert!(b.is_feasible(total / 2, total - total / 2, cfg.epsilon));
        assert!(
            b.cut < g.total_edge_weight(),
            "refinement should cut fewer than all edges"
        );
    }

    #[test]
    fn small_graph_skips_coarsening() {
        let g = generators::cycle_graph(12);
        let cfg = PartitionConfig::new(2, 1);
        let b = multilevel_bisection(&g, 6, &cfg, 1);
        assert_eq!(b.weight0, 6);
        assert_eq!(b.cut, 2, "optimal bisection of an even cycle cuts 2 edges");
    }

    #[test]
    fn unbalanced_targets_respected() {
        let g = generators::grid2d(10, 10);
        let cfg = PartitionConfig::new(2, 2).with_epsilon(0.05);
        let b = multilevel_bisection(&g, 25, &cfg, 7);
        assert!(
            b.weight0 as f64 <= 25.0 * 1.05 + 1.0,
            "weight0 = {}",
            b.weight0
        );
        assert!(b.weight0 >= 20, "weight0 = {}", b.weight0);
    }
}
