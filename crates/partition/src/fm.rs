//! Boundary Fiduccia–Mattheyses (FM) refinement for bisections.
//!
//! Classic FM with gain buckets: in each pass, boundary vertices are inserted
//! into a [`tie_graph::bucket_queue::BucketQueue`]; repeatedly the
//! highest-gain vertex whose move keeps the bisection within the balance
//! bound is moved (and locked), neighbour gains are updated, and at the end
//! of the pass the best prefix of moves is kept. Passes repeat until no
//! improvement is found or the pass limit is reached.

use tie_graph::bucket_queue::BucketQueue;
use tie_graph::{Gain, Graph, NodeId, Weight};

use crate::initial::Bisection;

/// Balance bound for one side: the largest integer weight not exceeding
/// `(1 + eps) * target` (and at least `target`, so a perfectly balanced side
/// is always feasible). Using `floor` keeps this consistent with
/// [`crate::Partition::is_balanced`].
fn max_weight(target: Weight, eps: f64) -> Weight {
    ((((target as f64) * (1.0 + eps)).floor() as Weight).max(target)).max(1)
}

/// Gain of moving `v` to the other side: external minus internal connectivity.
fn move_gain(graph: &Graph, side: &[u8], v: NodeId) -> Gain {
    let sv = side[v as usize];
    let mut gain: Gain = 0;
    for (u, w) in graph.edges_of(v) {
        if side[u as usize] == sv {
            gain -= w as Gain;
        } else {
            gain += w as Gain;
        }
    }
    gain
}

/// True if `v` has at least one neighbour on the other side.
fn is_boundary(graph: &Graph, side: &[u8], v: NodeId) -> bool {
    let sv = side[v as usize];
    graph.neighbors(v).iter().any(|&u| side[u as usize] != sv)
}

/// Runs up to `max_passes` FM passes on `bisection`, refining it in place.
/// `target0`/`target1` are the desired side weights and `eps` the allowed
/// relative overshoot. Returns the total cut improvement.
pub fn refine_bisection(
    graph: &Graph,
    bisection: &mut Bisection,
    target0: Weight,
    target1: Weight,
    eps: f64,
    max_passes: usize,
) -> Weight {
    let n = graph.num_vertices();
    if n == 0 {
        return 0;
    }
    let max0 = max_weight(target0, eps);
    let max1 = max_weight(target1, eps);
    let max_gain = graph
        .vertices()
        .map(|v| graph.weighted_degree(v))
        .max()
        .unwrap_or(1) as Gain;
    let initial_cut = bisection.cut;

    for _ in 0..max_passes {
        let mut queue = BucketQueue::new(n, max_gain);
        let mut locked = vec![false; n];
        for v in graph.vertices() {
            if is_boundary(graph, &bisection.side, v) {
                queue.insert(v, move_gain(graph, &bisection.side, v));
            }
        }

        // Move log for rollback: (vertex, cut_after, weight0_after).
        let mut moves: Vec<NodeId> = Vec::new();
        let mut cut_after: Vec<Weight> = Vec::new();
        let mut best_cut = bisection.cut;
        let mut best_prefix = 0usize;
        let mut cur_cut = bisection.cut;
        let (mut w0, mut w1) = (bisection.weight0, bisection.weight1);
        let mut best_w = (w0, w1);

        while let Some((v, gain)) = queue.pop_max() {
            if locked[v as usize] {
                continue;
            }
            let vw = graph.vertex_weight(v);
            let from0 = bisection.side[v as usize] == 0;
            // Feasibility of the move w.r.t. the balance bound.
            let feasible = if from0 {
                w1 + vw <= max1
            } else {
                w0 + vw <= max0
            };
            if !feasible {
                continue; // dropped; it may re-enter in a later pass
            }
            // Apply the move. The bucket gain may be stale due to clamping,
            // so recompute the exact gain for the cut bookkeeping.
            let exact_gain = move_gain(graph, &bisection.side, v);
            let _ = gain;
            bisection.side[v as usize] ^= 1;
            locked[v as usize] = true;
            if from0 {
                w0 -= vw;
                w1 += vw;
            } else {
                w1 -= vw;
                w0 += vw;
            }
            cur_cut = (cur_cut as i64 - exact_gain) as Weight;
            moves.push(v);
            cut_after.push(cur_cut);
            if cur_cut < best_cut {
                best_cut = cur_cut;
                best_prefix = moves.len();
                best_w = (w0, w1);
            }
            // Update neighbour gains.
            for &u in graph.neighbors(v) {
                if locked[u as usize] {
                    continue;
                }
                let g = move_gain(graph, &bisection.side, u);
                if queue.contains(u) {
                    queue.update_gain(u, g);
                } else if is_boundary(graph, &bisection.side, u) {
                    queue.insert(u, g);
                }
            }
        }

        // Roll back every move after the best prefix.
        for &v in moves.iter().skip(best_prefix).rev() {
            bisection.side[v as usize] ^= 1;
        }
        if best_prefix == 0 {
            // No improvement this pass; stop.
            break;
        }
        bisection.cut = best_cut;
        bisection.weight0 = best_w.0;
        bisection.weight1 = best_w.1;
    }
    // Defensive recomputation keeps the struct internally consistent even if
    // incremental bookkeeping ever drifts.
    let fresh = Bisection::from_sides(graph, bisection.side.clone());
    debug_assert_eq!(
        fresh.cut, bisection.cut,
        "incremental cut bookkeeping diverged"
    );
    *bisection = fresh;
    initial_cut - bisection.cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::greedy_graph_growing;
    use tie_graph::generators;

    #[test]
    fn refinement_never_worsens_cut() {
        let g = generators::barabasi_albert(300, 3, 1);
        let total = g.total_vertex_weight();
        let t0 = total / 2;
        let t1 = total - t0;
        let mut b = greedy_graph_growing(&g, t0, 0.03, 4, 2);
        let before = b.cut;
        let improvement = refine_bisection(&g, &mut b, t0, t1, 0.03, 8);
        assert!(b.cut <= before);
        assert_eq!(before - b.cut, improvement);
    }

    #[test]
    fn refinement_respects_balance() {
        let g = generators::grid2d(10, 10);
        let total = g.total_vertex_weight();
        let (t0, t1) = (total / 2, total - total / 2);
        let mut b = greedy_graph_growing(&g, t0, 0.03, 4, 5);
        refine_bisection(&g, &mut b, t0, t1, 0.03, 8);
        assert!(b.weight0 <= max_weight(t0, 0.03));
        assert!(b.weight1 <= max_weight(t1, 0.03));
    }

    #[test]
    fn fm_strongly_improves_interleaved_cliques() {
        // Two 10-cliques joined by a single edge: optimal cut is 1. Start from
        // a deliberately bad, interleaved split; FM must improve the cut by a
        // large margin while staying balanced (a 10 % slack lets single-vertex
        // moves breathe).
        let mut builder = tie_graph::GraphBuilder::new(20);
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                builder.add_edge(a, b, 1);
                builder.add_edge(a + 10, b + 10, 1);
            }
        }
        builder.add_edge(0, 10, 1);
        let g = builder.build();
        let side: Vec<u8> = (0..20).map(|v| (v % 2) as u8).collect();
        let mut b = Bisection::from_sides(&g, side);
        let before = b.cut;
        assert!(before > 40);
        refine_bisection(&g, &mut b, 10, 10, 0.1, 20);
        assert!(
            b.cut <= before / 2,
            "cut {} should be far below {}",
            b.cut,
            before
        );
        assert!(b.weight0 >= 9 && b.weight0 <= 11);
    }

    #[test]
    fn fm_cannot_empty_a_side() {
        // A path of 3 vertices with target weights 1 and 2: FM must not move
        // the single side-0 vertex away (that would leave side 0 empty and
        // overload side 1 beyond its floor-based bound).
        let g = generators::path_graph(3);
        let mut b = Bisection::from_sides(&g, vec![0, 1, 1]);
        refine_bisection(&g, &mut b, 1, 2, 0.03, 5);
        assert!(b.weight0 >= 1, "side 0 must not be emptied");
        assert!(b.weight1 >= 1);
    }

    #[test]
    fn gain_computation_matches_definition() {
        let g = generators::path_graph(4);
        let side = vec![0u8, 0, 1, 1];
        // Vertex 1: neighbour 0 same side (-1), neighbour 2 other side (+1) -> 0.
        assert_eq!(move_gain(&g, &side, 1), 0);
        // Vertex 0: neighbour 1 same side -> -1.
        assert_eq!(move_gain(&g, &side, 0), -1);
        assert!(is_boundary(&g, &side, 1));
        assert!(!is_boundary(&g, &side, 0));
    }

    #[test]
    fn refinement_on_empty_graph_is_noop() {
        let g = Graph::from_edges(0, &[]);
        let mut b = Bisection::from_sides(&g, vec![]);
        assert_eq!(refine_bisection(&g, &mut b, 0, 0, 0.03, 3), 0);
    }
}
