//! # tie-partition
//!
//! A multilevel graph partitioner, standing in for KaHIP in the TIMER
//! reproduction ("Topology-induced Enhancement of Mappings", ICPP 2018).
//!
//! The paper obtains the initial, topology-oblivious partitions of the
//! application graph from KaHIP (and, for case c1, from SCOTCH's mapping
//! routine). Neither tool is linkable here, so this crate implements the same
//! classical multilevel recipe natively:
//!
//! 1. **Coarsening** — repeated heavy-edge matching and contraction
//!    ([`matching`], [`coarsen`]) until the graph is small,
//! 2. **Initial partitioning** — greedy graph growing from multiple random
//!    seeds ([`initial`]),
//! 3. **Uncoarsening + refinement** — projection of the coarse bisection back
//!    through the hierarchy with boundary Fiduccia–Mattheyses refinement at
//!    every level ([`fm`]),
//! 4. **k-way** — recursive bisection with proportional target weights
//!    ([`recursive`]), plus a final greedy k-way boundary pass
//!    ([`kway_refine`]).
//!
//! The entry point is [`partition`] with a [`PartitionConfig`]; the result is
//! a [`Partition`] (block assignment plus quality accessors).
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod coarsen;
pub mod fm;
pub mod initial;
pub mod kway_refine;
pub mod label_propagation;
pub mod matching;
pub mod multilevel;
pub mod partition;
pub mod recursive;

pub use label_propagation::{label_propagation_partition, LabelPropagationConfig};
pub use partition::Partition;

use tie_graph::Graph;

/// Configuration for the multilevel partitioner.
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Number of blocks `k`.
    pub k: usize,
    /// Allowed imbalance ε: every block weight may be at most
    /// `(1 + ε) * ceil(total_weight / k)` (Eq. (1) of the paper).
    pub epsilon: f64,
    /// Seed for all randomized components (matching order, initial seeds).
    pub seed: u64,
    /// Coarsening stops once the graph has at most this many vertices
    /// (per bisection call).
    pub coarsen_until: usize,
    /// Number of random attempts for the initial bisection of the coarsest
    /// graph; the best one is kept.
    pub initial_attempts: usize,
    /// Maximum number of FM passes per level.
    pub fm_passes: usize,
    /// Whether to run the final greedy k-way refinement pass.
    pub kway_refinement: bool,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            k: 2,
            epsilon: 0.03,
            seed: 0,
            coarsen_until: 60,
            initial_attempts: 8,
            fm_passes: 6,
            kway_refinement: true,
        }
    }
}

impl PartitionConfig {
    /// Convenience constructor: `k` blocks, 3 % imbalance (the paper's
    /// setting), given seed.
    pub fn new(k: usize, seed: u64) -> Self {
        PartitionConfig {
            k,
            seed,
            ..Default::default()
        }
    }

    /// Sets the allowed imbalance.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }
}

/// Partitions `graph` into `config.k` blocks, aiming to minimize the edge cut
/// subject to the balance constraint. This is the KaHIP stand-in used to
/// produce the initial partitions for experimental cases c2–c4.
pub fn partition(graph: &Graph, config: &PartitionConfig) -> Partition {
    recursive::recursive_bisection(graph, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;

    #[test]
    fn default_config_is_papers_setting() {
        let c = PartitionConfig::default();
        assert!((c.epsilon - 0.03).abs() < 1e-12);
    }

    #[test]
    fn partition_smoke_k4() {
        let g = generators::grid2d(8, 8);
        let p = partition(&g, &PartitionConfig::new(4, 7));
        assert_eq!(p.k(), 4);
        assert_eq!(p.assignment().len(), 64);
        assert!(
            p.is_balanced(&g, 0.03 + 1e-9),
            "imbalance {}",
            p.imbalance(&g)
        );
        // A sane 4-way cut of an 8x8 grid is well below the total edge count.
        assert!(p.edge_cut(&g) <= 40, "cut {}", p.edge_cut(&g));
    }
}
