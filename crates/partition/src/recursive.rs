//! Recursive bisection: k-way partitioning by recursively splitting the graph
//! (and the block-id range) in two, with proportional target weights.

use tie_graph::{induced_subgraph, Graph, NodeId};

use crate::multilevel::multilevel_bisection;
use crate::partition::Partition;
use crate::PartitionConfig;

/// Partitions `graph` into `config.k` blocks by recursive multilevel
/// bisection followed (optionally) by a greedy k-way refinement pass.
///
/// # Panics
/// Panics if `config.k` is zero.
pub fn recursive_bisection(graph: &Graph, config: &PartitionConfig) -> Partition {
    assert!(config.k >= 1, "k must be positive");
    let n = graph.num_vertices();
    let mut assignment = vec![0u32; n];
    if config.k > 1 && n > 0 {
        let vertices: Vec<NodeId> = graph.vertices().collect();
        split_recursive(
            graph,
            &vertices,
            0,
            config.k,
            config,
            config.seed,
            &mut assignment,
        );
    }
    let mut partition = Partition::new(assignment, config.k);
    if config.k > 1 {
        // Recursive bisection is heuristic; make the balance constraint
        // (Eq. (1)) hold explicitly, then improve the cut locally without
        // violating it again.
        crate::kway_refine::rebalance(graph, &mut partition, config.epsilon);
        if config.kway_refinement {
            crate::kway_refine::greedy_kway_refine(graph, &mut partition, config.epsilon, 3);
        }
    }
    partition
}

/// Recursively splits `vertices` (a subset of `graph`) into blocks
/// `first_block .. first_block + num_blocks`.
fn split_recursive(
    graph: &Graph,
    vertices: &[NodeId],
    first_block: u32,
    num_blocks: usize,
    config: &PartitionConfig,
    seed: u64,
    assignment: &mut [u32],
) {
    if num_blocks <= 1 || vertices.is_empty() {
        for &v in vertices {
            assignment[v as usize] = first_block;
        }
        return;
    }
    let sub = induced_subgraph(graph, vertices);
    let total = sub.graph.total_vertex_weight();
    // Split block counts as evenly as possible; target weights proportional.
    let k0 = num_blocks / 2;
    let k1 = num_blocks - k0;
    let target0 = (total as u128 * k0 as u128 / num_blocks as u128) as u64;

    // Tighten epsilon on inner levels so that the accumulated imbalance over
    // log2(k) levels still respects the outer bound (standard recursive
    // bisection trick).
    let levels_remaining = (num_blocks as f64).log2().ceil().max(1.0);
    let inner_eps = (1.0 + config.epsilon).powf(1.0 / levels_remaining) - 1.0;

    let inner_cfg = PartitionConfig {
        epsilon: inner_eps,
        ..config.clone()
    };
    let bisection = multilevel_bisection(&sub.graph, target0, &inner_cfg, seed);

    let mut part0: Vec<NodeId> = Vec::new();
    let mut part1: Vec<NodeId> = Vec::new();
    for (local, &orig) in sub.to_parent.iter().enumerate() {
        if bisection.side[local] == 0 {
            part0.push(orig);
        } else {
            part1.push(orig);
        }
    }
    split_recursive(
        graph,
        &part0,
        first_block,
        k0,
        config,
        seed.wrapping_add(1),
        assignment,
    );
    split_recursive(
        graph,
        &part1,
        first_block + k0 as u32,
        k1,
        config,
        seed.wrapping_add(2),
        assignment,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;

    #[test]
    fn kway_partition_of_grid() {
        let g = generators::grid2d(16, 16);
        let cfg = PartitionConfig::new(16, 1);
        let p = recursive_bisection(&g, &cfg);
        assert_eq!(p.k(), 16);
        assert_eq!(p.num_nonempty_blocks(), 16);
        assert!(
            p.is_balanced(&g, cfg.epsilon + 1e-9),
            "imbalance = {}",
            p.imbalance(&g)
        );
        // 16 blocks of a 16x16 grid: a sensible cut is far below total edges.
        assert!(p.edge_cut(&g) < 180, "cut = {}", p.edge_cut(&g));
    }

    #[test]
    fn kway_partition_of_complex_network() {
        let g = generators::barabasi_albert(2000, 3, 13);
        let cfg = PartitionConfig::new(32, 4);
        let p = recursive_bisection(&g, &cfg);
        assert_eq!(p.num_nonempty_blocks(), 32);
        assert!(
            p.is_balanced(&g, cfg.epsilon + 0.02),
            "imbalance = {}",
            p.imbalance(&g)
        );
        assert!(p.edge_cut(&g) < g.total_edge_weight());
    }

    #[test]
    fn non_power_of_two_k() {
        let g = generators::grid2d(9, 7);
        let cfg = PartitionConfig::new(5, 2);
        let p = recursive_bisection(&g, &cfg);
        assert_eq!(p.k(), 5);
        assert_eq!(p.num_nonempty_blocks(), 5);
        assert!(
            p.is_balanced(&g, cfg.epsilon + 0.05),
            "imbalance = {}",
            p.imbalance(&g)
        );
    }

    #[test]
    fn k_equal_one_puts_everything_in_block_zero() {
        let g = generators::cycle_graph(10);
        let p = recursive_bisection(&g, &PartitionConfig::new(1, 0));
        assert!(p.assignment().iter().all(|&b| b == 0));
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::watts_strogatz(300, 6, 0.1, 2);
        let a = recursive_bisection(&g, &PartitionConfig::new(8, 42));
        let b = recursive_bisection(&g, &PartitionConfig::new(8, 42));
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn k_larger_than_n_yields_singletons() {
        let g = generators::path_graph(3);
        let p = recursive_bisection(&g, &PartitionConfig::new(8, 0));
        // Every vertex alone; only 3 non-empty blocks.
        assert_eq!(p.num_nonempty_blocks(), 3);
    }
}
