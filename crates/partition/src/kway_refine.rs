//! Greedy k-way boundary refinement.
//!
//! After recursive bisection, block boundaries can often still be improved by
//! moving individual boundary vertices to the adjacent block they are most
//! strongly connected to, as long as the balance constraint stays satisfied.
//! This pass is a light-weight version of KaHIP's k-way local search and runs
//! a fixed number of sweeps over the boundary.

use tie_graph::{Gain, Graph, NodeId, Weight};

use crate::partition::Partition;

/// Largest admissible block weight: `floor((1 + eps) * ideal)`, but at least
/// `ideal` so that perfect balance is always admissible. Consistent with
/// [`Partition::is_balanced`].
pub fn block_bound(ideal: Weight, eps: f64) -> Weight {
    ((((ideal as f64) * (1.0 + eps)).floor() as Weight).max(ideal)).max(1)
}

/// Moves vertices out of overweight blocks until every block respects the
/// balance bound (Eq. (1) of the paper) or no further move is possible.
///
/// Vertices are chosen to lose as little cut weight as possible: among the
/// vertices of the heaviest overweight block, the one with the smallest
/// difference between internal connectivity and connectivity to the chosen
/// target block is moved; the target is the lightest block (preferring blocks
/// the vertex is connected to). With unit vertex weights — the situation for
/// all initial partitions in this reproduction — this always succeeds.
pub fn rebalance(graph: &Graph, partition: &mut Partition, eps: f64) -> usize {
    let k = partition.k();
    if k <= 1 || graph.num_vertices() == 0 {
        return 0;
    }
    let total = graph.total_vertex_weight();
    let ideal = total.div_ceil(k as Weight);
    let max_block = block_bound(ideal, eps);
    let mut block_weights = partition.block_weights(graph);
    let mut moves = 0usize;
    let guard_limit = graph.num_vertices() * 2;

    while moves < guard_limit {
        // Heaviest overweight block.
        let Some((from, _)) = block_weights
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > max_block)
            .max_by_key(|&(_, &w)| w)
        else {
            break;
        };
        let from = from as u32;
        // Candidate vertex with minimal cut damage.
        let mut best: Option<(NodeId, u32, Gain)> = None; // (vertex, target block, damage)
        for v in graph.vertices() {
            if partition.block_of(v) != from {
                continue;
            }
            let vw = graph.vertex_weight(v);
            let mut internal: Weight = 0;
            let mut conn: Vec<(u32, Weight)> = Vec::new();
            for (u, w) in graph.edges_of(v) {
                let b = partition.block_of(u);
                if b == from {
                    internal += w;
                } else {
                    match conn.iter_mut().find(|(bb, _)| *bb == b) {
                        Some((_, cw)) => *cw += w,
                        None => conn.push((b, w)),
                    }
                }
            }
            // Prefer an adjacent block that still has room; otherwise the
            // globally lightest block with room.
            let adjacent_target = conn
                .iter()
                .filter(|&&(b, _)| block_weights[b as usize] + vw <= max_block)
                .max_by_key(|&&(_, w)| w)
                .map(|&(b, w)| (b, w));
            let fallback_target = (0..k as u32)
                .filter(|&b| b != from && block_weights[b as usize] + vw <= max_block)
                .min_by_key(|&b| block_weights[b as usize])
                .map(|b| (b, 0 as Weight));
            let Some((target, gain_to_target)) = adjacent_target.or(fallback_target) else {
                continue;
            };
            let damage = internal as Gain - gain_to_target as Gain;
            if best.map(|(_, _, d)| damage < d).unwrap_or(true) {
                best = Some((v, target, damage));
            }
        }
        let Some((v, target, _)) = best else {
            break; // nothing movable; give up
        };
        let vw = graph.vertex_weight(v);
        partition.assignment_mut()[v as usize] = target;
        block_weights[from as usize] -= vw;
        block_weights[target as usize] += vw;
        moves += 1;
    }
    moves
}

/// Runs `max_sweeps` greedy sweeps; returns the total cut improvement.
pub fn greedy_kway_refine(
    graph: &Graph,
    partition: &mut Partition,
    eps: f64,
    max_sweeps: usize,
) -> Weight {
    let k = partition.k();
    if k <= 1 || graph.num_vertices() == 0 {
        return 0;
    }
    let total = graph.total_vertex_weight();
    let ideal = total.div_ceil(k as Weight);
    let max_block = block_bound(ideal, eps);

    let mut block_weights = partition.block_weights(graph);
    let cut_before = partition.edge_cut(graph);
    let mut improved_total: Gain = 0;

    for _ in 0..max_sweeps {
        let mut moved_any = false;
        for v in graph.vertices() {
            let from = partition.block_of(v);
            // Connectivity of v to each adjacent block.
            let mut conn: Vec<(u32, Weight)> = Vec::new();
            let mut internal: Weight = 0;
            for (u, w) in graph.edges_of(v) {
                let b = partition.block_of(u);
                if b == from {
                    internal += w;
                } else {
                    match conn.iter_mut().find(|(bb, _)| *bb == b) {
                        Some((_, cw)) => *cw += w,
                        None => conn.push((b, w)),
                    }
                }
            }
            // Best target block by gain = external(b) - internal; vertices
            // with no external connectivity are not boundary vertices.
            let Some((best_block, best_conn)) = conn.into_iter().max_by_key(|&(_, w)| w) else {
                continue;
            };
            let gain = best_conn as Gain - internal as Gain;
            if gain <= 0 {
                continue;
            }
            let vw = graph.vertex_weight(v);
            if block_weights[best_block as usize] + vw > max_block {
                continue;
            }
            // Apply the move.
            partition.assignment_mut()[v as usize] = best_block;
            block_weights[from as usize] -= vw;
            block_weights[best_block as usize] += vw;
            improved_total += gain;
            moved_any = true;
        }
        if !moved_any {
            break;
        }
    }
    debug_assert_eq!(
        partition.edge_cut(graph) as i64,
        cut_before as i64 - improved_total,
        "k-way refinement bookkeeping diverged"
    );
    improved_total.max(0) as Weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionConfig;
    use tie_graph::generators;

    #[test]
    fn refinement_improves_perturbed_partition() {
        // Take a good 4-way partition of a grid and swap a handful of vertex
        // pairs across blocks (balance preserved, cut worsened). Greedy
        // refinement must win back part of the damage without breaking the
        // balance constraint.
        let g = generators::grid2d(8, 8);
        let cfg = PartitionConfig::new(4, 3);
        let good = crate::partition(&g, &cfg);
        let mut assignment = good.assignment().to_vec();
        let baseline = good.edge_cut(&g);
        // Swap vertices 0..6 with vertices 58..64 (they live in different
        // blocks of any sane grid partition).
        for i in 0..6usize {
            assignment.swap(i, 63 - i);
        }
        let mut p = Partition::new(assignment, 4);
        let before = p.edge_cut(&g);
        assert!(before > baseline, "perturbation should worsen the cut");
        // With 16-vertex blocks a 3-5 % bound forbids any single move (the
        // bound rounds down to exactly 16), so give the refiner a 10 % slack
        // — the point of the test is cut improvement, not tight balance.
        let improvement = greedy_kway_refine(&g, &mut p, 0.10, 10);
        let after = p.edge_cut(&g);
        assert_eq!(before - after, improvement);
        assert!(after < before, "cut should improve: {before} -> {after}");
        assert!(p.is_balanced(&g, 0.10 + 1e-9));
    }

    #[test]
    fn refinement_keeps_good_partition_good() {
        let g = generators::grid2d(8, 8);
        let cfg = PartitionConfig::new(4, 3);
        let mut p = crate::partition(&g, &cfg);
        let before = p.edge_cut(&g);
        greedy_kway_refine(&g, &mut p, cfg.epsilon, 3);
        assert!(p.edge_cut(&g) <= before);
    }

    #[test]
    fn refinement_respects_balance() {
        let g = generators::barabasi_albert(400, 3, 8);
        let assignment: Vec<u32> = (0..400u32).map(|v| v % 8).collect();
        let mut p = Partition::new(assignment, 8);
        greedy_kway_refine(&g, &mut p, 0.03, 5);
        assert!(
            p.is_balanced(&g, 0.03 + 1e-9),
            "imbalance = {}",
            p.imbalance(&g)
        );
    }

    #[test]
    fn single_block_is_noop() {
        let g = generators::cycle_graph(6);
        let mut p = Partition::new(vec![0; 6], 1);
        assert_eq!(greedy_kway_refine(&g, &mut p, 0.03, 3), 0);
    }

    #[test]
    fn rebalance_fixes_overloaded_block() {
        // All vertices initially in block 0 of a 4-block partition; rebalance
        // must spread them out until the 3 % bound holds.
        let g = generators::grid2d(8, 8);
        let mut p = Partition::new(vec![0; 64], 4);
        assert!(!p.is_balanced(&g, 0.03));
        let moves = rebalance(&g, &mut p, 0.03);
        assert!(moves > 0);
        assert!(
            p.is_balanced(&g, 0.03 + 1e-9),
            "imbalance = {}",
            p.imbalance(&g)
        );
        assert_eq!(p.num_nonempty_blocks(), 4);
    }

    #[test]
    fn rebalance_noop_on_balanced_partition() {
        let g = generators::grid2d(8, 8);
        let cfg = PartitionConfig::new(4, 1);
        let mut p = crate::partition(&g, &cfg);
        assert!(p.is_balanced(&g, cfg.epsilon + 1e-9));
        let cut = p.edge_cut(&g);
        assert_eq!(rebalance(&g, &mut p, cfg.epsilon), 0);
        assert_eq!(p.edge_cut(&g), cut);
    }

    #[test]
    fn block_bound_rounding() {
        assert_eq!(block_bound(16, 0.03), 16); // floor(16.48) = 16
        assert_eq!(block_bound(100, 0.03), 103);
        assert_eq!(block_bound(50, 0.03), 51);
        assert_eq!(block_bound(1, 0.0), 1);
    }
}
