//! Initial bisection of the coarsest graph by greedy graph growing.
//!
//! Starting from a random seed vertex, block 0 is grown one vertex at a time;
//! among the frontier vertices the one whose move decreases the cut the most
//! (highest internal-minus-external connectivity) is added, until block 0
//! reaches its target weight. Several attempts with different seeds are made
//! and the best feasible bisection is kept.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tie_graph::{Gain, Graph, NodeId, Weight};

/// A bisection: `side[v]` is 0 or 1.
#[derive(Clone, Debug)]
pub struct Bisection {
    /// Side of every vertex.
    pub side: Vec<u8>,
    /// Weight of side 0.
    pub weight0: Weight,
    /// Weight of side 1.
    pub weight1: Weight,
    /// Edge cut of the bisection.
    pub cut: Weight,
}

impl Bisection {
    /// Computes weights and cut from scratch for the given side assignment.
    pub fn from_sides(graph: &Graph, side: Vec<u8>) -> Self {
        let mut weight0 = 0;
        let mut weight1 = 0;
        for v in graph.vertices() {
            if side[v as usize] == 0 {
                weight0 += graph.vertex_weight(v);
            } else {
                weight1 += graph.vertex_weight(v);
            }
        }
        let cut = graph
            .edges()
            .filter(|&(u, v, _)| side[u as usize] != side[v as usize])
            .map(|(_, _, w)| w)
            .sum();
        Bisection {
            side,
            weight0,
            weight1,
            cut,
        }
    }

    /// True if both sides respect their targets within factor `1 + eps`.
    pub fn is_feasible(&self, target0: Weight, target1: Weight, eps: f64) -> bool {
        let max0 = ((target0 as f64) * (1.0 + eps)).ceil() as Weight;
        let max1 = ((target1 as f64) * (1.0 + eps)).ceil() as Weight;
        self.weight0 <= max0.max(1) && self.weight1 <= max1.max(1)
    }
}

/// Grows block 0 from a random seed until its weight reaches `target0`.
fn grow_once(graph: &Graph, target0: Weight, rng: &mut StdRng) -> Bisection {
    let n = graph.num_vertices();
    let mut side = vec![1u8; n];
    if n == 0 {
        return Bisection::from_sides(graph, side);
    }
    let start = rng.gen_range(0..n) as NodeId;
    // gain[v] = (weight to block 0) - (weight to block 1) for frontier vertices.
    let mut in_block0 = vec![false; n];
    let mut weight0: Weight = 0;

    let mut frontier: Vec<NodeId> = vec![start];
    while weight0 < target0 {
        // Pick the frontier vertex with the highest connectivity to block 0.
        let mut best: Option<(usize, Gain)> = None;
        for (idx, &v) in frontier.iter().enumerate() {
            let mut gain: Gain = 0;
            for (u, w) in graph.edges_of(v) {
                if in_block0[u as usize] {
                    gain += w as Gain;
                } else {
                    gain -= w as Gain;
                }
            }
            if best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((idx, gain));
            }
        }
        let v = match best {
            Some((idx, _)) => frontier.swap_remove(idx),
            None => {
                // Frontier exhausted (disconnected graph): jump to any vertex
                // not yet in block 0.
                match (0..n as NodeId).find(|&v| !in_block0[v as usize]) {
                    Some(v) => v,
                    None => break,
                }
            }
        };
        if in_block0[v as usize] {
            continue;
        }
        in_block0[v as usize] = true;
        side[v as usize] = 0;
        weight0 += graph.vertex_weight(v);
        for &u in graph.neighbors(v) {
            if !in_block0[u as usize] && !frontier.contains(&u) {
                frontier.push(u);
            }
        }
    }
    Bisection::from_sides(graph, side)
}

/// Computes an initial bisection with block-0 target weight `target0`,
/// trying `attempts` random seeds and keeping the best (lowest cut among
/// feasible ones; if none is feasible, the one with the lowest imbalance).
pub fn greedy_graph_growing(
    graph: &Graph,
    target0: Weight,
    eps: f64,
    attempts: usize,
    seed: u64,
) -> Bisection {
    let total = graph.total_vertex_weight();
    let target1 = total.saturating_sub(target0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<Bisection> = None;
    for _ in 0..attempts.max(1) {
        let cand = grow_once(graph, target0, &mut rng);
        let better = match &best {
            None => true,
            Some(b) => {
                let cand_ok = cand.is_feasible(target0, target1, eps);
                let best_ok = b.is_feasible(target0, target1, eps);
                match (cand_ok, best_ok) {
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => cand.cut < b.cut,
                    (false, false) => {
                        imbalance_of(&cand, target0, target1) < imbalance_of(b, target0, target1)
                    }
                }
            }
        };
        if better {
            best = Some(cand);
        }
    }
    best.unwrap_or_else(|| Bisection::from_sides(graph, vec![1; graph.num_vertices()]))
}

fn imbalance_of(b: &Bisection, target0: Weight, target1: Weight) -> f64 {
    let r0 = if target0 > 0 {
        b.weight0 as f64 / target0 as f64
    } else {
        1.0
    };
    let r1 = if target1 > 0 {
        b.weight1 as f64 / target1 as f64
    } else {
        1.0
    };
    r0.max(r1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;

    #[test]
    fn bisection_from_sides_consistency() {
        let g = generators::path_graph(4);
        let b = Bisection::from_sides(&g, vec![0, 0, 1, 1]);
        assert_eq!(b.weight0, 2);
        assert_eq!(b.weight1, 2);
        assert_eq!(b.cut, 1);
        assert!(b.is_feasible(2, 2, 0.0));
        assert!(!b.is_feasible(1, 3, 0.0));
    }

    #[test]
    fn growing_hits_target_weight_on_grid() {
        let g = generators::grid2d(8, 8);
        let b = greedy_graph_growing(&g, 32, 0.05, 6, 1);
        assert!(
            b.weight0 >= 32 && b.weight0 <= 36,
            "weight0 = {}",
            b.weight0
        );
        assert_eq!(b.weight0 + b.weight1, 64);
        // A grown region of a grid should have a reasonably small cut.
        assert!(b.cut <= 24, "cut = {}", b.cut);
    }

    #[test]
    fn growing_handles_disconnected_graphs() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)]);
        let b = greedy_graph_growing(&g, 3, 0.1, 4, 2);
        assert_eq!(b.weight0 + b.weight1, 6);
        assert!(b.weight0 >= 3);
    }

    #[test]
    fn growing_is_deterministic_in_seed() {
        let g = generators::barabasi_albert(120, 2, 7);
        let a = greedy_graph_growing(&g, 60, 0.03, 5, 11);
        let b = greedy_graph_growing(&g, 60, 0.03, 5, 11);
        assert_eq!(a.side, b.side);
    }

    #[test]
    fn unbalanced_target() {
        let g = generators::grid2d(6, 6);
        let b = greedy_graph_growing(&g, 9, 0.1, 5, 3);
        assert!(b.weight0 >= 9 && b.weight0 <= 12, "weight0 = {}", b.weight0);
    }
}
