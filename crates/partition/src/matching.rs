//! Heavy-edge matching for the coarsening phase.
//!
//! Vertices are visited in a random order; each unmatched vertex is matched
//! with its unmatched neighbour connected by the heaviest edge (ties broken
//! by smaller coarse vertex weight to keep the coarse graph balanced). This
//! is the matching scheme used by METIS/KaHIP-style multilevel partitioners.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tie_graph::{Graph, NodeId};

/// A matching: `mate[v]` is the vertex `v` is matched with, or `v` itself if
/// unmatched.
#[derive(Clone, Debug)]
pub struct Matching {
    /// Partner of every vertex (self if unmatched).
    pub mate: Vec<NodeId>,
    /// Number of matched pairs.
    pub num_pairs: usize,
}

impl Matching {
    /// True if `v` is matched with a different vertex.
    pub fn is_matched(&self, v: NodeId) -> bool {
        self.mate[v as usize] != v
    }
}

/// Computes a heavy-edge matching with a random visiting order derived from
/// `seed`.
pub fn heavy_edge_matching(graph: &Graph, seed: u64) -> Matching {
    let n = graph.num_vertices();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut mate: Vec<NodeId> = (0..n as NodeId).collect();
    let mut num_pairs = 0usize;
    for &v in &order {
        if mate[v as usize] != v {
            continue; // already matched
        }
        let mut best: Option<(NodeId, u64, u64)> = None; // (neighbour, edge weight, neighbour weight)
        for (u, w) in graph.edges_of(v) {
            if u == v || mate[u as usize] != u {
                continue;
            }
            let uw = graph.vertex_weight(u);
            let better = match best {
                None => true,
                Some((_, bw, bvw)) => w > bw || (w == bw && uw < bvw),
            };
            if better {
                best = Some((u, w, uw));
            }
        }
        if let Some((u, _, _)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
            num_pairs += 1;
        }
    }
    Matching { mate, num_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;

    fn check_valid(graph: &Graph, m: &Matching) {
        for v in graph.vertices() {
            let u = m.mate[v as usize];
            // Symmetric.
            assert_eq!(m.mate[u as usize], v);
            // Matched pairs are adjacent.
            if u != v {
                assert!(graph.has_edge(u, v), "matched non-adjacent pair {u} {v}");
            }
        }
    }

    #[test]
    fn matching_on_path_is_valid_and_large() {
        let g = generators::path_graph(10);
        let m = heavy_edge_matching(&g, 1);
        check_valid(&g, &m);
        assert!(m.num_pairs >= 3);
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // Star with one heavy edge. The visiting order is random, so the
        // centre is only guaranteed to pick the heavy edge when it is visited
        // before its leaves; over several seeds this must happen at least
        // once, and the centre must always end up matched (it has neighbours).
        let mut b = tie_graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 100);
        b.add_edge(0, 3, 1);
        let g = b.build();
        let mut saw_heavy = false;
        for seed in 0..10 {
            let m = heavy_edge_matching(&g, seed);
            check_valid(&g, &m);
            assert!(m.is_matched(0));
            if m.mate[0] == 2 {
                saw_heavy = true;
            }
        }
        assert!(
            saw_heavy,
            "the heavy edge should be chosen for at least one visiting order"
        );
    }

    #[test]
    fn matching_on_complete_graph_matches_almost_all() {
        let g = generators::complete_graph(9);
        let m = heavy_edge_matching(&g, 3);
        check_valid(&g, &m);
        assert_eq!(m.num_pairs, 4); // 9 vertices: 4 pairs + 1 single
    }

    #[test]
    fn matching_deterministic_in_seed() {
        let g = generators::barabasi_albert(100, 3, 5);
        let a = heavy_edge_matching(&g, 9);
        let b = heavy_edge_matching(&g, 9);
        assert_eq!(a.mate, b.mate);
    }

    #[test]
    fn isolated_vertices_stay_unmatched() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let m = heavy_edge_matching(&g, 0);
        check_valid(&g, &m);
        assert!(!m.is_matched(2));
        assert!(!m.is_matched(3));
        assert!(m.is_matched(0));
    }
}
