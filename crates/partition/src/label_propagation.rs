//! Size-constrained label propagation partitioning.
//!
//! KaHIP's fast configurations use size-constrained label propagation (SCLP)
//! both as a coarsening clustering and as a cheap initial partitioner for
//! complex networks. This module provides SCLP as an alternative to the
//! multilevel recursive-bisection pipeline: every vertex repeatedly adopts
//! the block most of its neighbours (by edge weight) belong to, subject to
//! the block-size bound of Eq. (1). It is much faster than the multilevel
//! partitioner on large complex networks at somewhat higher cut, and serves
//! as an ablation baseline for the experiment harness.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tie_graph::{Graph, NodeId, Weight};

use crate::kway_refine::{block_bound, rebalance};
use crate::partition::Partition;

/// Configuration for size-constrained label propagation.
#[derive(Clone, Debug)]
pub struct LabelPropagationConfig {
    /// Number of blocks.
    pub k: usize,
    /// Allowed imbalance ε.
    pub epsilon: f64,
    /// Number of propagation rounds.
    pub rounds: usize,
    /// Seed for the initial assignment and the visiting order.
    pub seed: u64,
}

impl LabelPropagationConfig {
    /// Default configuration: `k` blocks, ε = 3 %, 10 rounds.
    pub fn new(k: usize, seed: u64) -> Self {
        LabelPropagationConfig {
            k,
            epsilon: 0.03,
            rounds: 10,
            seed,
        }
    }
}

/// Partitions `graph` by size-constrained label propagation.
pub fn label_propagation_partition(graph: &Graph, config: &LabelPropagationConfig) -> Partition {
    let n = graph.num_vertices();
    let k = config.k.max(1);
    let total = graph.total_vertex_weight();
    let ideal = if k == 0 {
        total
    } else {
        total.div_ceil(k as Weight)
    };
    let max_block = block_bound(ideal, config.epsilon);

    // Initial assignment: round-robin over a shuffled vertex order, which is
    // balanced by construction.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(&mut rng);
    let mut assignment = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        assignment[v as usize] = (i % k) as u32;
    }
    let mut block_weights = vec![0 as Weight; k];
    for v in graph.vertices() {
        block_weights[assignment[v as usize] as usize] += graph.vertex_weight(v);
    }

    let mut conn = vec![0 as Weight; k];
    for _ in 0..config.rounds {
        let mut moved = false;
        order.shuffle(&mut rng);
        for &v in &order {
            let from = assignment[v as usize];
            // Connectivity of v to each block among its neighbours.
            let mut touched: Vec<u32> = Vec::new();
            for (u, w) in graph.edges_of(v) {
                let b = assignment[u as usize];
                if conn[b as usize] == 0 {
                    touched.push(b);
                }
                conn[b as usize] += w;
            }
            // Best admissible block (ties: keep current block if tied).
            let vw = graph.vertex_weight(v);
            let mut best = from;
            let mut best_conn = conn[from as usize];
            for &b in &touched {
                if b != from
                    && conn[b as usize] > best_conn
                    && block_weights[b as usize] + vw <= max_block
                {
                    best = b;
                    best_conn = conn[b as usize];
                }
            }
            for &b in &touched {
                conn[b as usize] = 0;
            }
            if best != from {
                assignment[v as usize] = best;
                block_weights[from as usize] -= vw;
                block_weights[best as usize] += vw;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    let mut partition = Partition::new(assignment, k);
    // Label propagation may leave blocks over the bound only if the bound was
    // infeasible at initialization (it is not, for unit weights), but a
    // defensive rebalance keeps the guarantee unconditional.
    rebalance(graph, &mut partition, config.epsilon);
    partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionConfig;
    use tie_graph::generators;

    #[test]
    fn sclp_produces_balanced_partitions() {
        let g = generators::barabasi_albert(1000, 4, 3);
        let p = label_propagation_partition(&g, &LabelPropagationConfig::new(16, 1));
        assert_eq!(p.k(), 16);
        assert!(
            p.is_balanced(&g, 0.03 + 1e-9),
            "imbalance = {}",
            p.imbalance(&g)
        );
        assert!(p.num_nonempty_blocks() >= 14, "most blocks should be used");
    }

    #[test]
    fn sclp_improves_over_round_robin_cut() {
        let g = generators::grid2d(20, 20);
        let cfg = LabelPropagationConfig::new(8, 5);
        let p = label_propagation_partition(&g, &cfg);
        // Round-robin baseline cut: nearly every edge is cut.
        let round_robin = Partition::new((0..400u32).map(|v| v % 8).collect(), 8);
        assert!(
            p.edge_cut(&g) < round_robin.edge_cut(&g) / 2,
            "label propagation should find locality: {} vs {}",
            p.edge_cut(&g),
            round_robin.edge_cut(&g)
        );
    }

    #[test]
    fn sclp_is_faster_ballpark_but_multilevel_cuts_less() {
        // Not a timing assertion (timing is covered by benches) — only the
        // quality relationship that justifies using the multilevel pipeline
        // as the default for the experiments.
        let g = generators::barabasi_albert(1500, 4, 9);
        let sclp = label_propagation_partition(&g, &LabelPropagationConfig::new(32, 2));
        let ml = crate::partition(&g, &PartitionConfig::new(32, 2));
        assert!(
            ml.edge_cut(&g) <= sclp.edge_cut(&g) * 2,
            "multilevel should be competitive"
        );
        assert!(sclp.is_balanced(&g, 0.035));
        assert!(ml.is_balanced(&g, 0.035));
    }

    #[test]
    fn sclp_deterministic_in_seed() {
        let g = generators::watts_strogatz(400, 6, 0.1, 4);
        let a = label_propagation_partition(&g, &LabelPropagationConfig::new(8, 7));
        let b = label_propagation_partition(&g, &LabelPropagationConfig::new(8, 7));
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn sclp_single_block() {
        let g = generators::cycle_graph(10);
        let p = label_propagation_partition(&g, &LabelPropagationConfig::new(1, 0));
        assert!(p.assignment().iter().all(|&b| b == 0));
        assert_eq!(p.edge_cut(&g), 0);
    }
}
