//! Graph contraction along a matching (the coarsening step of the multilevel
//! scheme).

use tie_graph::{Graph, GraphBuilder, NodeId};

use crate::matching::Matching;

/// One level of the coarsening hierarchy.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: Graph,
    /// For every fine vertex, the coarse vertex it was contracted into.
    pub fine_to_coarse: Vec<NodeId>,
}

/// Contracts `graph` along `matching`: every matched pair becomes a single
/// coarse vertex whose weight is the sum of the pair's weights; unmatched
/// vertices are copied. Parallel edges arising from the contraction are
/// merged with accumulated weights; self-loops (edges inside a pair) vanish.
pub fn contract(graph: &Graph, matching: &Matching) -> CoarseLevel {
    let n = graph.num_vertices();
    let mut fine_to_coarse = vec![NodeId::MAX; n];
    let mut next = 0 as NodeId;
    for v in 0..n as NodeId {
        if fine_to_coarse[v as usize] != NodeId::MAX {
            continue;
        }
        let mate = matching.mate[v as usize];
        fine_to_coarse[v as usize] = next;
        if mate != v {
            fine_to_coarse[mate as usize] = next;
        }
        next += 1;
    }
    let coarse_n = next as usize;
    let mut builder = GraphBuilder::new(coarse_n);
    let mut coarse_weights = vec![0u64; coarse_n];
    for v in 0..n as NodeId {
        coarse_weights[fine_to_coarse[v as usize] as usize] += graph.vertex_weight(v);
    }
    for (c, &w) in coarse_weights.iter().enumerate() {
        builder.set_vertex_weight(c as NodeId, w);
    }
    for (u, v, w) in graph.edges() {
        let (cu, cv) = (fine_to_coarse[u as usize], fine_to_coarse[v as usize]);
        if cu != cv {
            builder.add_edge(cu, cv, w);
        }
    }
    CoarseLevel {
        graph: builder.build(),
        fine_to_coarse,
    }
}

/// A full coarsening hierarchy from the original graph down to a small one.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// `levels[0]` contracts the input graph; `levels.last()` is the coarsest.
    pub levels: Vec<CoarseLevel>,
}

impl Hierarchy {
    /// The coarsest graph (the input graph itself if no contraction happened).
    pub fn coarsest<'a>(&'a self, original: &'a Graph) -> &'a Graph {
        self.levels.last().map(|l| &l.graph).unwrap_or(original)
    }

    /// Projects an assignment on the coarsest graph back to the original
    /// vertices.
    pub fn project_to_finest(&self, coarse_assignment: &[u32]) -> Vec<u32> {
        let mut assignment: Vec<u32> = coarse_assignment.to_vec();
        for level in self.levels.iter().rev() {
            let mut fine = vec![0u32; level.fine_to_coarse.len()];
            for (v, &c) in level.fine_to_coarse.iter().enumerate() {
                fine[v] = assignment[c as usize];
            }
            assignment = fine;
        }
        assignment
    }
}

/// Repeatedly matches and contracts until the graph has at most
/// `target_size` vertices or contraction stalls (less than 10 % shrinkage),
/// which happens e.g. on star-like graphs where matchings are tiny.
pub fn coarsen_until(graph: &Graph, target_size: usize, seed: u64) -> Hierarchy {
    let mut levels = Vec::new();
    let mut current = graph.clone();
    let mut round = 0u64;
    while current.num_vertices() > target_size {
        let matching = crate::matching::heavy_edge_matching(&current, seed.wrapping_add(round));
        let level = contract(&current, &matching);
        let shrunk = level.graph.num_vertices();
        if shrunk as f64 > current.num_vertices() as f64 * 0.95 {
            break; // contraction stalled
        }
        current = level.graph.clone();
        levels.push(level);
        round += 1;
        if round > 200 {
            break;
        }
    }
    Hierarchy { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::heavy_edge_matching;
    use tie_graph::generators;

    #[test]
    fn contraction_preserves_total_vertex_weight() {
        let g = generators::grid2d(6, 6);
        let m = heavy_edge_matching(&g, 1);
        let level = contract(&g, &m);
        assert_eq!(level.graph.total_vertex_weight(), g.total_vertex_weight());
        assert_eq!(level.graph.num_vertices(), g.num_vertices() - m.num_pairs);
    }

    #[test]
    fn contraction_drops_only_intra_pair_weight() {
        let g = generators::cycle_graph(8);
        let m = heavy_edge_matching(&g, 2);
        let level = contract(&g, &m);
        // Total edge weight decreases exactly by the weight of matched edges.
        let matched_weight: u64 = g
            .edges()
            .filter(|&(u, v, _)| m.mate[u as usize] == v)
            .map(|(_, _, w)| w)
            .sum();
        assert_eq!(
            level.graph.total_edge_weight(),
            g.total_edge_weight() - matched_weight
        );
    }

    #[test]
    fn hierarchy_reaches_target_size() {
        let g = generators::barabasi_albert(500, 3, 4);
        let h = coarsen_until(&g, 50, 0);
        assert!(
            h.coarsest(&g).num_vertices() <= 120,
            "stalled too early: {}",
            h.coarsest(&g).num_vertices()
        );
        assert!(!h.levels.is_empty());
        // Weight conservation through the whole hierarchy.
        assert_eq!(
            h.coarsest(&g).total_vertex_weight(),
            g.total_vertex_weight()
        );
    }

    #[test]
    fn projection_roundtrip() {
        let g = generators::grid2d(8, 8);
        let h = coarsen_until(&g, 8, 3);
        let coarsest = h.coarsest(&g);
        // Assign alternating blocks on the coarsest graph and project.
        let coarse_assignment: Vec<u32> =
            (0..coarsest.num_vertices() as u32).map(|v| v % 2).collect();
        let fine = h.project_to_finest(&coarse_assignment);
        assert_eq!(fine.len(), g.num_vertices());
        // Every fine vertex inherits the block of its coarse representative.
        let mut v_to_c: Vec<u32> = (0..g.num_vertices() as u32).collect();
        for level in &h.levels {
            v_to_c = v_to_c
                .iter()
                .map(|&c| level.fine_to_coarse[c as usize])
                .collect();
        }
        for v in 0..g.num_vertices() {
            assert_eq!(fine[v], coarse_assignment[v_to_c[v] as usize]);
        }
    }

    #[test]
    fn empty_hierarchy_on_tiny_graph() {
        let g = generators::path_graph(3);
        let h = coarsen_until(&g, 10, 0);
        assert!(h.levels.is_empty());
        assert_eq!(h.project_to_finest(&[0, 1, 0]), vec![0, 1, 0]);
    }
}
