//! The [`Partition`] type: a block assignment plus quality accessors.

use tie_graph::{Graph, Weight};

/// A partition of a graph's vertex set into `k` blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    k: usize,
}

impl Partition {
    /// Wraps an existing assignment. Block ids must be `< k`.
    ///
    /// # Panics
    /// Panics if any block id is out of range.
    pub fn new(assignment: Vec<u32>, k: usize) -> Self {
        assert!(
            assignment.iter().all(|&b| (b as usize) < k),
            "block id out of range"
        );
        Partition { assignment, k }
    }

    /// Number of blocks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Block of vertex `v`.
    #[inline]
    pub fn block_of(&self, v: u32) -> u32 {
        self.assignment[v as usize]
    }

    /// The underlying assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Consumes the partition and returns the assignment vector.
    pub fn into_assignment(self) -> Vec<u32> {
        self.assignment
    }

    /// Mutable access for refinement passes.
    pub(crate) fn assignment_mut(&mut self) -> &mut [u32] {
        &mut self.assignment
    }

    /// Total vertex weight of every block.
    pub fn block_weights(&self, graph: &Graph) -> Vec<Weight> {
        let mut w = vec![0 as Weight; self.k];
        for v in graph.vertices() {
            w[self.assignment[v as usize] as usize] += graph.vertex_weight(v);
        }
        w
    }

    /// Number of vertices in every block.
    pub fn block_sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.k];
        for &b in &self.assignment {
            s[b as usize] += 1;
        }
        s
    }

    /// Sum of weights of edges whose endpoints lie in different blocks.
    pub fn edge_cut(&self, graph: &Graph) -> Weight {
        graph
            .edges()
            .filter(|&(u, v, _)| self.assignment[u as usize] != self.assignment[v as usize])
            .map(|(_, _, w)| w)
            .sum()
    }

    /// Imbalance of the partition: `max_b weight(b) / ceil(total / k) - 1`.
    /// A perfectly balanced partition has imbalance 0.
    pub fn imbalance(&self, graph: &Graph) -> f64 {
        let total = graph.total_vertex_weight();
        if total == 0 || self.k == 0 {
            return 0.0;
        }
        let ideal = total.div_ceil(self.k as Weight);
        let max = self.block_weights(graph).into_iter().max().unwrap_or(0);
        max as f64 / ideal as f64 - 1.0
    }

    /// True if every block obeys Eq. (1): `weight(b) <= (1 + eps) * ceil(total / k)`.
    pub fn is_balanced(&self, graph: &Graph, eps: f64) -> bool {
        self.imbalance(graph) <= eps + 1e-12
    }

    /// Number of non-empty blocks.
    pub fn num_nonempty_blocks(&self) -> usize {
        self.block_sizes().into_iter().filter(|&s| s > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;

    #[test]
    fn block_weights_and_sizes() {
        let g = generators::path_graph(6);
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(p.block_weights(&g), vec![3, 3]);
        assert_eq!(p.block_sizes(), vec![3, 3]);
        assert_eq!(p.edge_cut(&g), 1);
        assert!(p.is_balanced(&g, 0.0));
        assert_eq!(p.num_nonempty_blocks(), 2);
    }

    #[test]
    fn imbalance_computation() {
        let g = generators::path_graph(6);
        let p = Partition::new(vec![0, 0, 0, 0, 1, 1], 2);
        // max block = 4, ideal = 3 -> imbalance 1/3.
        assert!((p.imbalance(&g) - 1.0 / 3.0).abs() < 1e-9);
        assert!(!p.is_balanced(&g, 0.03));
        assert!(p.is_balanced(&g, 0.34));
    }

    #[test]
    fn edge_cut_counts_weighted_edges() {
        let mut b = tie_graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 3);
        b.add_edge(2, 3, 10);
        let g = b.build();
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.edge_cut(&g), 3);
    }

    #[test]
    fn empty_blocks_allowed() {
        let p = Partition::new(vec![0, 0, 0], 4);
        assert_eq!(p.num_nonempty_blocks(), 1);
        assert_eq!(p.block_sizes(), vec![3, 0, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_rejected() {
        let _ = Partition::new(vec![0, 5], 2);
    }
}
