//! Communication-graph construction (Figure 1 of the paper).
//!
//! Contracting every block of a partition of `Ga` into a single vertex yields
//! the communication graph `Gc = (Vc, Ec, ωc)`, where `ωc` aggregates the
//! weights of the `Ga`-edges running between two blocks. The mapping
//! baselines operate on `Gc` (one vertex per block) and then compose with the
//! partition to obtain a mapping of `Va`.

use tie_graph::{quotient_graph, Graph};
use tie_partition::Partition;

/// Builds the communication graph of `graph` under `partition`. Vertex `b`
/// of the result corresponds to block `b`; its vertex weight is the total
/// vertex weight of the block. Blocks that are empty still appear as
/// isolated, zero-weight vertices so that vertex ids coincide with block ids.
pub fn communication_graph(graph: &Graph, partition: &Partition) -> Graph {
    let k = partition.k();
    // quotient_graph compacts block ids; to keep ids aligned with blocks even
    // when some blocks are empty, build directly.
    let mut builder = tie_graph::GraphBuilder::new(k);
    for (b, w) in partition.block_weights(graph).into_iter().enumerate() {
        builder.set_vertex_weight(b as u32, w);
    }
    for (u, v, w) in graph.edges() {
        let (bu, bv) = (partition.block_of(u), partition.block_of(v));
        if bu != bv {
            builder.add_edge(bu, bv, w);
        }
    }
    let gc = builder.build();
    debug_assert_eq!(
        gc.total_edge_weight(),
        quotient_graph(graph, partition.assignment()).cut_weight,
        "communication volume must equal the partition's edge cut"
    );
    gc
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_partition::PartitionConfig;

    #[test]
    fn comm_graph_of_quadrant_partition() {
        let g = generators::grid2d(4, 4);
        let mut assignment = vec![0u32; 16];
        for x in 0..4usize {
            for y in 0..4usize {
                assignment[x * 4 + y] = ((x / 2) * 2 + (y / 2)) as u32;
            }
        }
        let p = Partition::new(assignment, 4);
        let gc = communication_graph(&g, &p);
        assert_eq!(gc.num_vertices(), 4);
        assert_eq!(gc.num_edges(), 4); // quadrants adjacent along sides only
        assert_eq!(gc.total_edge_weight(), p.edge_cut(&g));
        assert_eq!(gc.vertex_weights(), &[4, 4, 4, 4]);
    }

    #[test]
    fn empty_blocks_become_isolated_vertices() {
        let g = generators::path_graph(4);
        let p = Partition::new(vec![0, 0, 2, 2], 4);
        let gc = communication_graph(&g, &p);
        assert_eq!(gc.num_vertices(), 4);
        assert_eq!(gc.degree(1), 0);
        assert_eq!(gc.degree(3), 0);
        assert_eq!(gc.edge_weight(0, 2), Some(1));
    }

    #[test]
    fn comm_volume_matches_cut_on_partitioned_network() {
        let g = generators::barabasi_albert(500, 3, 3);
        let p = tie_partition::partition(&g, &PartitionConfig::new(16, 2));
        let gc = communication_graph(&g, &p);
        assert_eq!(gc.num_vertices(), 16);
        assert_eq!(gc.total_edge_weight(), p.edge_cut(&g));
        assert_eq!(gc.total_vertex_weight(), g.total_vertex_weight());
    }
}
