//! Dual recursive bisection (experimental case c1, SCOTCH-style).
//!
//! Pellegrini's dual recursive bipartitioning cuts the processor graph and
//! the communication graph into two parts simultaneously and recurses,
//! assigning the respective halves to each other. The processor half sizes
//! dictate the target sizes of the communication-graph halves, so the final
//! assignment is a bijection.

use tie_graph::{induced_subgraph, Graph, NodeId};
use tie_partition::multilevel::multilevel_bisection;
use tie_partition::PartitionConfig;

use crate::Mapping;
use tie_partition::Partition;

/// Computes a bijection `nu[block] = PE` by dual recursive bisection of the
/// communication graph `gc` and the processor graph `gp`.
///
/// # Panics
/// Panics if `gc` has more vertices than `gp`.
pub fn dual_recursive_bisection(gc: &Graph, gp: &Graph, seed: u64) -> Vec<u32> {
    let k = gc.num_vertices();
    let p = gp.num_vertices();
    assert!(
        k <= p,
        "communication graph has more vertices ({k}) than there are PEs ({p})"
    );
    let mut nu = vec![u32::MAX; k];
    let c_vertices: Vec<NodeId> = gc.vertices().collect();
    let p_vertices: Vec<NodeId> = gp.vertices().collect();
    recurse(gc, gp, &c_vertices, &p_vertices, seed, &mut nu);
    debug_assert!(nu.iter().all(|&x| x != u32::MAX));
    nu
}

/// Dual recursive bisection composed with a partition into a vertex-to-PE
/// [`Mapping`] — the stand-in for SCOTCH's generic mapping routine.
pub fn drb_mapping(graph: &Graph, partition: &Partition, gp: &Graph, seed: u64) -> Mapping {
    let gc = crate::communication_graph(graph, partition);
    let nu = dual_recursive_bisection(&gc, gp, seed);
    Mapping::from_partition(partition, &nu, gp.num_vertices())
}

fn recurse(
    gc: &Graph,
    gp: &Graph,
    c_vertices: &[NodeId],
    p_vertices: &[NodeId],
    seed: u64,
    nu: &mut [u32],
) {
    if c_vertices.is_empty() {
        return;
    }
    if p_vertices.len() == 1 || c_vertices.len() == 1 {
        // Assign every remaining communication vertex to the remaining PEs in
        // order (normally a 1:1 leftover).
        for (i, &c) in c_vertices.iter().enumerate() {
            nu[c as usize] = p_vertices[i.min(p_vertices.len() - 1)];
        }
        return;
    }

    // 1. Bisect the processor subset, preferring a balanced structural cut.
    let p_sub = induced_subgraph(gp, p_vertices);
    let p_half = (p_vertices.len() / 2) as u64;
    let p_cfg = PartitionConfig {
        epsilon: 0.0,
        ..PartitionConfig::new(2, seed)
    };
    let p_bis = multilevel_bisection(&p_sub.graph, p_half, &p_cfg, seed);
    let (mut p0, mut p1): (Vec<NodeId>, Vec<NodeId>) = (Vec::new(), Vec::new());
    for (local, &orig) in p_sub.to_parent.iter().enumerate() {
        if p_bis.side[local] == 0 {
            p0.push(orig);
        } else {
            p1.push(orig);
        }
    }
    // Force exact half sizes (multilevel bisection is heuristic): move the
    // last vertices of the larger side over. The PE sides only need the right
    // cardinality; communication quality comes from the Gc side.
    while p0.len() > p_half as usize {
        let Some(v) = p0.pop() else { break };
        p1.push(v);
    }
    while p0.len() < p_half as usize {
        let Some(v) = p1.pop() else { break };
        p0.push(v);
    }

    // 2. Bisect the communication subset with target sizes matching the PE
    //    halves (vertex counts, since every block must receive its own PE).
    let c_sub = induced_subgraph(gc, c_vertices);
    // Use unit weights for the bisection targets: the bijection needs
    // cardinality matching, not weight matching.
    let mut unit = c_sub.graph.clone();
    unit.set_vertex_weights(vec![1; unit.num_vertices()]);
    let c_target0 = p0.len().min(c_vertices.len()) as u64;
    let c_cfg = PartitionConfig {
        epsilon: 0.0,
        ..PartitionConfig::new(2, seed ^ 0x9e3779b9)
    };
    let c_bis = multilevel_bisection(&unit, c_target0, &c_cfg, seed.wrapping_add(1));
    let (mut c0, mut c1): (Vec<NodeId>, Vec<NodeId>) = (Vec::new(), Vec::new());
    for (local, &orig) in c_sub.to_parent.iter().enumerate() {
        if c_bis.side[local] == 0 {
            c0.push(orig);
        } else {
            c1.push(orig);
        }
    }
    while c0.len() > c_target0 as usize {
        let Some(v) = c0.pop() else { break };
        c1.push(v);
    }
    while c0.len() < c_target0 as usize {
        let Some(v) = c1.pop() else { break };
        c0.push(v);
    }

    // 3. Recurse on the matched halves.
    recurse(gc, gp, &c0, &p0, seed.wrapping_add(2), nu);
    recurse(gc, gp, &c1, &p1, seed.wrapping_add(3), nu);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_graph::traversal::all_pairs_distances;
    use tie_topology::Topology;

    fn coco_of_nu(gc: &Graph, gp: &Graph, nu: &[u32]) -> u64 {
        let dist = all_pairs_distances(gp);
        gc.edges()
            .map(|(u, v, w)| w * dist.get(nu[u as usize], nu[v as usize]) as u64)
            .sum()
    }

    fn is_injective(nu: &[u32]) -> bool {
        let mut seen = std::collections::HashSet::new();
        nu.iter().all(|&p| seen.insert(p))
    }

    #[test]
    fn drb_produces_bijection_on_equal_sizes() {
        let ga = generators::barabasi_albert(500, 3, 7);
        let gp = Topology::grid2d(4, 4).graph;
        let part = tie_partition::partition(&ga, &PartitionConfig::new(16, 1));
        let gc = crate::communication_graph(&ga, &part);
        let nu = dual_recursive_bisection(&gc, &gp, 11);
        assert_eq!(nu.len(), 16);
        assert!(is_injective(&nu));
        assert!(nu.iter().all(|&p| (p as usize) < 16));
    }

    #[test]
    fn drb_exploits_locality_of_structured_comm_graph() {
        // Communication graph identical to the processor grid: DRB should do
        // clearly better than a random bijection.
        let gp = Topology::grid2d(4, 4).graph;
        let gc = generators::randomize_edge_weights(&generators::grid2d(4, 4), 4, 9);
        let nu = dual_recursive_bisection(&gc, &gp, 5);
        let random: Vec<u32> = generators::random_permutation(16, 1);
        assert!(coco_of_nu(&gc, &gp, &nu) < coco_of_nu(&gc, &gp, &random));
    }

    #[test]
    fn drb_mapping_composes_with_partition() {
        let ga = generators::watts_strogatz(600, 4, 0.05, 2);
        let topo = Topology::hypercube(4);
        let part = tie_partition::partition(&ga, &PartitionConfig::new(16, 5));
        let m = drb_mapping(&ga, &part, &topo.graph, 3);
        assert_eq!(m.num_tasks(), 600);
        assert_eq!(m.num_pes(), 16);
        assert!(m.is_balanced(0.1));
    }

    #[test]
    fn drb_handles_fewer_blocks_than_pes() {
        let gc = generators::cycle_graph(6);
        let gp = Topology::grid2d(3, 3).graph;
        let nu = dual_recursive_bisection(&gc, &gp, 0);
        assert_eq!(nu.len(), 6);
        assert!(is_injective(&nu));
        assert!(nu.iter().all(|&p| (p as usize) < 9));
    }

    #[test]
    fn drb_single_vertex() {
        let gc = Graph::from_edges(1, &[]);
        let gp = generators::path_graph(3);
        let nu = dual_recursive_bisection(&gc, &gp, 0);
        assert_eq!(nu.len(), 1);
    }

    #[test]
    fn drb_deterministic_in_seed() {
        let gp = Topology::grid2d(4, 4).graph;
        let gc = generators::randomize_edge_weights(&generators::grid2d(4, 4), 4, 3);
        assert_eq!(
            dual_recursive_bisection(&gc, &gp, 7),
            dual_recursive_bisection(&gc, &gp, 7)
        );
    }
}
