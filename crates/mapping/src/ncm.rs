//! Pairwise-swap refinement of a block-to-PE bijection (network-cost-matrix
//! style, after Walshaw & Cross).
//!
//! Given a communication graph `Gc`, a processor graph `Gp` and a bijection
//! `nu : Vc -> Vp`, the refinement repeatedly swaps the PEs of two
//! communication vertices whenever that reduces the mapping objective
//!
//! ```text
//! Coco(nu) = Σ_{(u,v) ∈ Ec} ωc(u,v) · d_Gp(nu(u), nu(v)).
//! ```
//!
//! This is the classical coupling of partitioning and mapping that stores the
//! PE distances in a network cost matrix; it serves both as an extra baseline
//! and as an ablation partner for TIMER (which reaches similar or better
//! quality without materializing the distance matrix on `Va`).

use tie_graph::traversal::{all_pairs_distances, DistanceMatrix};
use tie_graph::{Graph, NodeId};

/// Coco of a bijection `nu` on the communication graph.
pub fn coco_of_bijection(gc: &Graph, dist: &DistanceMatrix, nu: &[u32]) -> u64 {
    gc.edges()
        .map(|(u, v, w)| w * dist.get(nu[u as usize], nu[v as usize]) as u64)
        .sum()
}

/// Change of Coco if the PEs of `a` and `b` were swapped (negative = better).
fn swap_delta(gc: &Graph, dist: &DistanceMatrix, nu: &[u32], a: NodeId, b: NodeId) -> i64 {
    let (pa, pb) = (nu[a as usize], nu[b as usize]);
    let mut delta = 0i64;
    for (u, w) in gc.edges_of(a) {
        if u == b {
            continue; // the a-b edge keeps both endpoints, distance unchanged
        }
        let pu = nu[u as usize];
        delta += w as i64 * (dist.get(pb, pu) as i64 - dist.get(pa, pu) as i64);
    }
    for (u, w) in gc.edges_of(b) {
        if u == a {
            continue;
        }
        let pu = nu[u as usize];
        delta += w as i64 * (dist.get(pa, pu) as i64 - dist.get(pb, pu) as i64);
    }
    delta
}

/// Refines `nu` in place by greedy pairwise swaps until no improving swap is
/// found or `max_passes` sweeps are done. Returns the total Coco improvement.
pub fn refine_by_swaps(gc: &Graph, gp: &Graph, nu: &mut [u32], max_passes: usize) -> u64 {
    let dist = all_pairs_distances(gp);
    let before = coco_of_bijection(gc, &dist, nu);
    let k = gc.num_vertices();
    for _ in 0..max_passes {
        let mut improved = false;
        for a in 0..k as NodeId {
            // Restrict partners to communication neighbours plus a ring of
            // candidates; full O(k^2) scanning is fine for k <= 512 but
            // neighbours give most of the benefit first.
            for b in (a + 1)..k as NodeId {
                let delta = swap_delta(gc, &dist, nu, a, b);
                if delta < 0 {
                    nu.swap(a as usize, b as usize);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    let after = coco_of_bijection(gc, &dist, nu);
    debug_assert!(after <= before);
    before - after
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_topology::Topology;

    #[test]
    fn swap_delta_matches_recomputation() {
        let gp = Topology::grid2d(3, 3).graph;
        let gc = generators::randomize_edge_weights(&generators::complete_graph(9), 5, 1);
        let dist = all_pairs_distances(&gp);
        let nu: Vec<u32> = generators::random_permutation(9, 2);
        for a in 0..9u32 {
            for b in (a + 1)..9 {
                let mut swapped = nu.clone();
                swapped.swap(a as usize, b as usize);
                let expected = coco_of_bijection(&gc, &dist, &swapped) as i64
                    - coco_of_bijection(&gc, &dist, &nu) as i64;
                assert_eq!(
                    swap_delta(&gc, &dist, &nu, a, b),
                    expected,
                    "swap ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn refinement_improves_random_bijection() {
        let gp = Topology::grid2d(4, 4).graph;
        let gc = generators::randomize_edge_weights(&generators::grid2d(4, 4), 6, 4);
        let dist = all_pairs_distances(&gp);
        let mut nu: Vec<u32> = generators::random_permutation(16, 5);
        let before = coco_of_bijection(&gc, &dist, &nu);
        let improvement = refine_by_swaps(&gc, &gp, &mut nu, 20);
        let after = coco_of_bijection(&gc, &dist, &nu);
        assert_eq!(before - after, improvement);
        assert!(after < before, "{after} should improve on {before}");
        // Still a bijection.
        let mut sorted = nu.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16u32).collect::<Vec<_>>());
    }

    #[test]
    fn refinement_is_idempotent_at_local_optimum() {
        let gp = Topology::hypercube(3).graph;
        let gc = generators::randomize_edge_weights(&generators::cycle_graph(8), 3, 7);
        let mut nu: Vec<u32> = generators::random_permutation(8, 8);
        refine_by_swaps(&gc, &gp, &mut nu, 50);
        let frozen = nu.clone();
        let second = refine_by_swaps(&gc, &gp, &mut nu, 50);
        assert_eq!(second, 0);
        assert_eq!(nu, frozen);
    }

    #[test]
    fn identity_on_isomorphic_graphs_is_optimal_fixed_point() {
        // Gc equals Gp (unit weights): the identity bijection achieves the
        // minimum possible Coco (= total edge weight), so no swap can improve.
        let gp = Topology::grid2d(3, 4).graph;
        let gc = gp.clone();
        let mut nu: Vec<u32> = (0..12).collect();
        let improvement = refine_by_swaps(&gc, &gp, &mut nu, 10);
        assert_eq!(improvement, 0);
        assert_eq!(nu, (0..12u32).collect::<Vec<_>>());
    }
}
