//! The IDENTITY mapping (experimental case c2).
//!
//! Block `i` of the application-graph partition is assigned to PE `i` of the
//! processor graph. As the paper notes, this trivial bijection often performs
//! surprisingly well because multilevel partitioners number blocks with
//! spatial locality (consecutive blocks tend to be adjacent), which matches
//! the locality of grid-like processor numberings.

use tie_partition::Partition;

use crate::Mapping;

/// Maps block `i` to PE `i`.
///
/// # Panics
/// Panics if the partition has more blocks than there are PEs.
pub fn identity_mapping(partition: &Partition, num_pes: usize) -> Mapping {
    assert!(
        partition.k() <= num_pes,
        "identity mapping needs at least as many PEs as blocks ({} > {num_pes})",
        partition.k()
    );
    let nu: Vec<u32> = (0..partition.k() as u32).collect();
    Mapping::from_partition(partition, &nu, num_pes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_partition::PartitionConfig;

    #[test]
    fn identity_is_identity_on_blocks() {
        let g = generators::grid2d(8, 8);
        let p = tie_partition::partition(&g, &PartitionConfig::new(16, 0));
        let m = identity_mapping(&p, 16);
        for v in g.vertices() {
            assert_eq!(m.pe_of(v), p.block_of(v));
        }
        assert!(m.is_balanced(0.03 + 0.05));
    }

    #[test]
    fn identity_with_more_pes_than_blocks() {
        let p = Partition::new(vec![0, 1, 1, 0], 2);
        let m = identity_mapping(&p, 8);
        assert_eq!(m.num_pes(), 8);
        assert_eq!(m.load_per_pe(), vec![2, 2, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn identity_rejects_too_few_pes() {
        let p = Partition::new(vec![0, 1, 2], 3);
        let _ = identity_mapping(&p, 2);
    }
}
