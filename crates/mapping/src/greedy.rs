//! Greedy construction mappings (experimental cases c3 and c4).
//!
//! Both heuristics place the communication-graph vertices onto PEs one at a
//! time, starting from the heaviest communicator placed on a central PE:
//!
//! * **GREEDYALLC** (case c3, the best performer in Glantz et al. 2015):
//!   the next vertex is the unmapped one with the largest *total*
//!   communication volume to all already-mapped vertices, and it is placed on
//!   the free PE minimizing the total communication-weighted distance to all
//!   already-placed neighbours.
//! * **GREEDYMIN** (case c4, the construction method of Brandfass et al. as
//!   used by LibTopoMap): the next vertex is the unmapped one with the
//!   heaviest *single* edge to an already-mapped vertex, and it is placed on
//!   the free PE closest to that single neighbour's PE (communication-weighted
//!   distance to all placed neighbours breaks ties).

use tie_graph::traversal::{all_pairs_distances, DistanceMatrix};
use tie_graph::{Graph, NodeId, Weight};
use tie_partition::Partition;

use crate::Mapping;

/// Which greedy variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Variant {
    AllC,
    Min,
}

/// GREEDYALLC: returns the bijection `nu[block] = PE`.
pub fn greedy_allc(gc: &Graph, gp: &Graph) -> Vec<u32> {
    greedy_construct(gc, gp, Variant::AllC)
}

/// GREEDYMIN: returns the bijection `nu[block] = PE`.
pub fn greedy_min(gc: &Graph, gp: &Graph) -> Vec<u32> {
    greedy_construct(gc, gp, Variant::Min)
}

/// GREEDYALLC composed with a partition into a full vertex-to-PE [`Mapping`].
pub fn greedy_allc_mapping(graph: &Graph, partition: &Partition, gp: &Graph) -> Mapping {
    let gc = crate::communication_graph(graph, partition);
    let nu = greedy_allc(&gc, gp);
    Mapping::from_partition(partition, &nu, gp.num_vertices())
}

/// GREEDYMIN composed with a partition into a full vertex-to-PE [`Mapping`].
pub fn greedy_min_mapping(graph: &Graph, partition: &Partition, gp: &Graph) -> Mapping {
    let gc = crate::communication_graph(graph, partition);
    let nu = greedy_min(&gc, gp);
    Mapping::from_partition(partition, &nu, gp.num_vertices())
}

/// Shared construction loop of both variants.
///
/// # Panics
/// Panics if `gc` has more vertices than `gp` has PEs (no bijection exists).
fn greedy_construct(gc: &Graph, gp: &Graph, variant: Variant) -> Vec<u32> {
    let k = gc.num_vertices();
    let p = gp.num_vertices();
    assert!(
        k <= p,
        "communication graph has more vertices ({k}) than there are PEs ({p})"
    );
    if k == 0 {
        return Vec::new();
    }
    let dist = all_pairs_distances(gp);

    let mut nu = vec![u32::MAX; k];
    let mut pe_used = vec![false; p];
    let mut mapped = vec![false; k];

    // Seed: heaviest communicator onto the most central PE.
    let vc0 = (0..k as NodeId)
        .max_by_key(|&v| gc.weighted_degree(v))
        .unwrap_or(0);
    let vp0 = (0..p as NodeId)
        .min_by_key(|&q| total_distance(&dist, q, p))
        .unwrap_or(0);
    nu[vc0 as usize] = vp0;
    pe_used[vp0 as usize] = true;
    mapped[vc0 as usize] = true;

    for _ in 1..k {
        // Select the next communication-graph vertex.
        let selected = match variant {
            Variant::AllC => select_max_total(gc, &mapped),
            Variant::Min => select_max_single(gc, &mapped),
        };
        // `k <= p` and the loop bound keep a vertex and a PE available on
        // every round; `None` can only mean the invariant broke, and then
        // stopping early still yields a well-formed partial `nu`.
        let Some(vc) = selected else { break };
        // Select its PE.
        let selected_pe = match variant {
            Variant::AllC => select_pe_allc(gc, &dist, &nu, &pe_used, vc, p),
            Variant::Min => select_pe_min(gc, &dist, &nu, &pe_used, vc, p),
        };
        let Some(vp) = selected_pe else { break };
        nu[vc as usize] = vp;
        pe_used[vp as usize] = true;
        mapped[vc as usize] = true;
    }
    nu
}

fn total_distance(dist: &DistanceMatrix, from: NodeId, n: usize) -> u64 {
    (0..n as NodeId).map(|t| dist.get(from, t) as u64).sum()
}

/// Unmapped vertex with the largest total edge weight to mapped vertices
/// (fallback: largest weighted degree).
fn select_max_total(gc: &Graph, mapped: &[bool]) -> Option<NodeId> {
    let mut best: Option<(NodeId, Weight, Weight)> = None; // (v, to_mapped, wdeg)
    for v in gc.vertices() {
        if mapped[v as usize] {
            continue;
        }
        let to_mapped: Weight = gc
            .edges_of(v)
            .filter(|&(u, _)| mapped[u as usize])
            .map(|(_, w)| w)
            .sum();
        let wdeg = gc.weighted_degree(v);
        let better = match best {
            None => true,
            Some((_, bt, bw)) => to_mapped > bt || (to_mapped == bt && wdeg > bw),
        };
        if better {
            best = Some((v, to_mapped, wdeg));
        }
    }
    best.map(|(v, _, _)| v)
}

/// Unmapped vertex with the heaviest single edge to a mapped vertex
/// (fallback: largest weighted degree).
fn select_max_single(gc: &Graph, mapped: &[bool]) -> Option<NodeId> {
    let mut best: Option<(NodeId, Weight, Weight)> = None; // (v, max_edge, wdeg)
    for v in gc.vertices() {
        if mapped[v as usize] {
            continue;
        }
        let max_edge: Weight = gc
            .edges_of(v)
            .filter(|&(u, _)| mapped[u as usize])
            .map(|(_, w)| w)
            .max()
            .unwrap_or(0);
        let wdeg = gc.weighted_degree(v);
        let better = match best {
            None => true,
            Some((_, bm, bw)) => max_edge > bm || (max_edge == bm && wdeg > bw),
        };
        if better {
            best = Some((v, max_edge, wdeg));
        }
    }
    best.map(|(v, _, _)| v)
}

/// Communication-weighted total distance of PE `q` to the PEs of `vc`'s
/// already-mapped neighbours.
fn weighted_distance_to_mapped(
    gc: &Graph,
    dist: &DistanceMatrix,
    nu: &[u32],
    vc: NodeId,
    q: NodeId,
) -> u64 {
    gc.edges_of(vc)
        .filter(|&(u, _)| nu[u as usize] != u32::MAX)
        .map(|(u, w)| w * dist.get(q, nu[u as usize]) as u64)
        .sum()
}

/// PE choice for GREEDYALLC: minimal communication-weighted distance to all
/// placed neighbours; ties broken by total distance to all used PEs, so that
/// the mapping stays compact even when `vc` has no placed neighbours yet.
fn select_pe_allc(
    gc: &Graph,
    dist: &DistanceMatrix,
    nu: &[u32],
    pe_used: &[bool],
    vc: NodeId,
    p: usize,
) -> Option<u32> {
    let mut best: Option<(u32, u64, u64)> = None;
    for q in 0..p as NodeId {
        if pe_used[q as usize] {
            continue;
        }
        let primary = weighted_distance_to_mapped(gc, dist, nu, vc, q);
        let secondary: u64 = (0..p as NodeId)
            .filter(|&t| pe_used[t as usize])
            .map(|t| dist.get(q, t) as u64)
            .sum();
        let better = match best {
            None => true,
            Some((_, bp, bs)) => primary < bp || (primary == bp && secondary < bs),
        };
        if better {
            best = Some((q, primary, secondary));
        }
    }
    best.map(|(q, _, _)| q)
}

/// PE choice for GREEDYMIN: minimal distance to the PE of the single
/// heaviest placed neighbour; communication-weighted distance breaks ties.
fn select_pe_min(
    gc: &Graph,
    dist: &DistanceMatrix,
    nu: &[u32],
    pe_used: &[bool],
    vc: NodeId,
    p: usize,
) -> Option<u32> {
    // The heaviest already-placed neighbour (if any).
    let anchor = gc
        .edges_of(vc)
        .filter(|&(u, _)| nu[u as usize] != u32::MAX)
        .max_by_key(|&(_, w)| w)
        .map(|(u, _)| nu[u as usize]);
    let mut best: Option<(u32, u64, u64)> = None;
    for q in 0..p as NodeId {
        if pe_used[q as usize] {
            continue;
        }
        let primary = match anchor {
            Some(a) => dist.get(q, a) as u64,
            None => (0..p as NodeId)
                .filter(|&t| pe_used[t as usize])
                .map(|t| dist.get(q, t) as u64)
                .sum(),
        };
        let secondary = weighted_distance_to_mapped(gc, dist, nu, vc, q);
        let better = match best {
            None => true,
            Some((_, bp, bs)) => primary < bp || (primary == bp && secondary < bs),
        };
        if better {
            best = Some((q, primary, secondary));
        }
    }
    best.map(|(q, _, _)| q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_partition::PartitionConfig;
    use tie_topology::Topology;

    /// Coco of a bijection nu on the communication graph.
    fn coco_of_nu(gc: &Graph, gp: &Graph, nu: &[u32]) -> u64 {
        let dist = all_pairs_distances(gp);
        gc.edges()
            .map(|(u, v, w)| w * dist.get(nu[u as usize], nu[v as usize]) as u64)
            .sum()
    }

    fn is_injective(nu: &[u32]) -> bool {
        let mut seen = std::collections::HashSet::new();
        nu.iter().all(|&p| seen.insert(p))
    }

    #[test]
    fn both_variants_produce_injective_mappings() {
        let ga = generators::barabasi_albert(600, 3, 1);
        let gp = Topology::grid2d(4, 4).graph;
        let part = tie_partition::partition(&ga, &PartitionConfig::new(16, 3));
        let gc = crate::communication_graph(&ga, &part);
        for nu in [greedy_allc(&gc, &gp), greedy_min(&gc, &gp)] {
            assert_eq!(nu.len(), 16);
            assert!(is_injective(&nu));
            assert!(nu.iter().all(|&p| (p as usize) < 16));
        }
    }

    #[test]
    fn greedy_beats_random_mapping_on_structured_comm_graph() {
        // Communication graph = a 2D grid (strong locality); the processor
        // graph is the same grid. Greedy construction should achieve a far
        // lower Coco than a scrambled bijection.
        let gp = Topology::grid2d(4, 4).graph;
        let gc = generators::randomize_edge_weights(&generators::grid2d(4, 4), 5, 2);
        let nu_allc = greedy_allc(&gc, &gp);
        let nu_min = greedy_min(&gc, &gp);
        let scrambled: Vec<u32> = tie_graph::generators::random_permutation(16, 3);
        let c_allc = coco_of_nu(&gc, &gp, &nu_allc);
        let c_min = coco_of_nu(&gc, &gp, &nu_min);
        let c_rand = coco_of_nu(&gc, &gp, &scrambled);
        assert!(c_allc < c_rand, "allc {c_allc} should beat random {c_rand}");
        assert!(c_min < c_rand, "min {c_min} should beat random {c_rand}");
    }

    #[test]
    fn seed_vertex_is_heaviest_communicator_on_central_pe() {
        // Star communication graph: the centre must be placed first, on the
        // centre of a path processor graph.
        let mut b = tie_graph::GraphBuilder::new(5);
        for leaf in 1..5u32 {
            b.add_edge(0, leaf, 10);
        }
        let gc = b.build();
        let gp = generators::path_graph(5);
        let nu = greedy_allc(&gc, &gp);
        // Centre of a 5-path is vertex 2.
        assert_eq!(nu[0], 2);
        assert!(is_injective(&nu));
    }

    #[test]
    fn full_mapping_helpers_balance() {
        let ga = generators::watts_strogatz(800, 6, 0.1, 5);
        let gp = Topology::hypercube(4).graph;
        let part = tie_partition::partition(&ga, &PartitionConfig::new(16, 9));
        let m1 = greedy_allc_mapping(&ga, &part, &gp);
        let m2 = greedy_min_mapping(&ga, &part, &gp);
        assert_eq!(m1.num_tasks(), 800);
        assert!(m1.is_balanced(0.1));
        assert!(m2.is_balanced(0.1));
        // Same partition, hence identical load distributions up to PE renaming.
        let mut l1 = m1.load_per_pe();
        let mut l2 = m2.load_per_pe();
        l1.sort_unstable();
        l2.sort_unstable();
        assert_eq!(l1, l2);
    }

    #[test]
    fn single_block_case() {
        let gc = Graph::from_edges(1, &[]);
        let gp = generators::path_graph(4);
        let nu = greedy_allc(&gc, &gp);
        assert_eq!(nu.len(), 1);
        assert!((nu[0] as usize) < 4);
    }
}
