//! Recursive multisection mapping guided by the topology's own hierarchy.
//!
//! The related-work section of the paper describes recursive multisection
//! (Chan et al., Jeannot et al., Schulz & Träff) as the natural approach when
//! the parallel machine is *hierarchically organized*: model the hierarchy of
//! the topology as a tree and partition the communication graph according to
//! the tree's fan-out, level by level. For a partial cube the label digits
//! provide exactly such a hierarchy (Section 2 of the paper), so this module
//! implements multisection on top of the digit hierarchy: at each level the
//! current group of communication vertices is bisected with target sizes
//! matching the two halves of the PE group (vertices whose label digit is 0
//! or 1). The result is another initial-mapping baseline, complementary to
//! DRB (which bisects the processor graph structurally instead of by digits).

use tie_graph::{induced_subgraph, Graph, NodeId};
use tie_partition::multilevel::multilevel_bisection;
use tie_partition::{Partition, PartitionConfig};
use tie_topology::PartialCubeLabeling;

use crate::Mapping;

/// Computes a bijection `nu[block] = PE` by recursive multisection along the
/// digits of the partial-cube labelling (most significant digit first).
///
/// # Panics
/// Panics if `gc` has more vertices than there are PEs.
pub fn multisection(gc: &Graph, pcube: &PartialCubeLabeling, seed: u64) -> Vec<u32> {
    let k = gc.num_vertices();
    let p = pcube.num_pes();
    assert!(
        k <= p,
        "communication graph has more vertices ({k}) than there are PEs ({p})"
    );
    let mut nu = vec![u32::MAX; k];
    let c_vertices: Vec<NodeId> = gc.vertices().collect();
    let pe_ids: Vec<u32> = (0..p as u32).collect();
    recurse(gc, pcube, &c_vertices, &pe_ids, pcube.dim, seed, &mut nu);
    debug_assert!(nu.iter().all(|&x| x != u32::MAX));
    nu
}

/// Multisection composed with a partition into a full vertex-to-PE [`Mapping`].
pub fn multisection_mapping(
    graph: &Graph,
    partition: &Partition,
    pcube: &PartialCubeLabeling,
    seed: u64,
) -> Mapping {
    let gc = crate::communication_graph(graph, partition);
    let nu = multisection(&gc, pcube, seed);
    Mapping::from_partition(partition, &nu, pcube.num_pes())
}

fn recurse(
    gc: &Graph,
    pcube: &PartialCubeLabeling,
    c_vertices: &[NodeId],
    pes: &[u32],
    digit: usize,
    seed: u64,
    nu: &mut [u32],
) {
    if c_vertices.is_empty() {
        return;
    }
    if pes.len() == 1 || c_vertices.len() == 1 || digit == 0 {
        for (i, &c) in c_vertices.iter().enumerate() {
            nu[c as usize] = pes[i.min(pes.len() - 1)];
        }
        return;
    }
    // Split the PE group by the current label digit. Digits that do not
    // separate this group are skipped (recursion on the next digit).
    let bit = digit - 1;
    let (p0, p1): (Vec<u32>, Vec<u32>) = pes
        .iter()
        .partition(|&&pe| (pcube.labels[pe as usize] >> bit) & 1 == 0);
    if p0.is_empty() || p1.is_empty() {
        recurse(gc, pcube, c_vertices, pes, digit - 1, seed, nu);
        return;
    }

    // Bisect the communication subset with cardinality targets matching the
    // PE halves.
    let c_sub = induced_subgraph(gc, c_vertices);
    let mut unit = c_sub.graph.clone();
    unit.set_vertex_weights(vec![1; unit.num_vertices()]);
    let share0 = (c_vertices.len() * p0.len()).div_ceil(pes.len());
    let target0 = share0.min(c_vertices.len()).min(p0.len()) as u64;
    let cfg = PartitionConfig {
        epsilon: 0.0,
        ..PartitionConfig::new(2, seed)
    };
    let bis = multilevel_bisection(&unit, target0, &cfg, seed);
    let (mut c0, mut c1): (Vec<NodeId>, Vec<NodeId>) = (Vec::new(), Vec::new());
    for (local, &orig) in c_sub.to_parent.iter().enumerate() {
        if bis.side[local] == 0 {
            c0.push(orig);
        } else {
            c1.push(orig);
        }
    }
    // Cardinality fix-up: each side may receive at most as many communication
    // vertices as it has PEs.
    while c0.len() > p0.len() {
        let Some(v) = c0.pop() else { break };
        c1.push(v);
    }
    while c1.len() > p1.len() {
        let Some(v) = c1.pop() else { break };
        c0.push(v);
    }
    recurse(gc, pcube, &c0, &p0, digit - 1, seed.wrapping_add(1), nu);
    recurse(gc, pcube, &c1, &p1, digit - 1, seed.wrapping_add(2), nu);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_graph::traversal::all_pairs_distances;
    use tie_topology::{recognize_partial_cube, Topology};

    fn coco_of_nu(gc: &Graph, gp: &Graph, nu: &[u32]) -> u64 {
        let dist = all_pairs_distances(gp);
        gc.edges()
            .map(|(u, v, w)| w * dist.get(nu[u as usize], nu[v as usize]) as u64)
            .sum()
    }

    fn is_injective(nu: &[u32]) -> bool {
        let mut seen = std::collections::HashSet::new();
        nu.iter().all(|&p| seen.insert(p))
    }

    #[test]
    fn multisection_is_a_bijection_on_equal_sizes() {
        let ga = generators::barabasi_albert(600, 3, 2);
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let part = tie_partition::partition(&ga, &PartitionConfig::new(16, 4));
        let gc = crate::communication_graph(&ga, &part);
        let nu = multisection(&gc, &pcube, 7);
        assert_eq!(nu.len(), 16);
        assert!(is_injective(&nu));
        assert!(nu.iter().all(|&p| (p as usize) < 16));
    }

    #[test]
    fn multisection_exploits_locality() {
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let gc = generators::randomize_edge_weights(&generators::grid2d(4, 4), 5, 1);
        let nu = multisection(&gc, &pcube, 3);
        let random: Vec<u32> = generators::random_permutation(16, 9);
        assert!(
            coco_of_nu(&gc, &topo.graph, &nu) < coco_of_nu(&gc, &topo.graph, &random),
            "multisection should beat a random bijection on a structured communication graph"
        );
    }

    #[test]
    fn multisection_on_hypercube_and_torus() {
        let ga = generators::watts_strogatz(512, 6, 0.1, 3);
        for topo in [Topology::hypercube(4), Topology::torus2d(4, 4)] {
            let pcube = recognize_partial_cube(&topo.graph).unwrap();
            let part = tie_partition::partition(&ga, &PartitionConfig::new(16, 2));
            let m = multisection_mapping(&ga, &part, &pcube, 5);
            assert_eq!(m.num_tasks(), 512);
            assert!(m.is_balanced(0.1), "{}", topo.name);
            let nu_check: std::collections::HashSet<u32> = (0..16u32)
                .map(|b| m.pe_of(ga.vertices().find(|&v| part.block_of(v) == b).unwrap()))
                .collect();
            assert_eq!(
                nu_check.len(),
                16,
                "{}: block-to-PE map must stay injective",
                topo.name
            );
        }
    }

    #[test]
    fn multisection_with_fewer_blocks_than_pes() {
        let gc = generators::cycle_graph(5);
        let topo = Topology::grid2d(3, 3);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let nu = multisection(&gc, &pcube, 1);
        assert_eq!(nu.len(), 5);
        assert!(is_injective(&nu));
        assert!(nu.iter().all(|&p| (p as usize) < 9));
    }

    #[test]
    fn multisection_deterministic() {
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let gc = generators::randomize_edge_weights(&generators::grid2d(4, 4), 5, 2);
        assert_eq!(multisection(&gc, &pcube, 11), multisection(&gc, &pcube, 11));
    }
}
