//! # tie-mapping
//!
//! Baseline mapping algorithms for the TIMER reproduction ("Topology-induced
//! Enhancement of Mappings", ICPP 2018).
//!
//! The paper evaluates TIMER as an *enhancer* of mappings produced by four
//! different strategies (experimental cases c1–c4). This crate provides
//! native re-implementations of those strategies:
//!
//! * [`identity`] — case c2: block `i` of the partition goes to PE `i`
//!   (benefits from the spatial locality of the partitioner's block
//!   numbering),
//! * [`greedy`] — cases c3 and c4: the greedy construction heuristics
//!   GREEDYALLC and GREEDYMIN of Brandfass et al. / Glantz et al.,
//! * [`drb`] — case c1: dual recursive bisection in the spirit of SCOTCH's
//!   generic mapping routine,
//! * [`ncm`] — a Walshaw–Cross style pairwise-swap refinement on the
//!   communication graph (network-cost-matrix baseline, used in ablations),
//! * [`comm`] — communication-graph construction (`Gc` of Figure 1).
//!
//! The central type is [`Mapping`]: an assignment of every application-graph
//! vertex to a PE.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod comm;
pub mod drb;
pub mod greedy;
pub mod identity;
pub mod multisection;
pub mod ncm;
pub mod random;

pub use comm::communication_graph;
pub use drb::dual_recursive_bisection;
pub use greedy::{greedy_allc, greedy_min};
pub use identity::identity_mapping;
pub use multisection::{multisection, multisection_mapping};
pub use ncm::refine_by_swaps;
pub use random::{random_mapping, round_robin_mapping};

use tie_graph::{Graph, NodeId, Weight};
use tie_partition::Partition;

/// A mapping `µ : Va -> Vp` of application vertices to processing elements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    assignment: Vec<u32>,
    num_pes: usize,
}

impl Mapping {
    /// Wraps a raw assignment (one PE id per application vertex).
    ///
    /// # Panics
    /// Panics if any PE id is out of range.
    pub fn new(assignment: Vec<u32>, num_pes: usize) -> Self {
        assert!(
            assignment.iter().all(|&p| (p as usize) < num_pes),
            "PE id out of range"
        );
        Mapping {
            assignment,
            num_pes,
        }
    }

    /// Fallible variant of [`Mapping::new`] for untrusted assignments (e.g.
    /// read from a file): an out-of-range PE id is reported as an error
    /// naming the offending vertex instead of panicking.
    pub fn try_new(assignment: Vec<u32>, num_pes: usize) -> Result<Self, String> {
        if let Some((v, &p)) = assignment
            .iter()
            .enumerate()
            .find(|(_, &p)| (p as usize) >= num_pes)
        {
            return Err(format!(
                "vertex {v} is assigned to PE {p}, but only PEs 0..{num_pes} exist"
            ));
        }
        Ok(Mapping {
            assignment,
            num_pes,
        })
    }

    /// Builds a mapping from a partition of `Ga` and a bijection
    /// `block -> PE` (`nu[b]` is the PE of block `b`).
    ///
    /// # Panics
    /// Panics if `nu` does not have exactly one entry per block.
    pub fn from_partition(partition: &Partition, nu: &[u32], num_pes: usize) -> Self {
        assert_eq!(partition.k(), nu.len(), "bijection must cover every block");
        let assignment = partition
            .assignment()
            .iter()
            .map(|&b| nu[b as usize])
            .collect();
        Mapping::new(assignment, num_pes)
    }

    /// PE of application vertex `va`.
    #[inline]
    pub fn pe_of(&self, va: NodeId) -> u32 {
        self.assignment[va as usize]
    }

    /// Number of PEs of the target machine.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Number of application vertices.
    pub fn num_tasks(&self) -> usize {
        self.assignment.len()
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Consumes the mapping and returns the assignment vector.
    pub fn into_assignment(self) -> Vec<u32> {
        self.assignment
    }

    /// Number of tasks mapped to every PE.
    pub fn load_per_pe(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.num_pes];
        for &p in &self.assignment {
            load[p as usize] += 1;
        }
        load
    }

    /// Total vertex weight mapped to every PE.
    pub fn weight_per_pe(&self, graph: &Graph) -> Vec<Weight> {
        let mut load = vec![0 as Weight; self.num_pes];
        for v in graph.vertices() {
            load[self.assignment[v as usize] as usize] += graph.vertex_weight(v);
        }
        load
    }

    /// Checks the balance condition of Eq. (1):
    /// `|µ^{-1}(vp)| <= (1 + eps) * ceil(|Va| / #used PEs)`.
    pub fn is_balanced(&self, eps: f64) -> bool {
        let used = self.load_per_pe().iter().filter(|&&l| l > 0).count();
        if used == 0 {
            return true;
        }
        let ideal = self.num_tasks().div_ceil(used);
        let max = self.load_per_pe().into_iter().max().unwrap_or(0);
        max as f64 <= (1.0 + eps) * ideal as f64 + 1e-9
    }

    /// Maximum number of tasks on any PE.
    pub fn max_load(&self) -> usize {
        self.load_per_pe().into_iter().max().unwrap_or(0)
    }

    /// Converts the mapping back into a partition of `Ga` with one block per
    /// PE (blocks of unused PEs are empty).
    pub fn as_partition(&self) -> Partition {
        Partition::new(self.assignment.clone(), self.num_pes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_partition::PartitionConfig;

    #[test]
    fn mapping_from_partition_composes_bijection() {
        let g = generators::grid2d(4, 4);
        let p = tie_partition::partition(&g, &PartitionConfig::new(4, 1));
        // Reverse bijection: block b -> PE 3 - b.
        let nu: Vec<u32> = vec![3, 2, 1, 0];
        let m = Mapping::from_partition(&p, &nu, 4);
        for v in g.vertices() {
            assert_eq!(m.pe_of(v), 3 - p.block_of(v));
        }
        assert_eq!(m.num_pes(), 4);
        assert_eq!(m.num_tasks(), 16);
    }

    #[test]
    fn load_and_balance() {
        let m = Mapping::new(vec![0, 0, 1, 1, 2, 2], 4);
        assert_eq!(m.load_per_pe(), vec![2, 2, 2, 0]);
        assert!(m.is_balanced(0.0));
        assert_eq!(m.max_load(), 2);
        let skew = Mapping::new(vec![0, 0, 0, 0, 1, 2], 3);
        assert!(!skew.is_balanced(0.03));
    }

    #[test]
    fn weight_per_pe_uses_vertex_weights() {
        let mut b = tie_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.set_vertex_weight(2, 10);
        let g = b.build();
        let m = Mapping::new(vec![0, 0, 1], 2);
        assert_eq!(m.weight_per_pe(&g), vec![2, 10]);
    }

    #[test]
    fn as_partition_roundtrip() {
        let m = Mapping::new(vec![1, 0, 1, 0], 2);
        let p = m.as_partition();
        assert_eq!(p.k(), 2);
        assert_eq!(p.assignment(), m.assignment());
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_pe() {
        let _ = Mapping::new(vec![0, 7], 4);
    }
}
