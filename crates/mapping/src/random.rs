//! Control baselines: random and round-robin block-to-PE bijections.
//!
//! These are not serious mapping algorithms — they exist to calibrate the
//! other baselines and TIMER in the benchmarks (any topology-aware method
//! must beat a random bijection on Coco) and to provide worst-case-ish
//! starting points for stress-testing the enhancer.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tie_graph::Graph;
use tie_partition::Partition;

use crate::Mapping;

/// A uniformly random bijection `block -> PE`.
///
/// # Panics
/// Panics if `k > num_pes` (no bijection exists).
pub fn random_bijection(k: usize, num_pes: usize, seed: u64) -> Vec<u32> {
    assert!(k <= num_pes, "need at least as many PEs as blocks");
    let mut pes: Vec<u32> = (0..num_pes as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    pes.shuffle(&mut rng);
    pes.truncate(k);
    pes
}

/// Random mapping of a partitioned application graph.
pub fn random_mapping(partition: &Partition, num_pes: usize, seed: u64) -> Mapping {
    let nu = random_bijection(partition.k(), num_pes, seed);
    Mapping::from_partition(partition, &nu, num_pes)
}

/// Maps vertex `v` of the application graph directly to PE `v mod num_pes`
/// (ignoring any partition): the classic round-robin / block-cyclic
/// assignment used as a strawman in mapping papers. Balanced by construction
/// but oblivious to both communication and topology.
pub fn round_robin_mapping(graph: &Graph, num_pes: usize) -> Mapping {
    let assignment: Vec<u32> = graph
        .vertices()
        .map(|v| (v as usize % num_pes) as u32)
        .collect();
    Mapping::new(assignment, num_pes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;
    use tie_metrics_check::coco_check;
    use tie_partition::PartitionConfig;

    /// Minimal local Coco computation to avoid a circular dev-dependency on
    /// tie-metrics.
    mod tie_metrics_check {
        use tie_graph::traversal::all_pairs_distances;
        use tie_graph::Graph;

        use crate::Mapping;

        pub fn coco_check(ga: &Graph, gp: &Graph, m: &Mapping) -> u64 {
            let dist = all_pairs_distances(gp);
            ga.edges()
                .map(|(u, v, w)| w * dist.get(m.pe_of(u), m.pe_of(v)) as u64)
                .sum()
        }
    }

    #[test]
    fn random_bijection_is_injective_and_seeded() {
        let a = random_bijection(16, 64, 5);
        let b = random_bijection(16, 64, 5);
        let c = random_bijection(16, 64, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let unique: std::collections::HashSet<u32> = a.iter().copied().collect();
        assert_eq!(unique.len(), 16);
        assert!(a.iter().all(|&p| p < 64));
    }

    #[test]
    fn round_robin_is_balanced_but_topology_oblivious() {
        let ga = generators::barabasi_albert(640, 3, 1);
        let gp = generators::grid2d(4, 4);
        let m = round_robin_mapping(&ga, 16);
        assert!(m.is_balanced(0.0));
        // A partition-based greedy mapping should beat round robin on Coco.
        let part = tie_partition::partition(&ga, &PartitionConfig::new(16, 1));
        let greedy = crate::greedy::greedy_allc_mapping(&ga, &part, &gp);
        assert!(
            coco_check(&ga, &gp, &greedy) < coco_check(&ga, &gp, &m),
            "topology-aware mapping must beat round robin"
        );
    }

    #[test]
    fn random_mapping_composes_with_partition() {
        let ga = generators::watts_strogatz(320, 4, 0.1, 2);
        let part = tie_partition::partition(&ga, &PartitionConfig::new(16, 3));
        let m = random_mapping(&part, 16, 9);
        assert_eq!(m.num_tasks(), 320);
        assert!(m.is_balanced(0.1));
    }

    #[test]
    #[should_panic]
    fn random_bijection_rejects_too_few_pes() {
        let _ = random_bijection(10, 4, 0);
    }
}
