//! Property-based tests for the mapping baselines: every strategy must
//! produce an injective block-to-PE assignment, compose into a balanced
//! mapping, and beat a random bijection on average for structured inputs.

use proptest::prelude::*;

use tie_graph::traversal::all_pairs_distances;
use tie_graph::{generators, Graph};
use tie_mapping::{
    communication_graph, dual_recursive_bisection, greedy_allc, greedy_min, multisection,
    random::random_bijection,
};
use tie_partition::{partition, PartitionConfig};
use tie_topology::{recognize_partial_cube, Topology};

fn coco_of_nu(gc: &Graph, gp: &Graph, nu: &[u32]) -> u64 {
    let dist = all_pairs_distances(gp);
    gc.edges()
        .map(|(u, v, w)| w * dist.get(nu[u as usize], nu[v as usize]) as u64)
        .sum()
}

fn injective(nu: &[u32]) -> bool {
    let mut seen = std::collections::HashSet::new();
    nu.iter().all(|&p| seen.insert(p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// All four constructive baselines produce valid bijections on random
    /// partitioned complex networks and arbitrary small-topology targets.
    #[test]
    fn baselines_produce_bijections(
        n in 200..500usize,
        seed in 0..100u64,
        topo_idx in 0..4usize,
    ) {
        let ga = generators::barabasi_albert(n, 3, seed);
        let topologies = [
            Topology::grid2d(4, 4),
            Topology::torus2d(4, 4),
            Topology::hypercube(4),
            Topology::grid3d(4, 2, 2),
        ];
        let topo = &topologies[topo_idx];
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let k = topo.num_pes();
        let part = partition(&ga, &PartitionConfig::new(k, seed));
        let gc = communication_graph(&ga, &part);

        for (name, nu) in [
            ("greedy_allc", greedy_allc(&gc, &topo.graph)),
            ("greedy_min", greedy_min(&gc, &topo.graph)),
            ("drb", dual_recursive_bisection(&gc, &topo.graph, seed)),
            ("multisection", multisection(&gc, &pcube, seed)),
        ] {
            prop_assert_eq!(nu.len(), k, "{}", name);
            prop_assert!(injective(&nu), "{} must be injective", name);
            prop_assert!(nu.iter().all(|&p| (p as usize) < k), "{} PE ids in range", name);
        }
    }

    /// On a communication graph isomorphic to the processor grid, every
    /// topology-aware baseline beats the expected cost of a random bijection.
    #[test]
    fn baselines_beat_random_on_structured_instances(seed in 0..50u64) {
        let topo = Topology::grid2d(4, 4);
        let pcube = recognize_partial_cube(&topo.graph).unwrap();
        let gc = generators::randomize_edge_weights(&generators::grid2d(4, 4), 5, seed);
        // Average random cost over a handful of random bijections.
        let random_costs: Vec<u64> = (0..5)
            .map(|i| coco_of_nu(&gc, &topo.graph, &random_bijection(16, 16, seed * 7 + i)))
            .collect();
        let random_avg = random_costs.iter().sum::<u64>() as f64 / random_costs.len() as f64;
        for (name, nu) in [
            ("greedy_allc", greedy_allc(&gc, &topo.graph)),
            ("greedy_min", greedy_min(&gc, &topo.graph)),
            ("drb", dual_recursive_bisection(&gc, &topo.graph, seed)),
            ("multisection", multisection(&gc, &pcube, seed)),
        ] {
            let cost = coco_of_nu(&gc, &topo.graph, &nu) as f64;
            prop_assert!(
                cost < random_avg,
                "{} (cost {cost}) should beat the average random bijection ({random_avg})",
                name
            );
        }
    }
}
