//! # tie-mapd
//!
//! The persistent mapping service: everything between `tie-timer`'s pure
//! `enhance_with_context` entry point and a long-running daemon serving
//! mapping requests over a Unix domain socket.
//!
//! The crate is three layers, each usable on its own:
//!
//! 1. **[`cache`] + [`admission`]** — a keyed, capacity-bounded cache of
//!    [`tie_timer::TopologyContext`]s with single-flight construction, and an
//!    admission gate bounding in-flight enhancements to hardware parallelism
//!    with deadline-aware rejection of queued requests.
//! 2. **[`service`]** — [`Service::execute`]: one [`protocol::MapRequest`]
//!    in, one [`protocol::MapResponse`] out. This is the single code path
//!    shared by the `mapd` daemon and `map_file`'s one-shot mode, which is
//!    what makes a served mapping byte-identical to the one-shot result.
//! 3. **[`server`] + [`client`] + [`protocol`]** — a length-prefixed
//!    newline-JSON framing over a Unix socket, the daemon accept/drain loop,
//!    and a small blocking client.
//!
//! The correctness stance follows `docs/RESILIENCE.md`: every cache is a
//! latency optimization, never a correctness dependency — a cache-hit
//! response is byte-identical to a cache-miss response, and a freshly
//! started daemon answers exactly like one that has been running for days.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod admission;
pub mod cache;
pub mod cli;
#[cfg(unix)]
pub mod client;
pub mod json;
pub mod protocol;
#[cfg(unix)]
pub mod server;
pub mod service;
pub mod topo;

pub use admission::Admission;
pub use cache::{CacheDisposition, CacheStats, TopologyCache};
pub use service::{MapCase, ServeError, Service, ServiceOptions};
