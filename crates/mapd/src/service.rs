//! The request execution path shared by the daemon and the one-shot CLI.
//!
//! [`Service::execute`] is the *only* route from a [`MapRequest`] to a
//! [`MapResponse`]: `mapd` calls it per connection frame, `map_file` calls
//! it once per invocation. One code path is what makes a served mapping
//! byte-identical to the one-shot result for the same request — there is no
//! second pipeline to drift.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tie_fault::FaultHandle;
use tie_graph::{io, Graph, GraphBuilder};
use tie_mapping::{drb::drb_mapping, greedy, identity_mapping};
use tie_metrics::evaluate;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{CancelToken, TieError, Timer, TimerConfig, TopologyContext};
use tie_trace::TraceHandle;

use crate::admission::Admission;
use crate::cache::{CacheStats, TopologyCache};
use crate::protocol::{GraphSource, MapRequest, MapResponse, QualitySummary};
use crate::topo::parse_topology;

/// The four experimental cases of the paper's Section 7 pipeline, selecting
/// how the initial mapping is derived from the partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapCase {
    /// Dual recursive bisection.
    C1Drb,
    /// Identity block-to-PE bijection.
    C2Identity,
    /// Greedy all-communication.
    C3GreedyAllC,
    /// Greedy minimum.
    C4GreedyMin,
}

impl MapCase {
    /// Parses the wire/CLI id (`c1`..`c4`).
    pub fn parse(s: &str) -> Option<MapCase> {
        match s {
            "c1" => Some(MapCase::C1Drb),
            "c2" => Some(MapCase::C2Identity),
            "c3" => Some(MapCase::C3GreedyAllC),
            "c4" => Some(MapCase::C4GreedyMin),
            _ => None,
        }
    }

    /// The stable id.
    pub fn id(self) -> &'static str {
        match self {
            MapCase::C1Drb => "c1",
            MapCase::C2Identity => "c2",
            MapCase::C3GreedyAllC => "c3",
            MapCase::C4GreedyMin => "c4",
        }
    }
}

/// Why a request could not be served.
#[derive(Debug)]
pub enum ServeError {
    /// The request itself is malformed (unknown case/topology, bad graph).
    Invalid(String),
    /// Admission rejected the request (deadline expired while queued).
    Rejected(String),
    /// The pipeline failed with a typed error.
    Tie(TieError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
            ServeError::Rejected(m) => write!(f, "rejected: {m}"),
            ServeError::Tie(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TieError> for ServeError {
    fn from(e: TieError) -> Self {
        ServeError::Tie(e)
    }
}

/// Construction options for a [`Service`].
#[derive(Debug)]
pub struct ServiceOptions {
    /// Topology-cache capacity (contexts held resident).
    pub cache_capacity: usize,
    /// Admission cap (0 = hardware parallelism).
    pub max_inflight: usize,
    /// Flight recorder shared by cache, daemon and TIMER runs.
    pub trace: TraceHandle,
    /// Fault-injection handle shared by readers, framing, cache and TIMER.
    pub faults: FaultHandle,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache_capacity: 8,
            max_inflight: 0,
            trace: TraceHandle::off(),
            faults: FaultHandle::off(),
        }
    }
}

/// The mapping service: cache + admission + the execution pipeline.
#[derive(Debug)]
pub struct Service {
    cache: TopologyCache,
    admission: Admission,
    trace: TraceHandle,
    faults: FaultHandle,
    cancel: CancelToken,
}

impl Service {
    /// Builds a service from `opts`.
    pub fn new(opts: ServiceOptions) -> Self {
        Service {
            cache: TopologyCache::new(opts.cache_capacity, opts.trace.clone(), opts.faults.clone()),
            admission: Admission::new(opts.max_inflight),
            trace: opts.trace,
            faults: opts.faults,
            cancel: CancelToken::new(),
        }
    }

    /// Executes one mapping request end to end: admission, graph load,
    /// cached topology context, partition, initial mapping, TIMER
    /// enhancement, quality bookkeeping.
    ///
    /// # Errors
    /// [`ServeError::Invalid`] for malformed requests,
    /// [`ServeError::Rejected`] when the deadline expires while queued, and
    /// [`ServeError::Tie`] for pipeline failures.
    pub fn execute(&self, req: &MapRequest) -> Result<MapResponse, ServeError> {
        let case = MapCase::parse(&req.case)
            .ok_or_else(|| ServeError::Invalid(format!("unknown case {:?}", req.case)))?;
        if req.threads == 0 {
            return Err(ServeError::Invalid(
                "threads must be at least 1".to_string(),
            ));
        }
        let topo = parse_topology(&req.topology).map_err(ServeError::Invalid)?;
        let deadline =
            (req.deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(req.deadline_ms));

        // The permit spans everything expensive below, so `max_inflight`
        // truly bounds concurrent compute, not just concurrent TIMER runs.
        let _permit = self
            .admission
            .acquire(deadline)
            .map_err(|e| ServeError::Rejected(e.to_string()))?;

        let ga = load_graph(&req.graph, &self.faults)?;
        let (ctx, disposition) = self
            .cache
            .get_or_build(&topo.name, || TopologyContext::recognize(&topo.graph))?;
        if ctx.num_pes() != topo.num_pes() {
            return Err(ServeError::Invalid(format!(
                "cache context for {:?} has {} PEs, topology has {}",
                topo.name,
                ctx.num_pes(),
                topo.num_pes()
            )));
        }

        let part = partition(
            &ga,
            &PartitionConfig {
                epsilon: req.eps,
                ..PartitionConfig::new(topo.num_pes(), req.seed)
            },
        );
        let initial = match case {
            MapCase::C1Drb => drb_mapping(&ga, &part, &topo.graph, req.seed),
            MapCase::C2Identity => identity_mapping(&part, topo.num_pes()),
            MapCase::C3GreedyAllC => greedy::greedy_allc_mapping(&ga, &part, &topo.graph),
            MapCase::C4GreedyMin => greedy::greedy_min_mapping(&ga, &part, &topo.graph),
        };

        let mut cfg = TimerConfig::new(req.nh, req.seed)
            .with_threads(req.threads)
            .with_batch(req.batch)
            .with_trace(self.trace.clone())
            .with_cancel_token(self.cancel.clone())
            .with_faults(self.faults.clone());
        if let Some(t) = deadline {
            let now = Instant::now();
            if now >= t {
                return Err(ServeError::Rejected(
                    "deadline expired before enhancement".to_string(),
                ));
            }
            cfg = cfg.with_deadline(t - now);
        }
        let result = Timer::new(cfg).enhance_with_context(&ga, &ctx, &initial)?;

        let before = evaluate(&ga, &topo.graph, &initial);
        let after = evaluate(&ga, &topo.graph, &result.mapping);
        let mapping: Vec<u32> = (0..result.mapping.num_tasks())
            .map(|v| result.mapping.pe_of(v as u32))
            .collect();
        Ok(MapResponse {
            cache: disposition.name().to_string(),
            stop_reason: result.stop_reason.name().to_string(),
            hierarchies_accepted: result.hierarchies_accepted,
            total_swaps: result.total_swaps,
            initial: summarize(&before),
            enhanced: summarize(&after),
            mapping,
        })
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Enhancements currently holding an admission permit.
    pub fn in_flight(&self) -> usize {
        self.admission.in_flight()
    }

    /// The resolved admission cap (hardware parallelism when configured 0).
    pub fn admission_capacity(&self) -> usize {
        self.admission.capacity()
    }

    /// The cancellation token a cancel-mode shutdown fires.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The service's flight-recorder handle.
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The service's fault-injection handle (shared with the socket layer).
    pub fn faults(&self) -> &FaultHandle {
        &self.faults
    }
}

/// A service behind an `Arc`, as the daemon shares it across connections.
pub type SharedService = Arc<Service>;

fn summarize(q: &tie_metrics::MappingQuality) -> QualitySummary {
    QualitySummary {
        coco: q.coco,
        edge_cut: q.edge_cut,
        congestion: q.congestion,
        imbalance: q.imbalance,
    }
}

fn load_graph(src: &GraphSource, faults: &FaultHandle) -> Result<Graph, ServeError> {
    match src {
        GraphSource::Inline {
            num_vertices,
            edges,
        } => {
            let mut b = GraphBuilder::new(*num_vertices);
            for &(u, v, w) in edges {
                if (u as usize) >= *num_vertices || (v as usize) >= *num_vertices {
                    return Err(ServeError::Invalid(format!(
                        "edge ({u}, {v}) out of range for {num_vertices} vertices"
                    )));
                }
                b.add_edge(u, v, w);
            }
            Ok(b.build())
        }
        GraphSource::Path(path) => {
            let loaded = if path.ends_with(".metis") || path.ends_with(".graph") {
                io::read_metis_with(path, faults)
            } else {
                io::read_edge_list_with(path, faults)
            };
            loaded.map_err(|e| ServeError::Invalid(format!("cannot read graph {path:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::generators;

    fn demo_request(seed: u64) -> MapRequest {
        let g = generators::barabasi_albert(200, 3, seed);
        MapRequest {
            graph: GraphSource::Inline {
                num_vertices: g.num_vertices(),
                edges: g.edges().collect(),
            },
            topology: "grid4x4".to_string(),
            case: "c2".to_string(),
            nh: 6,
            eps: 0.03,
            seed,
            threads: 1,
            batch: 0,
            deadline_ms: 0,
        }
    }

    #[test]
    fn execute_serves_a_valid_mapping() {
        let service = Service::new(ServiceOptions::default());
        let resp = service.execute(&demo_request(1)).unwrap();
        assert_eq!(resp.cache, "miss");
        assert_eq!(resp.mapping.len(), 200);
        assert!(resp.mapping.iter().all(|&pe| pe < 16));
        assert!(resp.enhanced.coco <= resp.initial.coco + resp.initial.coco / 10);
        assert_eq!(resp.stop_reason, "completed");
    }

    #[test]
    fn execute_is_deterministic_across_cache_dispositions() {
        let service = Service::new(ServiceOptions::default());
        let req = demo_request(2);
        let miss = service.execute(&req).unwrap();
        let hit = service.execute(&req).unwrap();
        assert_eq!(miss.cache, "miss");
        assert_eq!(hit.cache, "hit");
        assert_eq!(miss.mapping, hit.mapping);
        assert_eq!(miss.enhanced, hit.enhanced);
        assert_eq!(miss.total_swaps, hit.total_swaps);
    }

    #[test]
    fn execute_rejects_malformed_requests() {
        let service = Service::new(ServiceOptions::default());
        let mut bad_case = demo_request(3);
        bad_case.case = "c9".to_string();
        assert!(matches!(
            service.execute(&bad_case),
            Err(ServeError::Invalid(_))
        ));
        let mut bad_topo = demo_request(3);
        bad_topo.topology = "klein4".to_string();
        assert!(matches!(
            service.execute(&bad_topo),
            Err(ServeError::Invalid(_))
        ));
        let mut bad_edge = demo_request(3);
        bad_edge.graph = GraphSource::Inline {
            num_vertices: 4,
            edges: vec![(0, 9, 1)],
        };
        assert!(matches!(
            service.execute(&bad_edge),
            Err(ServeError::Invalid(_))
        ));
        let mut bad_threads = demo_request(3);
        bad_threads.threads = 0;
        assert!(matches!(
            service.execute(&bad_threads),
            Err(ServeError::Invalid(_))
        ));
    }

    #[test]
    fn all_cases_execute() {
        let service = Service::new(ServiceOptions::default());
        for case in ["c1", "c2", "c3", "c4"] {
            let mut req = demo_request(4);
            req.case = case.to_string();
            let resp = service.execute(&req).unwrap();
            assert_eq!(resp.mapping.len(), 200, "{case}");
        }
    }
}
