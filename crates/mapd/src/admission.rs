//! Request admission: bound the number of in-flight enhancements.
//!
//! An enhancement saturates its configured thread count, so running more of
//! them than the machine has cores only adds cache pressure and latency for
//! everyone. The [`Admission`] gate hands out permits up to a cap (hardware
//! parallelism by default); requests beyond the cap queue on a condvar, and
//! a queued request whose deadline expires before a permit frees up is
//! rejected *without* having burned any compute — the deadline-aware half of
//! the daemon's graceful-degradation contract.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// A queued request's deadline expired before a permit freed up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionRejected;

impl std::fmt::Display for AdmissionRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline expired while queued for admission")
    }
}

/// The admission gate. Shareable across threads; permits are RAII.
#[derive(Debug)]
pub struct Admission {
    max_inflight: usize,
    in_flight: Mutex<usize>,
    cond: Condvar,
}

/// An admission permit; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut in_flight = self.gate.lock();
        *in_flight = in_flight.saturating_sub(1);
        self.gate.cond.notify_one();
    }
}

impl Admission {
    /// A gate admitting at most `max_inflight` concurrent holders; `0` means
    /// "hardware parallelism" (falling back to 1 when the platform cannot
    /// tell).
    pub fn new(max_inflight: usize) -> Self {
        let cap = if max_inflight == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            max_inflight
        };
        Admission {
            max_inflight: cap,
            in_flight: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    /// Acquires a permit, queueing while the gate is full. With a deadline,
    /// the wait is bounded: expiry while queued returns
    /// [`AdmissionRejected`] and the request never starts computing.
    ///
    /// # Errors
    /// [`AdmissionRejected`] when `deadline` passes before a slot frees up.
    pub fn acquire(&self, deadline: Option<Instant>) -> Result<Permit<'_>, AdmissionRejected> {
        let mut in_flight = self.lock();
        loop {
            if *in_flight < self.max_inflight {
                *in_flight += 1;
                return Ok(Permit { gate: self });
            }
            match deadline {
                None => in_flight = self.wait(in_flight),
                Some(t) => {
                    let now = Instant::now();
                    if now >= t {
                        return Err(AdmissionRejected);
                    }
                    in_flight = self.wait_timeout(in_flight, t - now);
                }
            }
        }
    }

    /// Permits currently held.
    pub fn in_flight(&self) -> usize {
        *self.lock()
    }

    /// The admission cap.
    pub fn capacity(&self) -> usize {
        self.max_inflight
    }

    fn lock(&self) -> MutexGuard<'_, usize> {
        match self.in_flight.lock() {
            Ok(guard) => guard,
            // The counter is a plain usize: always consistent.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, usize>) -> MutexGuard<'a, usize> {
        match self.cond.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn wait_timeout<'a>(
        &self,
        guard: MutexGuard<'a, usize>,
        timeout: std::time::Duration,
    ) -> MutexGuard<'a, usize> {
        match self.cond.wait_timeout(guard, timeout) {
            Ok((guard, _)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn permits_are_bounded_and_released_on_drop() {
        let gate = Admission::new(2);
        assert_eq!(gate.capacity(), 2);
        let a = gate.acquire(None).unwrap();
        let b = gate.acquire(None).unwrap();
        assert_eq!(gate.in_flight(), 2);
        // Full: a deadline already in the past is rejected immediately.
        let past = Instant::now() - Duration::from_millis(1);
        assert!(gate.acquire(Some(past)).is_err());
        drop(a);
        let c = gate
            .acquire(Some(Instant::now() + Duration::from_secs(5)))
            .unwrap();
        assert_eq!(gate.in_flight(), 2);
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn queued_request_rejected_at_deadline() {
        let gate = Admission::new(1);
        let held = gate.acquire(None).unwrap();
        let start = Instant::now();
        let result = gate.acquire(Some(start + Duration::from_millis(30)));
        assert_eq!(result.map(|_| ()), Err(AdmissionRejected));
        assert!(start.elapsed() >= Duration::from_millis(30));
        drop(held);
    }

    #[test]
    fn queued_request_admitted_when_slot_frees() {
        let gate = std::sync::Arc::new(Admission::new(1));
        let held = gate.acquire(None).unwrap();
        let worker = {
            let gate = std::sync::Arc::clone(&gate);
            std::thread::spawn(move || {
                let permit = gate.acquire(Some(Instant::now() + Duration::from_secs(10)));
                permit.is_ok()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert!(worker.join().unwrap(), "waiter must get the freed slot");
    }

    #[test]
    fn zero_means_hardware_parallelism() {
        assert!(Admission::new(0).capacity() >= 1);
    }
}
