//! `mapd` — the persistent mapping daemon.
//!
//! Listens on a Unix-domain socket and serves framed newline-JSON mapping
//! requests through the same [`tie_mapd::Service`] pipeline the one-shot
//! `map_file` CLI uses, keeping a per-topology context cache warm across
//! requests. See the README's "mapd" section for the protocol.
//!
//! Usage:
//!   mapd [--socket PATH] [--cache-capacity N] [--max-inflight N]
//!        [--trace-out PATH|-] [--trace-level off|gate|phase|debug]
//!
//! Fault injection: the `TIE_FAULTS` environment variable (same grammar as
//! everywhere else; `io@N` counts socket frames alongside reader I/O, and
//! `delay:socket_io=`/`delay:cache_build=` stretch the respective windows).

use std::process::ExitCode;

const USAGE: &str = "usage: mapd [--socket PATH] [--cache-capacity N] \
     [--max-inflight N] [--trace-out PATH|-] \
     [--trace-level off|gate|phase|debug]";

#[cfg(unix)]
fn run(args: &[String]) -> Result<(), String> {
    use std::path::PathBuf;
    use std::sync::Arc;

    use tie_fault::FaultHandle;
    use tie_mapd::cli::{flag_value, parsed_flag, trace_from_flags};
    use tie_mapd::{server, Service, ServiceOptions};

    let socket = PathBuf::from(flag_value(args, "--socket").unwrap_or("mapd.sock"));
    let cache_capacity: usize = parsed_flag(args, "--cache-capacity", 8)?;
    let max_inflight: usize = parsed_flag(args, "--max-inflight", 0)?;
    let trace = trace_from_flags(args)?;
    let faults = FaultHandle::from_env().map_err(|e| format!("invalid TIE_FAULTS: {e}"))?;

    let service = Arc::new(Service::new(ServiceOptions {
        cache_capacity,
        max_inflight,
        trace,
        faults,
    }));
    eprintln!(
        "mapd: listening on {} (cache capacity {}, admission cap {})",
        socket.display(),
        cache_capacity,
        service.admission_capacity()
    );
    server::serve(&socket, service).map_err(|e| format!("serve failed: {e}"))?;
    eprintln!("mapd: drained, exiting");
    Ok(())
}

#[cfg(not(unix))]
fn run(_args: &[String]) -> Result<(), String> {
    Err("mapd requires Unix-domain sockets and is unavailable on this platform".to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mapd: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
