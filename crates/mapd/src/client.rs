//! The client half of the protocol: connect to a running `mapd` socket and
//! exchange framed requests. Used by `map_file --client` and the tests.

use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::Path;

use tie_fault::FaultHandle;

use crate::protocol::{read_frame, write_frame, Request, Response};

/// Why a client exchange failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket itself failed (connect, read, write).
    Io(io::Error),
    /// The daemon replied with something that is not a valid response frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client. One request/response pair per [`Client::request`]
/// call; the connection stays open across calls.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
    faults: FaultHandle,
}

impl Client {
    /// Connects to the daemon socket at `path`. The fault handle drives the
    /// same `socket_io`/`io@N` sites as the server side, so client-side
    /// socket faults are injectable in tests and smoke runs.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(path: &Path, faults: FaultHandle) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client {
            reader,
            writer,
            faults,
        })
    }

    /// Sends `req` and waits for the daemon's response frame.
    ///
    /// # Errors
    /// Socket failures, a connection closed before any response, or an
    /// unparsable response payload.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.to_json(), &self.faults)?;
        match read_frame(&mut self.reader, &self.faults)? {
            Some(payload) => Response::from_json(&payload).map_err(ClientError::Protocol),
            None => Err(ClientError::Protocol(
                "connection closed before response".to_string(),
            )),
        }
    }
}
