//! Small flag-parsing helpers shared by `mapd` and the `map_file` CLI.
//!
//! Nothing here panics: malformed flags surface as `Err(String)` so binaries
//! can print the message plus their usage line and exit with code 2.

use std::str::FromStr;
use std::sync::Arc;

use tie_trace::{JsonlSink, StderrSink, TraceHandle, TraceLevel};

/// The value following `flag`, if present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Whether `flag` appears at all (valueless switches like `--json`).
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses the value of `flag`, falling back to `default` when absent.
///
/// # Errors
/// A one-line message naming the flag and the unparsable value.
pub fn parsed_flag<T: FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} needs a valid value, got {v:?}")),
        None => Ok(default),
    }
}

/// Builds a [`TraceHandle`] for `--trace-out`: `-` streams human-readable
/// events to stderr, any other value is a JSONL output path.
///
/// # Errors
/// An unwritable path is reported as an `Err` instead of panicking.
pub fn make_trace_handle(path: &str, level: TraceLevel) -> Result<TraceHandle, String> {
    if path == "-" {
        Ok(TraceHandle::new(Arc::new(StderrSink), level))
    } else {
        let sink = JsonlSink::create(path)
            .map_err(|e| format!("cannot open trace output {path:?}: {e}"))?;
        Ok(TraceHandle::new(Arc::new(sink), level))
    }
}

/// Resolves `--trace-out PATH|-` and `--trace-level off|gate|phase|debug`
/// into a handle: off when no `--trace-out` is given, level `phase` by
/// default when it is.
///
/// # Errors
/// Unknown levels and unwritable paths.
pub fn trace_from_flags(args: &[String]) -> Result<TraceHandle, String> {
    match flag_value(args, "--trace-out") {
        Some(path) => {
            let level = match flag_value(args, "--trace-level") {
                Some(v) => TraceLevel::parse(v).ok_or_else(|| {
                    format!("--trace-level needs off|gate|phase|debug, got {v:?}")
                })?,
                None => TraceLevel::Phase,
            };
            make_trace_handle(path, level)
        }
        None => Ok(TraceHandle::off()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_helpers_parse_and_default() {
        let a = args(&["--nh", "12", "--json"]);
        assert_eq!(flag_value(&a, "--nh"), Some("12"));
        assert_eq!(flag_value(&a, "--seed"), None);
        assert!(has_flag(&a, "--json"));
        assert!(!has_flag(&a, "--client"));
        assert_eq!(parsed_flag(&a, "--nh", 50usize).unwrap(), 12);
        assert_eq!(parsed_flag(&a, "--seed", 7u64).unwrap(), 7);
        assert!(parsed_flag::<usize>(&args(&["--nh", "x"]), "--nh", 1).is_err());
    }

    #[test]
    fn trace_flags_resolve() {
        assert!(!trace_from_flags(&args(&[]))
            .unwrap()
            .enabled(TraceLevel::Gate));
        let h = trace_from_flags(&args(&["--trace-out", "-"])).unwrap();
        assert!(h.enabled(TraceLevel::Phase));
        assert!(!h.enabled(TraceLevel::Debug));
        assert!(trace_from_flags(&args(&["--trace-out", "-", "--trace-level", "bogus"])).is_err());
    }
}
