//! Topology descriptor parsing: the textual names requests and CLI flags
//! use (`grid16x16`, `torus4x4x4`, `hypercube6`, `tree127`, `path64`),
//! resolved to concrete [`Topology`] instances. The canonical
//! `Topology::name` the builders generate is what keys the per-topology
//! cache, so two spellings of the same topology (`GRID4x4`, `grid4x4`)
//! share one cache entry.

use tie_topology::Topology;

/// Parses a topology descriptor.
///
/// # Errors
/// A one-line message naming the offending descriptor.
pub fn parse_topology(spec: &str) -> Result<Topology, String> {
    let lower = spec.to_lowercase();
    let dims = |s: &str| -> Vec<usize> { s.split('x').filter_map(|t| t.parse().ok()).collect() };
    if let Some(rest) = lower.strip_prefix("grid") {
        let d = dims(rest);
        return match d.len() {
            2 => Ok(Topology::grid2d(d[0], d[1])),
            3 => Ok(Topology::grid3d(d[0], d[1], d[2])),
            _ => Err(format!("grid topology needs 2 or 3 extents, got {spec:?}")),
        };
    }
    if let Some(rest) = lower.strip_prefix("torus") {
        let d = dims(rest);
        return match d.len() {
            2 => Ok(Topology::torus2d(d[0], d[1])),
            3 => Ok(Topology::torus3d(d[0], d[1], d[2])),
            _ => Err(format!("torus topology needs 2 or 3 extents, got {spec:?}")),
        };
    }
    if let Some(rest) = lower.strip_prefix("hypercube") {
        let d = rest
            .parse()
            .map_err(|_| format!("hypercube needs a dimension, got {rest:?}"))?;
        return Ok(Topology::hypercube(d));
    }
    if let Some(rest) = lower.strip_prefix("tree") {
        let n = rest
            .parse()
            .map_err(|_| format!("tree needs a vertex count, got {rest:?}"))?;
        return Ok(Topology::binary_tree(n));
    }
    if let Some(rest) = lower.strip_prefix("path") {
        let n = rest
            .parse()
            .map_err(|_| format!("path needs a vertex count, got {rest:?}"))?;
        return Ok(Topology::path(n));
    }
    Err(format!("unknown topology {spec:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_families() {
        assert_eq!(parse_topology("grid4x4").unwrap().num_pes(), 16);
        assert_eq!(parse_topology("grid2x2x2").unwrap().num_pes(), 8);
        assert_eq!(parse_topology("torus4x4").unwrap().num_pes(), 16);
        assert_eq!(parse_topology("hypercube3").unwrap().num_pes(), 8);
        assert_eq!(parse_topology("path5").unwrap().num_pes(), 5);
        assert!(parse_topology("tree7").is_ok());
    }

    #[test]
    fn spellings_share_one_canonical_name() {
        let a = parse_topology("GRID4x4").unwrap();
        let b = parse_topology("grid4x4").unwrap();
        assert_eq!(a.name, b.name);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse_topology("klein4").is_err());
        assert!(parse_topology("grid4").is_err());
        assert!(parse_topology("hypercubeX").is_err());
    }
}
