//! The `mapd` wire protocol: length-prefixed single-line JSON frames, and
//! the request/response vocabulary both the daemon and the clients speak.
//!
//! # Framing
//!
//! One frame is `<decimal byte length>\n<payload>\n`, where the payload is
//! exactly that many bytes of single-line JSON. The explicit length makes
//! truncated frames detectable (a bare newline protocol would silently
//! accept a cut-off line), and the trailing newline keeps sockets inspectable
//! with `nc -U`. Frames above [`MAX_FRAME_BYTES`] are rejected before any
//! allocation.
//!
//! # Fault injection
//!
//! Every frame read/write probes the shared [`FaultHandle`]: a
//! `delay:socket_io=…` directive stalls the operation, and `io@N` fails the
//! N-th counted IO operation — the same counter the graph readers use, so
//! one `TIE_FAULTS` grammar covers file and socket IO alike.

use std::io::{self, BufRead, Write};

use tie_fault::FaultHandle;

use crate::json::{escape, Json};

/// Upper bound on one frame's payload, checked before allocating.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Writes one frame. Probes `faults` (site `socket_io`, operation counter
/// shared with the graph readers) before touching the stream.
///
/// # Errors
/// Propagates stream errors and injected faults.
pub fn write_frame<W: Write>(w: &mut W, payload: &str, faults: &FaultHandle) -> io::Result<()> {
    faults.delay("socket_io");
    if let Some(err) = faults.io_fault("socket write") {
        return Err(err);
    }
    w.write_all(payload.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean end-of-stream (the peer closed
/// between frames).
///
/// # Errors
/// Propagates stream errors, injected faults, and malformed frames
/// (non-numeric header, oversized length, missing terminator, bad UTF-8).
pub fn read_frame<R: BufRead>(r: &mut R, faults: &FaultHandle) -> io::Result<Option<String>> {
    faults.delay("socket_io");
    if let Some(err) = faults.io_fault("socket read") {
        return Err(err);
    }
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header
        .trim()
        .parse()
        .map_err(|_| invalid(format!("bad frame header {:?}", header.trim())))?;
    if len > MAX_FRAME_BYTES {
        return Err(invalid(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )));
    }
    let mut payload = vec![0u8; len + 1];
    r.read_exact(&mut payload)?;
    if payload.pop() != Some(b'\n') {
        return Err(invalid("frame payload not newline-terminated".to_string()));
    }
    match String::from_utf8(payload) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(invalid("frame payload is not UTF-8".to_string())),
    }
}

/// Where the application graph of a request comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSource {
    /// The edge list travels inline in the request.
    Inline {
        /// Number of vertices (ids `0..num_vertices`).
        num_vertices: usize,
        /// Undirected weighted edges, each listed once.
        edges: Vec<(u32, u32, u64)>,
    },
    /// A file path readable by the *daemon*: `.metis`/`.graph` files go
    /// through the METIS reader, anything else through the edge-list reader.
    Path(String),
}

/// One mapping request: the full input of a `map_file`-style run.
#[derive(Clone, Debug, PartialEq)]
pub struct MapRequest {
    /// The application graph.
    pub graph: GraphSource,
    /// Topology descriptor (see [`crate::topo::parse_topology`]).
    pub topology: String,
    /// Experimental case: `c1` (DRB), `c2` (identity), `c3` (greedy all-c),
    /// `c4` (greedy min).
    pub case: String,
    /// Number of TIMER hierarchies.
    pub nh: usize,
    /// Partitioning imbalance tolerance.
    pub eps: f64,
    /// Seed for partitioning, initial mapping and TIMER.
    pub seed: u64,
    /// TIMER worker threads (results are thread-count-invariant).
    pub threads: usize,
    /// TIMER speculation-depth cap (0 = match threads).
    pub batch: usize,
    /// Whole-request deadline in milliseconds (0 = unbounded). Covers
    /// admission queueing *and* enhancement.
    pub deadline_ms: u64,
}

/// How a shutdown request winds the daemon down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop accepting connections, let in-flight requests finish.
    Drain,
    /// Drain, and also cancel in-flight enhancements (they return
    /// best-so-far with `StopReason::Cancelled`).
    Cancel,
}

impl ShutdownMode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ShutdownMode::Drain => "drain",
            ShutdownMode::Cancel => "cancel",
        }
    }

    /// Inverse of [`ShutdownMode::name`].
    pub fn parse(s: &str) -> Option<ShutdownMode> {
        match s {
            "drain" => Some(ShutdownMode::Drain),
            "cancel" => Some(ShutdownMode::Cancel),
            _ => None,
        }
    }
}

/// One request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Map a graph (the payload is boxed: it dominates the enum's size).
    Map(Box<MapRequest>),
    /// Health check; answered with [`Response::Pong`].
    Ping,
    /// Ask the daemon to wind down.
    Shutdown {
        /// Drain or cancel.
        mode: ShutdownMode,
    },
}

/// Objective bookkeeping of one mapping, before or after enhancement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualitySummary {
    /// Communication cost (hop-byte).
    pub coco: u64,
    /// Edge cut.
    pub edge_cut: u64,
    /// Maximum link congestion.
    pub congestion: u64,
    /// Load imbalance.
    pub imbalance: f64,
}

/// Cache counters as they travel in a [`Response::Pong`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStatsWire {
    /// Resident entries.
    pub entries: usize,
    /// Cumulative hits.
    pub hits: u64,
    /// Cumulative misses.
    pub misses: u64,
    /// Cumulative evictions.
    pub evictions: u64,
}

/// The successful answer to a [`Request::Map`].
#[derive(Clone, Debug, PartialEq)]
pub struct MapResponse {
    /// Cache disposition of the topology context: `"hit"` or `"miss"`.
    pub cache: String,
    /// Why the TIMER run stopped (`StopReason::name()`).
    pub stop_reason: String,
    /// Hierarchy rounds whose result was kept.
    pub hierarchies_accepted: usize,
    /// Label swaps across all sweeps.
    pub total_swaps: usize,
    /// Quality of the initial mapping.
    pub initial: QualitySummary,
    /// Quality of the enhanced mapping.
    pub enhanced: QualitySummary,
    /// The enhanced vertex-to-PE assignment, indexed by vertex id.
    pub mapping: Vec<u32>,
}

/// One response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A served mapping.
    Map(Box<MapResponse>),
    /// Health-check answer.
    Pong {
        /// Enhancements currently holding an admission permit.
        in_flight: usize,
        /// Cache counters since daemon start.
        cache: CacheStatsWire,
    },
    /// Shutdown acknowledged; the daemon stops accepting and drains.
    ShuttingDown {
        /// Echo of the requested mode.
        mode: String,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// One-line description.
        message: String,
    },
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

impl GraphSource {
    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        match self {
            GraphSource::Inline {
                num_vertices,
                edges,
            } => {
                let mut s = format!("{{\"num_vertices\": {num_vertices}, \"edges\": [");
                for (i, (u, v, w)) in edges.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "[{u}, {v}, {w}]");
                }
                s.push_str("]}");
                s
            }
            GraphSource::Path(path) => format!("{{\"path\": \"{}\"}}", escape(path)),
        }
    }

    fn from_json(v: &Json) -> Result<GraphSource, String> {
        if let Some(path) = v.get("path").and_then(Json::as_str) {
            return Ok(GraphSource::Path(path.to_string()));
        }
        let num_vertices = field_usize(v, "num_vertices")?;
        let raw = v
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing or non-array field \"edges\"".to_string())?;
        let mut edges = Vec::with_capacity(raw.len());
        for e in raw {
            let triple = e.as_arr().filter(|a| a.len() == 3);
            let parsed = triple.and_then(|a| {
                Some((
                    u32::try_from(a[0].as_u64()?).ok()?,
                    u32::try_from(a[1].as_u64()?).ok()?,
                    a[2].as_u64()?,
                ))
            });
            match parsed {
                Some(edge) => edges.push(edge),
                None => return Err("edges must be [u, v, w] integer triples".to_string()),
            }
        }
        Ok(GraphSource::Inline {
            num_vertices,
            edges,
        })
    }
}

impl Request {
    /// Serializes the request as one line of JSON.
    pub fn to_json(&self) -> String {
        match self {
            Request::Map(m) => format!(
                "{{\"op\": \"map\", \"topology\": \"{}\", \"case\": \"{}\", \
                 \"nh\": {}, \"eps\": {:?}, \"seed\": {}, \"threads\": {}, \
                 \"batch\": {}, \"deadline_ms\": {}, \"graph\": {}}}",
                escape(&m.topology),
                escape(&m.case),
                m.nh,
                m.eps,
                m.seed,
                m.threads,
                m.batch,
                m.deadline_ms,
                m.graph.to_json()
            ),
            Request::Ping => "{\"op\": \"ping\"}".to_string(),
            Request::Shutdown { mode } => {
                format!("{{\"op\": \"shutdown\", \"mode\": \"{}\"}}", mode.name())
            }
        }
    }

    /// Parses a request frame.
    ///
    /// # Errors
    /// A one-line message naming the first malformed field.
    pub fn from_json(payload: &str) -> Result<Request, String> {
        let v = Json::parse(payload)?;
        match v.get("op").and_then(Json::as_str) {
            Some("ping") => Ok(Request::Ping),
            Some("shutdown") => {
                let mode = match v.get("mode").and_then(Json::as_str) {
                    None => ShutdownMode::Drain,
                    Some(s) => ShutdownMode::parse(s)
                        .ok_or_else(|| format!("unknown shutdown mode {s:?}"))?,
                };
                Ok(Request::Shutdown { mode })
            }
            Some("map") => {
                let graph = v
                    .get("graph")
                    .ok_or_else(|| "missing field \"graph\"".to_string())
                    .and_then(GraphSource::from_json)?;
                Ok(Request::Map(Box::new(MapRequest {
                    graph,
                    topology: field_str(&v, "topology")?,
                    case: field_str(&v, "case")?,
                    nh: field_usize(&v, "nh")?,
                    eps: field_f64(&v, "eps")?,
                    seed: field_u64(&v, "seed")?,
                    threads: field_usize(&v, "threads")?,
                    batch: field_usize(&v, "batch")?,
                    deadline_ms: field_u64(&v, "deadline_ms")?,
                })))
            }
            Some(other) => Err(format!("unknown op {other:?}")),
            None => Err("missing or non-string field \"op\"".to_string()),
        }
    }
}

impl QualitySummary {
    fn to_json(self) -> String {
        format!(
            "{{\"coco\": {}, \"edge_cut\": {}, \"congestion\": {}, \"imbalance\": {:.6}}}",
            self.coco, self.edge_cut, self.congestion, self.imbalance
        )
    }

    fn from_json(v: &Json) -> Result<QualitySummary, String> {
        Ok(QualitySummary {
            coco: field_u64(v, "coco")?,
            edge_cut: field_u64(v, "edge_cut")?,
            congestion: field_u64(v, "congestion")?,
            imbalance: field_f64(v, "imbalance")?,
        })
    }
}

impl From<crate::cache::CacheStats> for CacheStatsWire {
    fn from(s: crate::cache::CacheStats) -> Self {
        CacheStatsWire {
            entries: s.entries,
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
        }
    }
}

impl CacheStatsWire {
    fn to_json(self) -> String {
        format!(
            "{{\"entries\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}}",
            self.entries, self.hits, self.misses, self.evictions
        )
    }

    fn from_json(v: &Json) -> Result<CacheStatsWire, String> {
        Ok(CacheStatsWire {
            entries: field_usize(v, "entries")?,
            hits: field_u64(v, "hits")?,
            misses: field_u64(v, "misses")?,
            evictions: field_u64(v, "evictions")?,
        })
    }
}

impl Response {
    /// Serializes the response as one line of JSON. This is the single
    /// serialization path shared by the daemon and `map_file --json`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        match self {
            Response::Map(m) => {
                let mut s = format!(
                    "{{\"status\": \"ok\", \"op\": \"map\", \"cache\": \"{}\", \
                     \"stop_reason\": \"{}\", \"hierarchies_accepted\": {}, \
                     \"total_swaps\": {}, \"initial\": {}, \"enhanced\": {}, \
                     \"mapping\": [",
                    escape(&m.cache),
                    escape(&m.stop_reason),
                    m.hierarchies_accepted,
                    m.total_swaps,
                    m.initial.to_json(),
                    m.enhanced.to_json()
                );
                for (i, pe) in m.mapping.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{pe}");
                }
                s.push_str("]}");
                s
            }
            Response::Pong { in_flight, cache } => format!(
                "{{\"status\": \"ok\", \"op\": \"pong\", \"in_flight\": {}, \"cache\": {}}}",
                in_flight,
                cache.to_json()
            ),
            Response::ShuttingDown { mode } => format!(
                "{{\"status\": \"ok\", \"op\": \"shutdown\", \"mode\": \"{}\"}}",
                escape(mode)
            ),
            Response::Error { message } => {
                format!(
                    "{{\"status\": \"error\", \"error\": \"{}\"}}",
                    escape(message)
                )
            }
        }
    }

    /// Parses a response frame.
    ///
    /// # Errors
    /// A one-line message naming the first malformed field.
    pub fn from_json(payload: &str) -> Result<Response, String> {
        let v = Json::parse(payload)?;
        match v.get("status").and_then(Json::as_str) {
            Some("error") => Ok(Response::Error {
                message: field_str(&v, "error")?,
            }),
            Some("ok") => match v.get("op").and_then(Json::as_str) {
                Some("pong") => Ok(Response::Pong {
                    in_flight: field_usize(&v, "in_flight")?,
                    cache: v
                        .get("cache")
                        .ok_or_else(|| "missing field \"cache\"".to_string())
                        .and_then(CacheStatsWire::from_json)?,
                }),
                Some("shutdown") => Ok(Response::ShuttingDown {
                    mode: field_str(&v, "mode")?,
                }),
                Some("map") => {
                    let raw = v
                        .get("mapping")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| "missing or non-array field \"mapping\"".to_string())?;
                    let mut mapping = Vec::with_capacity(raw.len());
                    for pe in raw {
                        match pe.as_u64().and_then(|p| u32::try_from(p).ok()) {
                            Some(p) => mapping.push(p),
                            None => return Err("mapping entries must be u32".to_string()),
                        }
                    }
                    Ok(Response::Map(Box::new(MapResponse {
                        cache: field_str(&v, "cache")?,
                        stop_reason: field_str(&v, "stop_reason")?,
                        hierarchies_accepted: field_usize(&v, "hierarchies_accepted")?,
                        total_swaps: field_usize(&v, "total_swaps")?,
                        initial: v
                            .get("initial")
                            .ok_or_else(|| "missing field \"initial\"".to_string())
                            .and_then(QualitySummary::from_json)?,
                        enhanced: v
                            .get("enhanced")
                            .ok_or_else(|| "missing field \"enhanced\"".to_string())
                            .and_then(QualitySummary::from_json)?,
                        mapping,
                    })))
                }
                other => Err(format!("unknown response op {other:?}")),
            },
            other => Err(format!("unknown response status {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map_request() -> Request {
        Request::Map(Box::new(MapRequest {
            graph: GraphSource::Inline {
                num_vertices: 4,
                edges: vec![(0, 1, 2), (1, 2, 1), (2, 3, 5)],
            },
            topology: "grid2x2".to_string(),
            case: "c2".to_string(),
            nh: 10,
            eps: 0.03,
            seed: 7,
            threads: 2,
            batch: 0,
            deadline_ms: 0,
        }))
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            sample_map_request(),
            Request::Ping,
            Request::Shutdown {
                mode: ShutdownMode::Drain,
            },
            Request::Shutdown {
                mode: ShutdownMode::Cancel,
            },
            Request::Map(Box::new(MapRequest {
                graph: GraphSource::Path("nets/app.metis".to_string()),
                topology: "hypercube4".to_string(),
                case: "c1".to_string(),
                nh: 50,
                eps: 0.1,
                seed: 42,
                threads: 8,
                batch: 4,
                deadline_ms: 5000,
            })),
        ] {
            let json = req.to_json();
            assert!(!json.contains('\n'), "frames must be single-line: {json}");
            assert_eq!(Request::from_json(&json).unwrap(), req, "{json}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Map(Box::new(MapResponse {
                cache: "miss".to_string(),
                stop_reason: "completed".to_string(),
                hierarchies_accepted: 3,
                total_swaps: 812,
                initial: QualitySummary {
                    coco: 1000,
                    edge_cut: 50,
                    congestion: 90,
                    imbalance: 0.03125,
                },
                enhanced: QualitySummary {
                    coco: 900,
                    edge_cut: 48,
                    congestion: 80,
                    imbalance: 0.03125,
                },
                mapping: vec![0, 1, 1, 3, 2],
            })),
            Response::Pong {
                in_flight: 2,
                cache: CacheStatsWire {
                    entries: 1,
                    hits: 4,
                    misses: 1,
                    evictions: 0,
                },
            },
            Response::ShuttingDown {
                mode: "drain".to_string(),
            },
            Response::Error {
                message: "bad \"request\"\nwith newline".to_string(),
            },
        ] {
            let json = resp.to_json();
            assert!(!json.contains('\n'), "frames must be single-line: {json}");
            assert_eq!(Response::from_json(&json).unwrap(), resp, "{json}");
        }
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let faults = FaultHandle::off();
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\": \"ping\"}", &faults).unwrap();
        write_frame(&mut buf, "", &faults).unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r, &faults).unwrap().as_deref(),
            Some("{\"op\": \"ping\"}")
        );
        assert_eq!(read_frame(&mut r, &faults).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r, &faults).unwrap(), None, "clean EOF");
    }

    #[test]
    fn malformed_frames_are_rejected() {
        let faults = FaultHandle::off();
        for bad in [
            &b"x\npayload\n"[..],     // non-numeric header
            &b"99999999999999\n"[..], // oversized length
            &b"5\nabcde"[..],         // truncated (no terminator)
            &b"4\nabcde\n"[..],       // wrong terminator position
            &b"2\n\xff\xfe\n"[..],    // not UTF-8
        ] {
            let mut r = io::BufReader::new(bad);
            assert!(read_frame(&mut r, &faults).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn socket_faults_fire_through_the_framing_layer() {
        use tie_fault::FaultPlan;
        // io@1 fails the first counted operation — here the frame write.
        let faults = FaultHandle::new(FaultPlan::new().with_io_fault(1));
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, "{}", &faults).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(buf.is_empty(), "nothing may reach the stream");
        // Consumed: the retry succeeds.
        write_frame(&mut buf, "{}", &faults).unwrap();
        assert_eq!(faults.io_faults_fired(), 1);
    }
}
