//! The daemon's accept loop: a Unix-domain socket, one thread per
//! connection, and a drain-and-exit shutdown contract.
//!
//! Resilience posture (see `docs/RESILIENCE.md`): a malformed frame or an
//! I/O error tears down *that connection only* — the daemon survives and
//! keeps accepting. Shutdown is cooperative: a `shutdown` request flips the
//! draining flag, the accept loop stops taking new connections, and the
//! daemon exits only once every open connection has finished (`drain` mode)
//! — or, in `cancel` mode, after additionally firing the service-wide
//! cancellation token so in-flight enhancements stop at their next round
//! boundary and return their best-so-far labeling.

use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tie_trace::{Phase, TraceEvent, TraceLevel};

use crate::protocol::{read_frame, write_frame, Request, Response, ShutdownMode};
use crate::service::Service;

/// State shared between the accept loop and every connection thread.
#[derive(Debug)]
struct Shared {
    service: Arc<Service>,
    /// Set by a `shutdown` request; the accept loop exits when it sees this.
    draining: AtomicBool,
    /// Open connections; the accept loop waits for this to hit zero.
    open: AtomicUsize,
}

/// RAII connection counter: incremented before the handler thread spawns,
/// decremented when the handler finishes — including by panic unwind, so a
/// crashed handler can never wedge the drain.
#[derive(Debug)]
struct OpenGuard {
    shared: Arc<Shared>,
}

impl OpenGuard {
    fn new(shared: Arc<Shared>) -> Self {
        shared.open.fetch_add(1, Ordering::SeqCst);
        OpenGuard { shared }
    }
}

impl Drop for OpenGuard {
    fn drop(&mut self) {
        self.shared.open.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs the daemon on `socket_path` until a `shutdown` request drains it.
/// A stale socket file from a previous run is removed first — the cache is
/// purely in-memory, so a fresh daemon serves byte-identical results to the
/// one it replaces (misses instead of hits, same mappings).
///
/// # Errors
/// Socket setup failures (bind, stale-file removal, nonblocking mode).
pub fn serve(socket_path: &Path, service: Arc<Service>) -> io::Result<()> {
    match std::fs::remove_file(socket_path) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(socket_path)?;
    // Nonblocking so the accept loop can notice the draining flag promptly
    // instead of sitting in accept() forever after the last client leaves.
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        service,
        draining: AtomicBool::new(false),
        open: AtomicUsize::new(0),
    });

    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let guard = OpenGuard::new(Arc::clone(&shared));
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // The guard moves into the thread; its Drop runs when the
                    // handler returns or unwinds.
                    let _guard = guard;
                    if let Err(e) = handle_connection(&stream, &shared) {
                        eprintln!("mapd: connection error: {e}");
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("mapd: accept error: {e}");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    // Drain: every connection opened before the flag flipped gets to finish.
    while shared.open.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

/// Serves one connection: a loop of frames, each a request, until the peer
/// closes, a frame is unreadable, or a shutdown request arrives.
fn handle_connection(stream: &UnixStream, shared: &Arc<Shared>) -> io::Result<()> {
    let service = &shared.service;
    let faults = service.faults().clone();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);

    while let Some(payload) = read_frame(&mut reader, &faults)? {
        let (response, shutdown) = match Request::from_json(&payload) {
            Err(msg) => (Response::Error { message: msg }, false),
            Ok(Request::Ping) => (
                Response::Pong {
                    in_flight: service.in_flight(),
                    cache: service.cache_stats().into(),
                },
                false,
            ),
            Ok(Request::Shutdown { mode }) => {
                shared.draining.store(true, Ordering::SeqCst);
                if mode == ShutdownMode::Cancel {
                    service.cancel_token().cancel();
                }
                (
                    Response::ShuttingDown {
                        mode: mode.name().to_string(),
                    },
                    true,
                )
            }
            Ok(Request::Map(req)) => {
                let start = Instant::now();
                let response = match service.execute(&req) {
                    Ok(resp) => Response::Map(Box::new(resp)),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                };
                let trace = service.trace();
                if trace.enabled(TraceLevel::Phase) {
                    trace.emit(TraceEvent::Phase {
                        phase: Phase::Serve,
                        round: None,
                        level: None,
                        elapsed_us: start.elapsed().as_micros() as u64,
                    });
                }
                (response, false)
            }
        };
        write_frame(&mut writer, &response.to_json(), &faults)?;
        if shutdown {
            break;
        }
    }
    Ok(())
}
