//! The keyed, capacity-bounded per-topology context cache.
//!
//! Keys are canonical topology names (`Topology::name`, which determines the
//! processor graph and hence the partial-cube dimension; per-instance
//! extension-bit variation is covered by the per-`(seed, dim, NH)`
//! permutation memo *inside* each [`TopologyContext`]). Values are shared
//! [`Arc<TopologyContext>`]s.
//!
//! Construction is **single-flight**: when several requests miss on the same
//! key concurrently, exactly one builds the context (partial-cube
//! recognition is the expensive part) while the others wait on a condvar and
//! then share the result — asserted by the cache tests via the miss counter.
//! A failed build is *not* cached: the next requester retries, which keeps a
//! transient fault from poisoning the key forever.
//!
//! Per `docs/RESILIENCE.md`, the cache is a latency optimization and never a
//! correctness dependency: a hit must produce byte-identical enhancement
//! results to a miss (pinned by the cache tests and the daemon integration
//! test), so eviction at capacity is always safe.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use tie_timer::{TieError, TopologyContext};
use tie_trace::{Phase, TraceEvent, TraceHandle, TraceLevel};

use tie_fault::FaultHandle;

/// Whether a lookup found a resident context or had to build one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served from a resident context (labeling reconstruction skipped).
    Hit,
    /// Built (and cached) a fresh context.
    Miss,
}

impl CacheDisposition {
    /// Stable wire name: `"hit"` / `"miss"`.
    pub fn name(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
        }
    }
}

/// Counters of one cache, cumulative since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Resident entries.
    pub entries: usize,
    /// Lookups served from a resident context.
    pub hits: u64,
    /// Contexts built (one per single-flight construction).
    pub misses: u64,
    /// Entries dropped at capacity.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    /// Resident contexts in LRU order: least-recently-used first. Linear
    /// scans are fine — capacities are single digits and the values are
    /// megabyte-scale contexts, not tiny entries.
    entries: Vec<(String, Arc<TopologyContext>)>,
    /// Keys currently being built by some thread (single-flight registry).
    building: Vec<String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The cache. Shareable across threads behind an `Arc`; all mutation happens
/// under one internal mutex (lookups are rare and cheap next to the
/// enhancements they gate).
#[derive(Debug)]
pub struct TopologyCache {
    capacity: usize,
    trace: TraceHandle,
    faults: FaultHandle,
    state: Mutex<CacheState>,
    cond: Condvar,
}

impl TopologyCache {
    /// A cache holding at most `capacity` contexts (`0` is clamped to 1 —
    /// a cache that cannot hold the entry it just built would turn every
    /// lookup into a miss and silently disable single-flight sharing).
    pub fn new(capacity: usize, trace: TraceHandle, faults: FaultHandle) -> Self {
        TopologyCache {
            capacity: capacity.max(1),
            trace,
            faults,
            state: Mutex::new(CacheState::default()),
            cond: Condvar::new(),
        }
    }

    /// Looks up `key`, building the context with `build` on a miss. Misses
    /// on the same key are single-flight: one builder runs, concurrent
    /// requesters wait and share the result (counted as hits — they did not
    /// build).
    ///
    /// # Errors
    /// Propagates `build`'s error to the caller that ran it; the failure is
    /// not cached, so later lookups retry.
    pub fn get_or_build<F>(
        &self,
        key: &str,
        build: F,
    ) -> Result<(Arc<TopologyContext>, CacheDisposition), TieError>
    where
        F: FnOnce() -> Result<TopologyContext, TieError>,
    {
        let mut state = self.lock();
        loop {
            if let Some(idx) = state.entries.iter().position(|(k, _)| k == key) {
                let entry = state.entries.remove(idx);
                let ctx = Arc::clone(&entry.1);
                state.entries.push(entry);
                state.hits += 1;
                self.emit(&state, key, CacheDisposition::Hit);
                return Ok((ctx, CacheDisposition::Hit));
            }
            if state.building.iter().any(|k| k == key) {
                // Someone is building this key: wait for them, then re-check.
                // On their success the hit branch above fires; on their
                // failure this thread falls through and becomes the builder.
                state = self.wait(state);
                continue;
            }
            break;
        }
        state.building.push(key.to_string());
        drop(state);

        // Build outside the lock: recognition can take a while and must not
        // block lookups of other topologies. The `cache_build` delay site
        // makes the concurrent-miss window deterministic in tests.
        self.faults.delay("cache_build");
        let build_start = Instant::now();
        let built = build();
        let build_us = build_start.elapsed().as_micros() as u64;

        let mut state = self.lock();
        state.building.retain(|k| k != key);
        self.cond.notify_all();
        let ctx = match built {
            Ok(ctx) => Arc::new(ctx),
            Err(e) => return Err(e),
        };
        state.misses += 1;
        state.entries.push((key.to_string(), Arc::clone(&ctx)));
        while state.entries.len() > self.capacity {
            state.entries.remove(0);
            state.evictions += 1;
        }
        if self.trace.enabled(TraceLevel::Phase) {
            self.trace.emit(TraceEvent::Phase {
                phase: Phase::Cache,
                round: None,
                level: None,
                elapsed_us: build_us,
            });
        }
        self.emit(&state, key, CacheDisposition::Miss);
        Ok((ctx, CacheDisposition::Miss))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.lock();
        CacheStats {
            entries: state.entries.len(),
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
        }
    }

    fn emit(&self, state: &CacheState, key: &str, disposition: CacheDisposition) {
        // Guarded so the disabled-trace path never allocates the key string.
        if self.trace.enabled(TraceLevel::Phase) {
            self.trace.emit(TraceEvent::Cache {
                key: key.to_string(),
                disposition: disposition.name(),
                entries: state.entries.len(),
                hits: state.hits,
                misses: state.misses,
                evictions: state.evictions,
            });
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        match self.state.lock() {
            Ok(guard) => guard,
            // Builders never mutate under the lock while running user code
            // (the build happens with the lock dropped), so the state is
            // consistent even after a panic elsewhere.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, CacheState>) -> MutexGuard<'a, CacheState> {
        match self.cond.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
