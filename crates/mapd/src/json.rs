//! Minimal hand-rolled JSON: the workspace's canonical string escaper and a
//! small recursive-descent parser for the `mapd` wire protocol.
//!
//! The offline build has no JSON crate, so serialization throughout the
//! workspace is hand-written `write!` calls; this module adds the one piece
//! the daemon needs on top of that: *parsing* incoming frames. The parser
//! covers standard JSON (objects, arrays, strings with escapes, numbers,
//! booleans, null) with a depth limit, and reports one-line errors with a
//! byte offset.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts — far above anything the
/// protocol produces, low enough that a hostile frame cannot overflow the
/// stack.
const MAX_DEPTH: usize = 64;

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
/// This is the single escaper shared by the bench reports, `map_file
/// --json` and the `mapd` responses.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Numbers keep their raw source text so integer
/// callers (`u64` mapping entries, Coco values) never lose precision to a
/// float round-trip; object fields keep source order in a plain `Vec` (the
/// protocol's objects are small, and iteration order stays deterministic).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text.
    Num(String),
    /// A (decoded) string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document.
    ///
    /// # Errors
    /// A one-line message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Field `key` of an object (`None` for non-objects/missing fields).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as `usize`, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape consumed its digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character (input is a &str, so
                    // boundaries are valid; find the next one).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xc0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(format!("invalid UTF-8 at byte {start}")),
                    }
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `u` is already consumed),
    /// combining surrogate pairs. Leaves `pos` after the last consumed digit.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xdc00..0xe000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(cp)
                        .ok_or_else(|| format!("bad surrogate pair at byte {}", self.pos));
                }
            }
            return Err(format!("lone surrogate at byte {}", self.pos));
        }
        char::from_u32(hi).ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(format!("bad hex digit at byte {}", self.pos)),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(s) => Ok(Json::Num(s.to_string())),
            Err(_) => Err(format!("bad number at byte {start}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(
            "{\"op\": \"map\", \"nh\": 50, \"eps\": 0.03, \"ok\": true, \
             \"edges\": [[0, 1, 2], [1, 2, 3]], \"none\": null}",
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("map"));
        assert_eq!(v.get("nh").and_then(Json::as_u64), Some(50));
        assert_eq!(v.get("eps").and_then(Json::as_f64), Some(0.03));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Json::Null));
        let edges = v.get("edges").and_then(Json::as_arr).unwrap();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].as_arr().unwrap()[2].as_u64(), Some(2));
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        for original in ["a\"b\\c\nd\te", "\u{1}\u{1f}", "héllo → wörld", ""] {
            let doc = format!("{{\"s\": \"{}\"}}", escape(original));
            let v = Json::parse(&doc).unwrap();
            assert_eq!(v.get("s").and_then(Json::as_str), Some(original));
        }
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        let v = Json::parse("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone surrogate");
    }

    #[test]
    fn numbers_preserve_integer_precision() {
        let v = Json::parse("{\"big\": 18446744073709551615}").unwrap();
        assert_eq!(v.get("big").and_then(Json::as_u64), Some(u64::MAX));
        let v = Json::parse("[-3.5e2]").unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_f64(), Some(-350.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "01x",
            "nul",
            "+5",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }
}
