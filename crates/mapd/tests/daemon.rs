//! End-to-end daemon test: a real Unix socket, a server thread, and the
//! byte-identity contract between served and one-shot mappings.

#![cfg(unix)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use tie_fault::FaultHandle;
use tie_graph::generators;
use tie_mapd::client::Client;
use tie_mapd::protocol::{GraphSource, MapRequest, Request, Response, ShutdownMode};
use tie_mapd::{server, Service, ServiceOptions};

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mapd-test-{}-{tag}.sock", std::process::id()))
}

fn demo_request(seed: u64) -> MapRequest {
    let g = generators::barabasi_albert(400, 3, seed);
    MapRequest {
        graph: GraphSource::Inline {
            num_vertices: g.num_vertices(),
            edges: g.edges().collect(),
        },
        topology: "grid4x4".to_string(),
        case: "c2".to_string(),
        nh: 8,
        eps: 0.03,
        seed,
        threads: 2,
        batch: 0,
        deadline_ms: 0,
    }
}

fn connect_with_retry(path: &std::path::Path) -> Client {
    for _ in 0..200 {
        if let Ok(c) = Client::connect(path, FaultHandle::off()) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon socket {path:?} never came up");
}

#[test]
fn served_mapping_matches_one_shot_and_drains_cleanly() {
    let path = socket_path("e2e");
    let service = Arc::new(Service::new(ServiceOptions::default()));
    let server_thread = {
        let path = path.clone();
        let service = Arc::clone(&service);
        std::thread::spawn(move || server::serve(&path, service))
    };

    let req = demo_request(7);
    // The one-shot expectation comes from the same execution path the
    // daemon uses — a fresh service, so a guaranteed cache miss.
    let oneshot = Service::new(ServiceOptions::default())
        .execute(&req)
        .expect("one-shot execution");
    assert_eq!(oneshot.cache, "miss");

    let mut client = connect_with_retry(&path);

    // First served request: a miss, byte-identical to the one-shot.
    let first = match client.request(&Request::Map(Box::new(req.clone()))) {
        Ok(Response::Map(resp)) => *resp,
        other => panic!("expected map response, got {other:?}"),
    };
    assert_eq!(first.cache, "miss");
    assert_eq!(first.mapping, oneshot.mapping);
    assert_eq!(first.enhanced, oneshot.enhanced);
    assert_eq!(first.total_swaps, oneshot.total_swaps);

    // Second served request: a hit, still byte-identical.
    let second = match client.request(&Request::Map(Box::new(req.clone()))) {
        Ok(Response::Map(resp)) => *resp,
        other => panic!("expected map response, got {other:?}"),
    };
    assert_eq!(second.cache, "hit");
    assert_eq!(second.mapping, oneshot.mapping);
    assert_eq!(second.enhanced, oneshot.enhanced);

    // Ping reports the counters the two requests produced.
    match client.request(&Request::Ping) {
        Ok(Response::Pong { cache, .. }) => {
            assert_eq!(cache.misses, 1);
            assert_eq!(cache.hits, 1);
            assert_eq!(cache.entries, 1);
        }
        other => panic!("expected pong, got {other:?}"),
    }

    // Malformed frames are answered with an error, not a dropped daemon.
    let mut raw = connect_with_retry(&path);
    match raw.request(&Request::Map(Box::new(MapRequest {
        topology: "klein4".to_string(),
        ..req.clone()
    }))) {
        Ok(Response::Error { message }) => assert!(message.contains("klein4"), "{message}"),
        other => panic!("expected error response, got {other:?}"),
    }
    // Close this side connection: the drain below waits for every open
    // connection to finish, and this one would otherwise idle forever.
    drop(raw);

    // Drain shutdown: acknowledged, then the server thread exits and the
    // socket file disappears.
    match client.request(&Request::Shutdown {
        mode: ShutdownMode::Drain,
    }) {
        Ok(Response::ShuttingDown { mode }) => assert_eq!(mode, "drain"),
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    server_thread
        .join()
        .expect("server thread")
        .expect("serve result");
    assert!(!path.exists(), "socket file must be removed on drain");
}

#[test]
fn socket_faults_fail_one_exchange_not_the_daemon() {
    let path = socket_path("faults");
    let service = Arc::new(Service::new(ServiceOptions::default()));
    let server_thread = {
        let path = path.clone();
        let service = Arc::clone(&service);
        std::thread::spawn(move || server::serve(&path, service))
    };
    // Wait for the socket, then connect a client whose *own* fault handle
    // fails its first socket operation (`io@1`).
    connect_with_retry(&path);
    let faulty = FaultHandle::new(tie_fault::FaultPlan::parse("io@1").expect("fault plan"));
    let mut client = loop {
        if let Ok(c) = Client::connect(&path, faulty.clone()) {
            break c;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let err = client.request(&Request::Ping);
    assert!(err.is_err(), "first exchange must hit the injected fault");
    drop(client);

    // The fault is consume-once: a fresh connection with the same handle
    // works, and the daemon is still alive to answer it.
    let mut retry = connect_with_retry(&path);
    match retry.request(&Request::Ping) {
        Ok(Response::Pong { .. }) => {}
        other => panic!("daemon must survive a faulted client, got {other:?}"),
    }
    let _ = retry.request(&Request::Shutdown {
        mode: ShutdownMode::Drain,
    });
    drop(retry);
    server_thread
        .join()
        .expect("server thread")
        .expect("serve result");
}

#[test]
fn cancel_shutdown_fires_the_cancellation_token() {
    let path = socket_path("cancel");
    let service = Arc::new(Service::new(ServiceOptions::default()));
    let server_thread = {
        let path = path.clone();
        let service = Arc::clone(&service);
        std::thread::spawn(move || server::serve(&path, service))
    };
    let mut client = connect_with_retry(&path);
    match client.request(&Request::Shutdown {
        mode: ShutdownMode::Cancel,
    }) {
        Ok(Response::ShuttingDown { mode }) => assert_eq!(mode, "cancel"),
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    server_thread
        .join()
        .expect("server thread")
        .expect("serve result");
    assert!(
        service.cancel_token().is_cancelled(),
        "cancel mode must fire the service-wide token"
    );
}
