//! Cache behavior tests: single-flight construction, LRU eviction at
//! capacity, and the load-bearing invariant that a cache hit produces
//! byte-identical enhancement results to a miss.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tie_fault::FaultHandle;
use tie_graph::generators;
use tie_mapd::{CacheDisposition, TopologyCache};
use tie_mapping::identity_mapping;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{Timer, TimerConfig, TopologyContext};
use tie_topology::Topology;
use tie_trace::{MemorySink, TraceHandle, TraceLevel};

#[test]
fn concurrent_misses_are_single_flight() {
    let cache = TopologyCache::new(4, TraceHandle::off(), FaultHandle::off());
    let builds = AtomicUsize::new(0);
    let topo = Topology::grid2d(4, 4);

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let (ctx, _) = cache
                    .get_or_build("grid4x4", || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        TopologyContext::recognize(&topo.graph)
                    })
                    .unwrap();
                assert_eq!(ctx.num_pes(), 16);
            });
        }
    });

    // Exactly one thread built; the other three waited and shared the result.
    assert_eq!(builds.load(Ordering::SeqCst), 1);
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.entries, 1);
}

#[test]
fn waiters_share_one_arc() {
    let cache = TopologyCache::new(4, TraceHandle::off(), FaultHandle::off());
    let topo = Topology::hypercube(3);
    let (a, d1) = cache
        .get_or_build("3-dimHQ", || TopologyContext::recognize(&topo.graph))
        .unwrap();
    let (b, d2) = cache
        .get_or_build("3-dimHQ", || TopologyContext::recognize(&topo.graph))
        .unwrap();
    assert_eq!(d1, CacheDisposition::Miss);
    assert_eq!(d2, CacheDisposition::Hit);
    assert!(Arc::ptr_eq(&a, &b), "hit must return the cached context");
}

#[test]
fn eviction_is_lru_at_capacity() {
    let cache = TopologyCache::new(2, TraceHandle::off(), FaultHandle::off());
    let build = |t: &Topology| {
        let g = t.graph.clone();
        move || TopologyContext::recognize(&g)
    };
    let (ta, tb, tc) = (
        Topology::grid2d(2, 2),
        Topology::grid2d(2, 4),
        Topology::grid2d(4, 4),
    );
    cache.get_or_build("a", build(&ta)).unwrap();
    cache.get_or_build("b", build(&tb)).unwrap();
    // Touch "a" so "b" becomes least-recently used.
    let (_, d) = cache.get_or_build("a", build(&ta)).unwrap();
    assert_eq!(d, CacheDisposition::Hit);
    // Inserting "c" at capacity 2 must evict "b", not "a".
    cache.get_or_build("c", build(&tc)).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.evictions, 1);
    let (_, d) = cache.get_or_build("a", build(&ta)).unwrap();
    assert_eq!(d, CacheDisposition::Hit, "a must have survived");
    let (_, d) = cache.get_or_build("b", build(&tb)).unwrap();
    assert_eq!(d, CacheDisposition::Miss, "b must have been evicted");
}

#[test]
fn failed_builds_are_not_cached() {
    use tie_timer::TieError;
    let cache = TopologyCache::new(2, TraceHandle::off(), FaultHandle::off());
    let result = cache.get_or_build("broken", || {
        Err(TieError::InvalidInput("synthetic".to_string()))
    });
    assert!(result.is_err());
    let stats = cache.stats();
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.misses, 0);
    // The key is free again: a later build succeeds.
    let topo = Topology::grid2d(2, 2);
    let (_, d) = cache
        .get_or_build("broken", || TopologyContext::recognize(&topo.graph))
        .unwrap();
    assert_eq!(d, CacheDisposition::Miss);
}

#[test]
fn cache_emits_trace_events() {
    use tie_trace::{Phase, TraceEvent};
    let sink = Arc::new(MemorySink::default());
    let trace = TraceHandle::new(Arc::clone(&sink) as _, TraceLevel::Phase);
    let cache = TopologyCache::new(2, trace, FaultHandle::off());
    let topo = Topology::grid2d(2, 2);
    cache
        .get_or_build("grid2x2", || TopologyContext::recognize(&topo.graph))
        .unwrap();
    cache
        .get_or_build("grid2x2", || TopologyContext::recognize(&topo.graph))
        .unwrap();
    let events: Vec<TraceEvent> = sink.events().into_iter().map(|r| r.event).collect();
    assert!(
        events.iter().any(|e| matches!(
            e,
            TraceEvent::Cache { key, disposition: "miss", misses: 1, .. } if key == "grid2x2"
        )),
        "missing miss event in {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            TraceEvent::Cache {
                disposition: "hit",
                hits: 1,
                ..
            }
        )),
        "missing hit event in {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            TraceEvent::Phase {
                phase: Phase::Cache,
                ..
            }
        )),
        "missing cache-phase timing event in {events:?}"
    );
}

/// The invariant the whole cache rests on: enhancing through a cached
/// (hit) context yields byte-identical results to a freshly built (miss)
/// context, because contexts are pure state over the topology.
#[test]
fn hit_and_miss_enhancements_are_byte_identical() {
    let ga = generators::barabasi_albert(300, 3, 11);
    let topo = Topology::grid2d(4, 4);
    let part = partition(
        &ga,
        &PartitionConfig {
            epsilon: 0.03,
            ..PartitionConfig::new(16, 11)
        },
    );
    let initial = identity_mapping(&part, 16);
    let cache = TopologyCache::new(2, TraceHandle::off(), FaultHandle::off());

    let run = |ctx: &TopologyContext| {
        Timer::new(TimerConfig::new(8, 11).with_threads(2))
            .enhance_with_context(&ga, ctx, &initial)
            .unwrap()
    };
    let (ctx_miss, d1) = cache
        .get_or_build(&topo.name, || TopologyContext::recognize(&topo.graph))
        .unwrap();
    let miss = run(&ctx_miss);
    let (ctx_hit, d2) = cache
        .get_or_build(&topo.name, || TopologyContext::recognize(&topo.graph))
        .unwrap();
    let hit = run(&ctx_hit);

    assert_eq!(d1, CacheDisposition::Miss);
    assert_eq!(d2, CacheDisposition::Hit);
    let pes = |m: &tie_mapping::Mapping| {
        (0..m.num_tasks())
            .map(|v| m.pe_of(v as u32))
            .collect::<Vec<_>>()
    };
    assert_eq!(pes(&miss.mapping), pes(&hit.mapping));
    assert_eq!(miss.final_coco, hit.final_coco);
    assert_eq!(miss.final_coco_plus, hit.final_coco_plus);
    assert_eq!(miss.total_swaps, hit.total_swaps);
    assert_eq!(miss.hierarchies_accepted, hit.hierarchies_accepted);
}
