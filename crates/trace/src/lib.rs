//! # tie-trace
//!
//! Flight-recorder observability for the TiMEr pipeline: a zero-dependency
//! structured tracing and metrics facade that makes every accept-gate
//! decision and pipeline phase explainable after the fact.
//!
//! The ICPP'18 TIMER loop runs `NH` hierarchy rounds and discards the
//! per-round `(ΔCoco, ΔDiv)` evidence the moment the accept gate has ruled
//! on it — which is why anomalies like the medium-scale 0/40 acceptance
//! collapse in `BENCH_timer.json` were invisible. This crate provides the
//! recording substrate:
//!
//! * [`TraceSink`] — where events go: [`NullSink`] (nothing, the default),
//!   [`StderrSink`] (human-readable lines), [`JsonlSink`] (one JSON object
//!   per line, machine-readable), [`MemorySink`] (in-process, for tests).
//! * [`TraceHandle`] — the cheap, cloneable handle instrumented code carries.
//!   A disabled handle (the default) reduces every emission to one branch on
//!   an `Option`, so instrumented hot paths stay byte-identical in behavior
//!   and effectively free when tracing is off.
//! * [`TraceEvent`] — the event vocabulary: run start/end, per-round accept
//!   gate verdicts with their exact deltas, span-style phase timings with
//!   monotonic timestamps and thread ids, and speculation commit/invalidate
//!   records.
//! * [`LogHistogram`] — log₂-bucketed signed histograms for the ΔCoco/ΔDiv
//!   distributions, built from the deltas the gate already computes (no
//!   extra full-graph recomputes).
//! * [`Phase`] / [`PhaseTimes`] — a fixed phase vocabulary and a zero-alloc
//!   accumulator for per-phase wall-clock breakdowns.
//!
//! Timestamps (`ts_us`) are microseconds of monotonic time since the handle
//! was created; `thread` is a small sequential id assigned per OS thread on
//! first emission (stable within a process, not across processes).
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod event;
pub mod histogram;
pub mod phase;
pub mod sink;

pub use event::TraceEvent;
pub use histogram::{HistogramBucket, LogHistogram};
pub use phase::{Phase, PhaseTimes};
pub use sink::{JsonlSink, MemorySink, NullSink, StderrSink, TraceSink};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Verbosity of a trace. Levels are cumulative: `Debug` includes everything
/// `Phase` emits, which includes everything `Gate` emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No events at all (the default).
    #[default]
    Off,
    /// Run start/end and the per-round accept-gate verdicts.
    Gate,
    /// Additionally: per-round phase spans and speculation batch records.
    Phase,
    /// Additionally: per-hierarchy-level sweep/contraction spans.
    Debug,
}

impl TraceLevel {
    /// Parses a CLI-style level name (`off`, `gate`, `phase`, `debug`;
    /// `all` is an alias for `debug`).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "gate" => Some(TraceLevel::Gate),
            "phase" => Some(TraceLevel::Phase),
            "debug" | "all" => Some(TraceLevel::Debug),
            _ => None,
        }
    }
}

/// Sequential per-thread ids: `ThreadId` has no stable public integer, and
/// the recorder wants small, diff-friendly numbers.
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|&o| o)
}

struct HandleInner {
    sink: Arc<dyn TraceSink>,
    level: TraceLevel,
    epoch: Instant,
}

/// The handle instrumented code carries. Cloning is cheap (an `Option<Arc>`),
/// a disabled handle costs one branch per emission, and the handle is `Sync`
/// so speculative worker threads can emit through it concurrently.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<HandleInner>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "TraceHandle(off)"),
            Some(i) => write!(f, "TraceHandle({:?})", i.level),
        }
    }
}

impl TraceHandle {
    /// A disabled handle: every emission is a no-op branch.
    pub fn off() -> Self {
        TraceHandle::default()
    }

    /// A handle that forwards events at or below `level` to `sink`.
    /// `TraceLevel::Off` yields a disabled handle regardless of the sink.
    pub fn new(sink: Arc<dyn TraceSink>, level: TraceLevel) -> Self {
        if level == TraceLevel::Off {
            return TraceHandle::off();
        }
        TraceHandle {
            inner: Some(Arc::new(HandleInner {
                sink,
                level,
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether events of the given level would be recorded. Lets callers
    /// skip preparatory work (not just event construction) when tracing is
    /// off or filtered.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        match &self.inner {
            None => false,
            Some(i) => level <= i.level,
        }
    }

    /// Whether any events are recorded at all.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds of monotonic time since this handle was created (0 for a
    /// disabled handle).
    pub fn ts_us(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(i) => i.epoch.elapsed().as_micros() as u64,
        }
    }

    /// Records `event` if its level passes the handle's filter. Timestamp
    /// and thread id are attached here so every sink sees the same view.
    pub fn emit(&self, event: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        if event.level() > inner.level {
            return;
        }
        let ts_us = inner.epoch.elapsed().as_micros() as u64;
        inner.sink.record(&event, ts_us, thread_ordinal());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parse() {
        assert!(TraceLevel::Off < TraceLevel::Gate);
        assert!(TraceLevel::Gate < TraceLevel::Phase);
        assert!(TraceLevel::Phase < TraceLevel::Debug);
        assert_eq!(TraceLevel::parse("gate"), Some(TraceLevel::Gate));
        assert_eq!(TraceLevel::parse("all"), Some(TraceLevel::Debug));
        assert_eq!(TraceLevel::parse("debug"), Some(TraceLevel::Debug));
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::off();
        assert!(!h.is_active());
        assert!(!h.enabled(TraceLevel::Gate));
        assert_eq!(h.ts_us(), 0);
        // Emitting into the void must not panic.
        h.emit(TraceEvent::RunEnd {
            final_coco: 0,
            final_div: 0,
            accepted: 0,
            rejected: 0,
            ties: 0,
            stop_reason: "completed",
            worker_panics: 0,
        });
        assert_eq!(format!("{h:?}"), "TraceHandle(off)");
    }

    #[test]
    fn off_level_disables_even_with_a_sink() {
        let sink = Arc::new(MemorySink::default());
        let h = TraceHandle::new(sink.clone(), TraceLevel::Off);
        assert!(!h.is_active());
    }

    #[test]
    fn level_filter_drops_finer_events() {
        let sink = Arc::new(MemorySink::default());
        let h = TraceHandle::new(sink.clone(), TraceLevel::Gate);
        h.emit(TraceEvent::Gate {
            round: 0,
            coco_delta: -1,
            div_delta: 0,
            accepted: true,
            tie: false,
            coco: 9,
            div: 0,
        });
        // Phase-level and debug-level events must be filtered out.
        h.emit(TraceEvent::Phase {
            phase: Phase::Sweep,
            round: Some(0),
            level: None,
            elapsed_us: 5,
        });
        h.emit(TraceEvent::Phase {
            phase: Phase::Sweep,
            round: Some(0),
            level: Some(1),
            elapsed_us: 5,
        });
        assert_eq!(sink.events().len(), 1);
    }

    #[test]
    fn timestamps_are_monotone() {
        let sink = Arc::new(MemorySink::default());
        let h = TraceHandle::new(sink.clone(), TraceLevel::Debug);
        for round in 0..10 {
            h.emit(TraceEvent::Gate {
                round,
                coco_delta: 0,
                div_delta: 0,
                accepted: true,
                tie: true,
                coco: 0,
                div: 0,
            });
        }
        let events = sink.events();
        assert_eq!(events.len(), 10);
        for pair in events.windows(2) {
            assert!(pair[0].ts_us <= pair[1].ts_us);
        }
    }
}
