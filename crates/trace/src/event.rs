//! The flight-recorder event vocabulary and its serializations.
//!
//! Every event renders to one JSONL line (for [`crate::JsonlSink`]) and one
//! human-readable line (for [`crate::StderrSink`]). The JSONL schema is
//! stable: every line is a flat JSON object carrying at least `event`
//! (the kind), `ts_us` (microseconds of monotonic time since the trace
//! handle was created) and `thread` (small sequential per-thread id).

use std::fmt::Write as _;

use crate::phase::Phase;
use crate::TraceLevel;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A `Timer::enhance` run started.
    RunStart {
        /// Number of hierarchy rounds (`NH`) the run will offer to the gate.
        nh: usize,
        /// Worker threads for the speculative batches.
        threads: usize,
        /// Effective speculation-depth cap.
        batch: usize,
        /// `Coco` of the initial labeling.
        initial_coco: u64,
        /// `Div` of the initial labeling (0 when diversity is disabled).
        initial_div: u64,
    },
    /// The accept gate ruled on one hierarchy round. Exactly `nh` of these
    /// are emitted per run, in round order, with the exact deltas the gate
    /// saw — the evidence that used to be discarded.
    Gate {
        /// Round index in `0..nh`.
        round: usize,
        /// Exact `Coco` change of the candidate vs the accepted labeling.
        coco_delta: i64,
        /// Exact `Div` change of the candidate vs the accepted labeling.
        div_delta: i64,
        /// Whether the candidate was kept.
        accepted: bool,
        /// Whether it was kept as an equal-objective tie
        /// (`coco_delta == div_delta`, so `ΔCoco⁺ = 0`).
        tie: bool,
        /// Accepted `Coco` after the verdict.
        coco: i64,
        /// Accepted `Div` after the verdict.
        div: i64,
    },
    /// A pipeline phase finished (span-style: emitted at span end, duration
    /// attached). `round`/`level` locate the span when applicable.
    Phase {
        /// Which phase.
        phase: Phase,
        /// Hierarchy round the span belongs to, if any.
        round: Option<usize>,
        /// Hierarchy level within the round, if any (per-level spans are
        /// `TraceLevel::Debug`; round-level spans are `TraceLevel::Phase`).
        level: Option<usize>,
        /// Span duration in microseconds.
        elapsed_us: u64,
    },
    /// A speculation batch was committed (or cut short by an invalidation).
    Speculation {
        /// First round index of the batch.
        first_round: usize,
        /// Rounds speculated in the batch.
        batch_len: usize,
        /// Rounds actually committed before an invalidation (== `batch_len`
        /// when the batch survived intact).
        committed: usize,
        /// Whether an acceptance invalidated the remaining speculations.
        invalidated: bool,
        /// Speculation depth that produced the batch.
        depth: usize,
    },
    /// The `mapd` per-topology cache ruled on one lookup. `key` is the
    /// canonical topology name (builder-generated, identifier-like — no
    /// JSON escaping needed), the counters are cumulative since daemon start.
    Cache {
        /// Canonical topology name the lookup was keyed by.
        key: String,
        /// "hit" or "miss".
        disposition: &'static str,
        /// Entries resident after the lookup.
        entries: usize,
        /// Cumulative cache hits.
        hits: u64,
        /// Cumulative cache misses (context constructions).
        misses: u64,
        /// Cumulative evictions at capacity.
        evictions: u64,
    },
    /// A `Timer::enhance` run finished.
    RunEnd {
        /// `Coco` of the final labeling.
        final_coco: u64,
        /// `Div` of the final labeling.
        final_div: u64,
        /// Rounds kept (including equal-objective ties).
        accepted: usize,
        /// Rounds rejected.
        rejected: usize,
        /// Kept rounds that were equal-objective ties.
        ties: usize,
        /// Why the run stopped (`StopReason::name()`: "completed",
        /// "deadline_exceeded", "cancelled", "consecutive_rejections").
        stop_reason: &'static str,
        /// Speculative worker panics absorbed by the quarantine re-run.
        worker_panics: usize,
    },
}

impl TraceEvent {
    /// The verbosity level at which this event is emitted.
    pub fn level(&self) -> TraceLevel {
        match self {
            TraceEvent::RunStart { .. } | TraceEvent::RunEnd { .. } | TraceEvent::Gate { .. } => {
                TraceLevel::Gate
            }
            TraceEvent::Phase { level: Some(_), .. } => TraceLevel::Debug,
            TraceEvent::Phase { level: None, .. }
            | TraceEvent::Speculation { .. }
            | TraceEvent::Cache { .. } => TraceLevel::Phase,
        }
    }

    /// Stable kind name (the `event` field of the JSONL schema).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::Gate { .. } => "gate",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::Speculation { .. } => "speculation",
            TraceEvent::Cache { .. } => "cache",
            TraceEvent::RunEnd { .. } => "run_end",
        }
    }

    /// Renders the event as one flat JSON object (no trailing newline).
    /// Hand-rolled because the offline build has no JSON crate; every value
    /// is a number, boolean or identifier-like string, so no escaping is
    /// needed.
    pub fn to_json(&self, ts_us: u64, thread: u64) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"event\": \"{}\", \"ts_us\": {ts_us}, \"thread\": {thread}",
            self.kind()
        );
        match self {
            TraceEvent::RunStart {
                nh,
                threads,
                batch,
                initial_coco,
                initial_div,
            } => {
                let _ = write!(
                    s,
                    ", \"nh\": {nh}, \"threads\": {threads}, \"batch\": {batch}, \
                     \"initial_coco\": {initial_coco}, \"initial_div\": {initial_div}"
                );
            }
            TraceEvent::Gate {
                round,
                coco_delta,
                div_delta,
                accepted,
                tie,
                coco,
                div,
            } => {
                let _ = write!(
                    s,
                    ", \"round\": {round}, \"coco_delta\": {coco_delta}, \
                     \"div_delta\": {div_delta}, \"accepted\": {accepted}, \"tie\": {tie}, \
                     \"coco\": {coco}, \"div\": {div}"
                );
            }
            TraceEvent::Phase {
                phase,
                round,
                level,
                elapsed_us,
            } => {
                let _ = write!(s, ", \"phase\": \"{}\"", phase.name());
                if let Some(r) = round {
                    let _ = write!(s, ", \"round\": {r}");
                }
                if let Some(l) = level {
                    let _ = write!(s, ", \"level\": {l}");
                }
                let _ = write!(s, ", \"elapsed_us\": {elapsed_us}");
            }
            TraceEvent::Speculation {
                first_round,
                batch_len,
                committed,
                invalidated,
                depth,
            } => {
                let _ = write!(
                    s,
                    ", \"first_round\": {first_round}, \"batch_len\": {batch_len}, \
                     \"committed\": {committed}, \"invalidated\": {invalidated}, \
                     \"depth\": {depth}"
                );
            }
            TraceEvent::Cache {
                key,
                disposition,
                entries,
                hits,
                misses,
                evictions,
            } => {
                let _ = write!(
                    s,
                    ", \"key\": \"{key}\", \"disposition\": \"{disposition}\", \
                     \"entries\": {entries}, \"hits\": {hits}, \"misses\": {misses}, \
                     \"evictions\": {evictions}"
                );
            }
            TraceEvent::RunEnd {
                final_coco,
                final_div,
                accepted,
                rejected,
                ties,
                stop_reason,
                worker_panics,
            } => {
                let _ = write!(
                    s,
                    ", \"final_coco\": {final_coco}, \"final_div\": {final_div}, \
                     \"accepted\": {accepted}, \"rejected\": {rejected}, \"ties\": {ties}, \
                     \"stop_reason\": \"{stop_reason}\", \"worker_panics\": {worker_panics}"
                );
            }
        }
        s.push('}');
        s
    }

    /// Renders the event as one human-readable line (no trailing newline).
    pub fn to_human(&self, ts_us: u64, thread: u64) -> String {
        let mut s = String::with_capacity(120);
        let _ = write!(s, "[{:>10.3} ms t{thread}] ", ts_us as f64 / 1e3);
        match self {
            TraceEvent::RunStart {
                nh,
                threads,
                batch,
                initial_coco,
                initial_div,
            } => {
                let _ = write!(
                    s,
                    "run start: NH={nh} threads={threads} batch={batch} \
                     Coco={initial_coco} Div={initial_div}"
                );
            }
            TraceEvent::Gate {
                round,
                coco_delta,
                div_delta,
                accepted,
                tie,
                coco,
                div,
            } => {
                let verdict = match (accepted, tie) {
                    (true, true) => "TIE ",
                    (true, false) => "KEEP",
                    (false, _) => "drop",
                };
                let _ = write!(
                    s,
                    "round {round:>3}: {verdict} dCoco={coco_delta:+} dDiv={div_delta:+} \
                     dObj={:+} -> Coco={coco} Div={div}",
                    coco_delta - div_delta
                );
            }
            TraceEvent::Phase {
                phase,
                round,
                level,
                elapsed_us,
            } => {
                let _ = write!(s, "phase {:<15}", phase.name());
                if let Some(r) = round {
                    let _ = write!(s, " round {r:>3}");
                }
                if let Some(l) = level {
                    let _ = write!(s, " level {l}");
                }
                let _ = write!(s, ": {:.3} ms", *elapsed_us as f64 / 1e3);
            }
            TraceEvent::Speculation {
                first_round,
                batch_len,
                committed,
                invalidated,
                depth,
            } => {
                let _ = write!(
                    s,
                    "speculation: rounds {first_round}..{} committed {committed}/{batch_len} \
                     depth={depth}{}",
                    first_round + batch_len,
                    if *invalidated { " INVALIDATED" } else { "" }
                );
            }
            TraceEvent::Cache {
                key,
                disposition,
                entries,
                hits,
                misses,
                evictions,
            } => {
                let _ = write!(
                    s,
                    "cache {disposition}: key={key} entries={entries} \
                     hits={hits} misses={misses} evictions={evictions}"
                );
            }
            TraceEvent::RunEnd {
                final_coco,
                final_div,
                accepted,
                rejected,
                ties,
                stop_reason,
                worker_panics,
            } => {
                let _ = write!(
                    s,
                    "run end: Coco={final_coco} Div={final_div} \
                     accepted={accepted} (ties {ties}) rejected={rejected} \
                     stop={stop_reason}"
                );
                if *worker_panics > 0 {
                    let _ = write!(s, " worker_panics={worker_panics}");
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                nh: 40,
                threads: 2,
                batch: 2,
                initial_coco: 71581,
                initial_div: 120933,
            },
            TraceEvent::Gate {
                round: 3,
                coco_delta: -12,
                div_delta: 40,
                accepted: false,
                tie: false,
                coco: 71581,
                div: 120933,
            },
            TraceEvent::Phase {
                phase: Phase::Sweep,
                round: Some(3),
                level: Some(2),
                elapsed_us: 412,
            },
            TraceEvent::Phase {
                phase: Phase::Commit,
                round: None,
                level: None,
                elapsed_us: 9,
            },
            TraceEvent::Speculation {
                first_round: 4,
                batch_len: 2,
                committed: 1,
                invalidated: true,
                depth: 2,
            },
            TraceEvent::RunEnd {
                final_coco: 71581,
                final_div: 120933,
                accepted: 0,
                rejected: 40,
                ties: 0,
                stop_reason: "completed",
                worker_panics: 0,
            },
            // Appended (not inserted): `event_levels` indexes positionally.
            TraceEvent::Cache {
                key: "grid4x4".to_string(),
                disposition: "miss",
                entries: 1,
                hits: 0,
                misses: 1,
                evictions: 0,
            },
        ]
    }

    #[test]
    fn json_lines_carry_the_mandatory_fields() {
        for e in sample_events() {
            let json = e.to_json(1234, 7);
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(
                json.contains(&format!("\"event\": \"{}\"", e.kind())),
                "{json}"
            );
            assert!(json.contains("\"ts_us\": 1234"), "{json}");
            assert!(json.contains("\"thread\": 7"), "{json}");
            // Flat object: no nesting, balanced quotes.
            assert_eq!(json.matches('{').count(), 1, "{json}");
            assert_eq!(json.matches('}').count(), 1, "{json}");
            assert!(json.matches('"').count().is_multiple_of(2), "{json}");
        }
    }

    #[test]
    fn gate_json_payload() {
        let e = TraceEvent::Gate {
            round: 17,
            coco_delta: -3,
            div_delta: 5,
            accepted: false,
            tie: false,
            coco: 100,
            div: 50,
        };
        let json = e.to_json(0, 0);
        assert!(json.contains("\"round\": 17"));
        assert!(json.contains("\"coco_delta\": -3"));
        assert!(json.contains("\"div_delta\": 5"));
        assert!(json.contains("\"accepted\": false"));
        assert!(json.contains("\"tie\": false"));
    }

    #[test]
    fn phase_json_omits_absent_round_and_level() {
        let e = TraceEvent::Phase {
            phase: Phase::Commit,
            round: None,
            level: None,
            elapsed_us: 10,
        };
        let json = e.to_json(0, 0);
        assert!(!json.contains("\"round\""));
        assert!(!json.contains("\"level\""));
        assert!(json.contains("\"phase\": \"commit\""));
    }

    #[test]
    fn event_levels() {
        let events = sample_events();
        assert_eq!(events[0].level(), TraceLevel::Gate); // run_start
        assert_eq!(events[1].level(), TraceLevel::Gate); // gate
        assert_eq!(events[2].level(), TraceLevel::Debug); // per-level phase
        assert_eq!(events[3].level(), TraceLevel::Phase); // round-level phase
        assert_eq!(events[4].level(), TraceLevel::Phase); // speculation
        assert_eq!(events[5].level(), TraceLevel::Gate); // run_end
        assert_eq!(events[6].level(), TraceLevel::Phase); // cache
    }

    #[test]
    fn cache_json_payload() {
        let e = TraceEvent::Cache {
            key: "torus4x4".to_string(),
            disposition: "hit",
            entries: 2,
            hits: 5,
            misses: 2,
            evictions: 1,
        };
        let json = e.to_json(0, 0);
        assert!(json.contains("\"event\": \"cache\""));
        assert!(json.contains("\"key\": \"torus4x4\""));
        assert!(json.contains("\"disposition\": \"hit\""));
        assert!(json.contains("\"entries\": 2"));
        assert!(json.contains("\"evictions\": 1"));
        assert!(e.to_human(0, 0).contains("cache hit"));
    }

    #[test]
    fn human_lines_are_single_line_and_informative() {
        for e in sample_events() {
            let line = e.to_human(2500, 1);
            assert!(!line.contains('\n'));
            assert!(line.contains("t1"));
        }
        let tie = TraceEvent::Gate {
            round: 0,
            coco_delta: 0,
            div_delta: 0,
            accepted: true,
            tie: true,
            coco: 0,
            div: 0,
        };
        assert!(tie.to_human(0, 0).contains("TIE"));
    }
}
