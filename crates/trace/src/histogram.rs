//! Log₂-bucketed histograms for signed objective deltas.
//!
//! The accept gate sees one `(ΔCoco, ΔDiv)` pair per hierarchy round; the
//! histogram condenses those into a shape ("is Div systematically sinking
//! candidates, and by how much?") without storing the full series. Buckets
//! are powers of two mirrored around zero: zero has its own bucket, and a
//! magnitude `m > 0` lands in the bucket `[2^b, 2^{b+1})` with
//! `b = floor(log₂ m)`, on the positive or negative side according to sign.

/// One non-empty bucket of a [`LogHistogram`]: all recorded values `v` with
/// `lo <= v <= hi` (inclusive bounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Smallest value in the bucket.
    pub lo: i64,
    /// Largest value in the bucket.
    pub hi: i64,
    /// Number of recorded values in `[lo, hi]`.
    pub count: u64,
}

/// A log₂-bucketed histogram over `i64` values, with exact count/min/max/sum
/// summary statistics on the side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    zero: u64,
    // Magnitude bucket b counts values with |v| in [2^b, 2^{b+1}).
    pos: [u64; 64],
    neg: [u64; 64],
    count: u64,
    sum: i128,
    min: i64,
    max: i64,
}

// Not derivable: `Default` is not implemented for `[u64; 64]` on this
// toolchain.
impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            zero: 0,
            pos: [0; 64],
            neg: [0; 64],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: i64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as i128;
        if v == 0 {
            self.zero += 1;
        } else {
            let b = 63 - v.unsigned_abs().leading_zeros() as usize;
            if v > 0 {
                self.pos[b] += 1;
            } else {
                self.neg[b] += 1;
            }
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value.
    pub fn min(&self) -> Option<i64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<i64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all recorded values (exact, `i128` to dodge overflow).
    pub fn sum(&self) -> i128 {
        self.sum
    }

    /// Number of recorded values that were exactly zero.
    pub fn zeros(&self) -> u64 {
        self.zero
    }

    /// Number of strictly negative recorded values.
    pub fn negatives(&self) -> u64 {
        self.neg.iter().sum()
    }

    /// Number of strictly positive recorded values.
    pub fn positives(&self) -> u64 {
        self.pos.iter().sum()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.zero += other.zero;
        for (slot, v) in self.pos.iter_mut().zip(other.pos) {
            *slot += v;
        }
        for (slot, v) in self.neg.iter_mut().zip(other.neg) {
            *slot += v;
        }
    }

    /// The non-empty buckets in ascending value order (most negative first,
    /// then zero, then positive).
    pub fn buckets(&self) -> Vec<HistogramBucket> {
        let clamp = |v: i128| v.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        let mut out = Vec::new();
        for b in (0..64usize).rev() {
            if self.neg[b] > 0 {
                out.push(HistogramBucket {
                    lo: clamp(-((1i128 << (b + 1)) - 1)),
                    hi: clamp(-(1i128 << b)),
                    count: self.neg[b],
                });
            }
        }
        if self.zero > 0 {
            out.push(HistogramBucket {
                lo: 0,
                hi: 0,
                count: self.zero,
            });
        }
        for b in 0..64usize {
            if self.pos[b] > 0 {
                out.push(HistogramBucket {
                    lo: clamp(1i128 << b),
                    hi: clamp((1i128 << (b + 1)) - 1),
                    count: self.pos[b],
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_by_powers_of_two() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, -1, -2, -3, -1000] {
            h.record(v);
        }
        let buckets = h.buckets();
        // Ascending order, inclusive bounds, counts per bucket.
        assert_eq!(
            buckets,
            vec![
                HistogramBucket {
                    lo: -1023,
                    hi: -512,
                    count: 1
                },
                HistogramBucket {
                    lo: -3,
                    hi: -2,
                    count: 2
                },
                HistogramBucket {
                    lo: -1,
                    hi: -1,
                    count: 1
                },
                HistogramBucket {
                    lo: 0,
                    hi: 0,
                    count: 1
                },
                HistogramBucket {
                    lo: 1,
                    hi: 1,
                    count: 1
                },
                HistogramBucket {
                    lo: 2,
                    hi: 3,
                    count: 2
                },
                HistogramBucket {
                    lo: 4,
                    hi: 7,
                    count: 2
                },
                HistogramBucket {
                    lo: 8,
                    hi: 15,
                    count: 1
                },
            ]
        );
        assert_eq!(h.count(), 11);
        assert_eq!(h.zeros(), 1);
        assert_eq!(h.negatives(), 4);
        assert_eq!(h.positives(), 6);
        assert_eq!(h.min(), Some(-1000));
        assert_eq!(h.max(), Some(8));
        assert_eq!(h.sum(), (1 + 2 + 3 + 4 + 7 + 8 - 1 - 2 - 3 - 1000) as i128);
        // Bucket counts add up to the total.
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), h.count());
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(i64::MIN);
        h.record(i64::MAX);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].lo, i64::MIN);
        assert_eq!(buckets[0].count, 1);
        assert_eq!(buckets[1].hi, i64::MAX);
        assert_eq!(buckets[1].count, 1);
        assert_eq!(h.min(), Some(i64::MIN));
        assert_eq!(h.max(), Some(i64::MAX));
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let values_a = [-17i64, 0, 3, 3, 900, -2];
        let values_b = [5i64, -5, 0, 1 << 40];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut combined = LogHistogram::new();
        for v in values_a {
            a.record(v);
            combined.record(v);
        }
        for v in values_b {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        // Merging into an empty histogram copies; merging an empty one is a
        // no-op.
        let mut empty = LogHistogram::new();
        empty.merge(&combined);
        assert_eq!(empty, combined);
        let before = combined.clone();
        combined.merge(&LogHistogram::new());
        assert_eq!(combined, before);
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.buckets(), vec![]);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }
}
