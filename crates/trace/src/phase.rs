//! The fixed phase vocabulary of the TIMER pipeline and a zero-alloc
//! accumulator for per-phase wall-clock breakdowns.

/// A pipeline phase. The set is closed on purpose: a fixed vocabulary keeps
/// the accumulator allocation-free and the JSONL schema stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// One whole hierarchy construction (contains `Sweep` and `Contract`).
    HierarchyBuild,
    /// One label-swap sweep over a hierarchy level.
    Sweep,
    /// One contraction of a hierarchy level into the next coarser one.
    Contract,
    /// Assembling fine-level labels from a finished hierarchy, including the
    /// bijection repair.
    Assemble,
    /// The incidence-limited `(ΔCoco, ΔDiv)` scan pricing a candidate.
    DeltaScan,
    /// Committing a speculation batch against the live accept gate
    /// (including invalidation handling).
    Commit,
    /// One `mapd` daemon request served end to end (parse, admission,
    /// enhancement, response serialization).
    Serve,
    /// Per-topology cache context construction (partial-cube recognition on
    /// a cache miss; hits never enter this phase).
    Cache,
}

impl Phase {
    /// Number of phases (size of [`PhaseTimes`]' backing array).
    pub const COUNT: usize = 8;

    /// All phases, in reporting order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::HierarchyBuild,
        Phase::Sweep,
        Phase::Contract,
        Phase::Assemble,
        Phase::DeltaScan,
        Phase::Commit,
        Phase::Serve,
        Phase::Cache,
    ];

    /// Stable snake_case name used in JSONL events and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::HierarchyBuild => "hierarchy_build",
            Phase::Sweep => "sweep",
            Phase::Contract => "contract",
            Phase::Assemble => "assemble",
            Phase::DeltaScan => "delta_scan",
            Phase::Commit => "commit",
            Phase::Serve => "serve",
            Phase::Cache => "cache",
        }
    }

    /// Inverse of [`Phase::name`]: resolves a stable snake_case name back to
    /// the phase, `None` for anything outside the fixed vocabulary. String
    /// call sites of this function are policed by `tie-lint`'s
    /// `registered-sites` rule.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        match self {
            Phase::HierarchyBuild => 0,
            Phase::Sweep => 1,
            Phase::Contract => 2,
            Phase::Assemble => 3,
            Phase::DeltaScan => 4,
            Phase::Commit => 5,
            Phase::Serve => 6,
            Phase::Cache => 7,
        }
    }
}

/// Accumulated wall-clock per phase, in microseconds. `HierarchyBuild` spans
/// contain the `Sweep` and `Contract` time of their levels, so the entries
/// are not disjoint — readers summing phases must skip the container phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    us: [u64; Phase::COUNT],
}

impl PhaseTimes {
    /// Adds `micros` to `phase`'s total.
    pub fn add(&mut self, phase: Phase, micros: u64) {
        self.us[phase.index()] += micros;
    }

    /// Accumulated microseconds of `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.us[phase.index()]
    }

    /// Folds another breakdown into this one (used to merge per-round
    /// breakdowns into a run total).
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (slot, v) in self.us.iter_mut().zip(other.us) {
            *slot += v;
        }
    }

    /// `(phase, micros)` pairs in reporting order, including zero entries.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.get(p)))
    }

    /// True if no time has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.us.iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable_and_distinct() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Phase::COUNT);
        assert_eq!(Phase::HierarchyBuild.name(), "hierarchy_build");
        assert_eq!(Phase::DeltaScan.name(), "delta_scan");
    }

    #[test]
    fn from_name_inverts_name() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("warp_drive"), None);
    }

    #[test]
    fn accumulate_and_merge() {
        let mut a = PhaseTimes::default();
        assert!(a.is_empty());
        a.add(Phase::Sweep, 10);
        a.add(Phase::Sweep, 5);
        a.add(Phase::Commit, 1);
        let mut b = PhaseTimes::default();
        b.add(Phase::Sweep, 100);
        b.add(Phase::DeltaScan, 7);
        a.merge(&b);
        assert_eq!(a.get(Phase::Sweep), 115);
        assert_eq!(a.get(Phase::Commit), 1);
        assert_eq!(a.get(Phase::DeltaScan), 7);
        assert_eq!(a.get(Phase::Assemble), 0);
        assert!(!a.is_empty());
        assert_eq!(a.iter().count(), Phase::COUNT);
    }
}
