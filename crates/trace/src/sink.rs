//! Trace sinks: where recorded events go.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::TraceEvent;

/// Receiver of trace events. Implementations must be thread-safe: the
/// speculative TIMER driver emits from its worker threads concurrently.
pub trait TraceSink: Send + Sync {
    /// Records one event. `ts_us` is monotonic microseconds since the
    /// owning [`crate::TraceHandle`] was created; `thread` a small
    /// sequential per-thread id.
    fn record(&self, event: &TraceEvent, ts_us: u64, thread: u64);
}

/// Discards everything. A disabled [`crate::TraceHandle`] never reaches its
/// sink, so this mostly exists to make "explicitly no tracing" spellable.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent, _ts_us: u64, _thread: u64) {}
}

/// Human-readable one-line-per-event sink on stderr (stdout stays clean for
/// the binaries' report output).
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn record(&self, event: &TraceEvent, ts_us: u64, thread: u64) {
        eprintln!("{}", event.to_human(ts_us, thread));
    }
}

/// Machine-readable sink: one JSON object per line (JSONL). Lines are
/// flushed per event so a crashed run still leaves a readable recording —
/// exactly the property a flight recorder is for. Event volume is a few
/// thousand lines per run at most, so the per-line flush is immaterial.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent, ts_us: u64, thread: u64) {
        // Recover from poisoning (a panicking recorder thread leaves the
        // writer consistent) and ignore I/O errors — observability must
        // never take the pipeline down.
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let line = event.to_json(ts_us, thread);
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// One event as a [`MemorySink`] stored it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedEvent {
    /// The event itself.
    pub event: TraceEvent,
    /// Timestamp attached at emission.
    pub ts_us: u64,
    /// Thread ordinal attached at emission.
    pub thread: u64,
}

/// In-process sink for tests: keeps every event (with its timestamp and
/// thread id) in a vector behind a mutex.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<RecordedEvent>>,
}

impl MemorySink {
    /// Snapshot of everything recorded so far, in emission order.
    pub fn events(&self) -> Vec<RecordedEvent> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The recorded [`TraceEvent::Gate`] events, in emission order.
    pub fn gate_events(&self) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .map(|r| r.event)
            .filter(|e| matches!(e, TraceEvent::Gate { .. }))
            .collect()
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent, ts_us: u64, thread: u64) {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(RecordedEvent {
                event: event.clone(),
                ts_us,
                thread,
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceHandle, TraceLevel};
    use std::sync::Arc;

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("tie-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        {
            let sink = Arc::new(JsonlSink::create(&path).unwrap());
            let h = TraceHandle::new(sink, TraceLevel::Debug);
            h.emit(TraceEvent::RunStart {
                nh: 2,
                threads: 1,
                batch: 1,
                initial_coco: 10,
                initial_div: 0,
            });
            h.emit(TraceEvent::RunEnd {
                final_coco: 10,
                final_div: 0,
                accepted: 0,
                rejected: 2,
                ties: 0,
                stop_reason: "completed",
                worker_panics: 0,
            });
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"event\": "));
            assert!(line.contains("\"ts_us\": "));
            assert!(line.contains("\"thread\": "));
        }
        assert!(lines[0].contains("run_start"));
        assert!(lines[1].contains("run_end"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_sink_records_in_order_with_metadata() {
        let sink = Arc::new(MemorySink::default());
        let h = TraceHandle::new(sink.clone(), TraceLevel::Debug);
        for round in 0..3 {
            h.emit(TraceEvent::Gate {
                round,
                coco_delta: -(round as i64),
                div_delta: 0,
                accepted: true,
                tie: round == 0,
                coco: 0,
                div: 0,
            });
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(sink.gate_events().len(), 3);
        for (i, rec) in events.iter().enumerate() {
            match rec.event {
                TraceEvent::Gate { round, .. } => assert_eq!(round, i),
                _ => panic!("unexpected event"),
            }
        }
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        let sink = Arc::new(MemorySink::default());
        let h = TraceHandle::new(sink.clone(), TraceLevel::Debug);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let h = h.clone();
                scope.spawn(move || {
                    h.emit(TraceEvent::Phase {
                        phase: crate::Phase::Sweep,
                        round: Some(t),
                        level: None,
                        elapsed_us: 1,
                    });
                });
            }
        });
        let events = sink.events();
        assert_eq!(events.len(), 4);
        // Each spawned thread gets its own ordinal.
        let mut threads: Vec<u64> = events.iter().map(|r| r.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4);
    }
}
