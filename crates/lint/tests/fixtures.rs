//! Fixture-corpus suite: drives the production `check_source` path over the
//! synthetic sources in `tests/fixtures/`, pinning down one positive and one
//! negative case per rule plus the boundary behaviours (cfg(test) nesting,
//! allow hygiene, allowlist expiry).

use tie_lint::allow::Allowlist;
use tie_lint::check_source;
use tie_lint::rules::{Finding, Vocab, RULE_PANIC, RULE_SITES, RULE_UNORDERED, RULE_WALLCLOCK};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

fn check(rel_path: &str, name: &str) -> Vec<Finding> {
    check_source(
        rel_path,
        &fixture(name),
        &Vocab::workspace(),
        &Allowlist::default(),
    )
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unordered_positive_fires_on_every_iteration_form() {
    let found = check("crates/graph/src/fixture.rs", "unordered_pos.rs");
    assert_eq!(rules_of(&found), vec![RULE_UNORDERED; 4], "{found:?}");
    // One per form: for-loop, .iter(), field .keys(), .drain().
    let msgs: Vec<&str> = found.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("for-loop over m")));
    assert!(msgs.iter().any(|m| m.contains("seen.iter()")));
    assert!(msgs.iter().any(|m| m.contains("by_key.keys()")));
    assert!(msgs.iter().any(|m| m.contains("s.drain()")));
}

#[test]
fn unordered_negative_is_clean() {
    let found = check("crates/graph/src/fixture.rs", "unordered_neg.rs");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn panic_positive_fires_on_every_costume() {
    let found = check("crates/timer/src/fixture.rs", "panic_pos.rs");
    assert_eq!(rules_of(&found), vec![RULE_PANIC; 6], "{found:?}");
}

#[test]
fn panic_negative_is_clean() {
    let found = check("crates/timer/src/fixture.rs", "panic_neg.rs");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn wallclock_positive_fires_including_the_import() {
    // Four mentions: the import, Instant::now, the SystemTime return type,
    // and SystemTime::now — a bare `SystemTime` fires wherever it appears,
    // because the type has no business in result-affecting code at all.
    let found = check("crates/partition/src/fixture.rs", "wallclock_pos.rs");
    assert_eq!(rules_of(&found), vec![RULE_WALLCLOCK; 4], "{found:?}");
}

#[test]
fn wallclock_negative_in_bench_and_test_context() {
    let found = check("crates/bench/src/fixture.rs", "wallclock_neg.rs");
    assert!(found.is_empty(), "{found:?}");
    let found = check("crates/timer/tests/fixture.rs", "wallclock_neg.rs");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn sites_positive_fires_even_in_test_files() {
    let found = check("crates/timer/tests/fixture.rs", "sites_pos.rs");
    assert_eq!(rules_of(&found), vec![RULE_SITES; 4], "{found:?}");
    assert!(found.iter().any(|f| f.message.contains("warp_core")));
    assert!(found.iter().any(|f| f.message.contains("warp_drive")));
}

#[test]
fn sites_negative_is_clean() {
    let found = check("crates/timer/tests/fixture.rs", "sites_neg.rs");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn cfg_test_nesting_exempts_only_the_module() {
    let found = check("crates/graph/src/fixture.rs", "cfg_test_nesting.rs");
    assert_eq!(rules_of(&found), vec![RULE_PANIC; 2], "{found:?}");
    // The surviving findings bracket the test module.
    let src = fixture("cfg_test_nesting.rs");
    let before = src
        .lines()
        .position(|l| l.contains("fn before_the_module"))
        .unwrap() as u32;
    let after = src
        .lines()
        .position(|l| l.contains("fn after_the_module"))
        .unwrap() as u32;
    assert!(found[0].line > before && found[0].line < after + 1);
    assert!(found[1].line > after);
}

#[test]
fn allow_hygiene_suppresses_flags_and_expires() {
    let found = check("crates/timer/src/fixture.rs", "allow_cases.rs");
    // Reasoned allows (same line + previous line) suppress silently; the
    // reasonless one yields its finding plus a hygiene finding; the unused
    // reasoned one is expired.
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found.iter().any(|f| f.rule == RULE_PANIC));
    assert!(found.iter().any(|f| f.message.contains("has no reason")));
    assert!(found
        .iter()
        .any(|f| f.message.contains("expired inline allow")));
}

#[test]
fn allowlist_entry_suppresses_whole_file_and_expires_when_unused() {
    let toml = r#"
[[allow]]
path = "crates/partition/src/fixture.rs"
rule = "no-wallclock"
reason = "fixture: file-wide waiver"

[[allow]]
path = "crates/partition/src/fixture.rs"
rule = "no-panic-paths"
reason = "fixture: suppresses nothing, must expire"
"#;
    let allowlist = Allowlist::parse("lint-allow.toml", toml);
    assert!(
        allowlist.parse_findings.is_empty(),
        "{:?}",
        allowlist.parse_findings
    );
    let found = check_source(
        "crates/partition/src/fixture.rs",
        &fixture("wallclock_pos.rs"),
        &Vocab::workspace(),
        &allowlist,
    );
    assert!(found.is_empty(), "{found:?}");
    let expired = allowlist.expired("lint-allow.toml");
    assert_eq!(expired.len(), 1, "{expired:?}");
    assert!(expired[0].message.contains("no-panic-paths"));
}
