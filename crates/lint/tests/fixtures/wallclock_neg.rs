// NEGATIVE: wall-clock reads where they are allowed — this file is scanned
// once as crates/bench/src/fixture.rs (exempt crate) and once as
// crates/timer/tests/fixture.rs (test context).
use std::time::Instant;

fn timing_a_benchmark() -> u64 {
    let t = Instant::now();
    t.elapsed().as_micros() as u64
}

fn instant_type_without_now(t: Instant) -> u64 {
    t.elapsed().as_micros() as u64
}
