// NEGATIVE: registered vocabulary names everywhere (scanned as
// crates/timer/tests/fixture.rs).

fn registered_delay_sites(h: &FaultHandle) {
    h.delay("hierarchy_build");
    h.delay("assemble");
    h.delay("delta_scan");
    h.delay("io");
}

fn registered_phase_names() {
    let _ = Phase::from_name("sweep");
    let _ = Phase::from_name("contract");
}

const SPEC: &str = "panic@3, delay:delta_scan=250, io@2";
