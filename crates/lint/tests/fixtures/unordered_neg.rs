// NEGATIVE: lookups into hash containers, ordered containers, and test-only
// iteration are all legal (scanned as crates/graph/src/fixture.rs).
use std::collections::{BTreeMap, HashMap, HashSet};

fn lookups_are_legal(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> bool {
    m.get(&1).is_some() && m.contains_key(&2) && s.contains(&3)
}

fn entry_api_is_legal(m: &mut HashMap<u32, u32>) {
    *m.entry(7).or_insert(0) += 1;
}

fn btreemap_iteration_is_legal(ordered: &BTreeMap<u32, u32>) -> usize {
    ordered.iter().count() + ordered.keys().count()
}

fn vec_of_hashset_is_a_vec(sets: &[HashSet<u32>]) -> usize {
    let owned: Vec<HashSet<u32>> = sets.to_vec();
    owned.iter().map(HashSet::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_iteration_in_tests_is_legal() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in &m {
            let _ = (k, v);
        }
    }
}
