// MIXED: inline-allow hygiene (scanned as crates/timer/src/fixture.rs).
// Expected: the reasoned allow suppresses its unwrap; the reasonless allow
// is inert (two findings: the unwrap and the missing reason); the expired
// allow adds one finding.

fn suppressed(x: Option<u32>) -> u32 {
    x.unwrap() // tie-lint: allow(no-panic-paths) — fixture: reasoned allow on the same line
}

fn suppressed_from_previous_line(x: Option<u32>) -> u32 {
    // tie-lint: allow(no-panic-paths) — fixture: reasoned allow on the line above
    x.unwrap()
}

fn not_suppressed(x: Option<u32>) -> u32 {
    x.unwrap() // tie-lint: allow(no-panic-paths)
}

// tie-lint: allow(no-wallclock) — fixture: nothing here reads the clock, so this is expired
fn nothing_to_suppress() {}
