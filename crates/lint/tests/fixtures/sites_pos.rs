// POSITIVE: unregistered site/phase names — the registered-sites rule
// applies even in test files (scanned as crates/timer/tests/fixture.rs).

fn unregistered_delay_site(h: &FaultHandle) {
    h.delay("warp_core");
}

fn unregistered_plan_site(plan: FaultPlan) -> FaultPlan {
    plan.with_delay("warp_core", Duration::from_micros(1))
}

fn unregistered_phase_name() {
    let _ = Phase::from_name("warp_drive");
}

const SPEC: &str = "panic@3, delay:warp_core=250";
