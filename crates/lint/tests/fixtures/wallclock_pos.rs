// POSITIVE: wall-clock reads on a library path (scanned as
// crates/partition/src/fixture.rs).
use std::time::{Instant, SystemTime};

fn reads_instant() -> Instant {
    Instant::now()
}

fn reads_system_time() -> SystemTime {
    SystemTime::now()
}
