// NEGATIVE: the legal residents of the no-panic taxonomy (scanned as
// crates/timer/src/fixture.rs).

/// Contract-checked constructor.
///
/// # Panics
/// Panics if `n` is zero.
pub fn documented_assert(n: u32) {
    assert!(n > 0, "n must be positive");
    assert_ne!(n, 0);
}

fn debug_asserts_are_free(n: u32) {
    debug_assert!(n < 1_000_000);
    debug_assert_eq!(n, n);
}

fn non_panicking_variants(x: Option<u32>) -> u32 {
    x.unwrap_or(0).max(x.unwrap_or_default())
}

fn unwrap_or_else_is_not_unwrap(x: Option<u32>) -> u32 {
    x.unwrap_or_else(|| 7)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_legal() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        panic!("even this is fine in a test");
    }
}
