// POSITIVE: library-path panics in all their costumes (scanned as
// crates/timer/src/fixture.rs).

fn unwrap_site(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn expect_site(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn panic_site() {
    panic!("boom");
}

fn todo_site() {
    todo!()
}

/// Documented, but without the panics section header — the asserts still
/// fire.
fn undocumented_assert(n: u32) {
    assert!(n > 0);
    assert_eq!(n, n);
}
