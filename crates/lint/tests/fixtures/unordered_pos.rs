// POSITIVE: every HashMap/HashSet iteration form must fire in a
// result-affecting crate (scanned as crates/graph/src/fixture.rs).
use std::collections::{HashMap, HashSet};

struct Holder {
    by_key: HashMap<u64, u32>,
}

fn let_binding_for_loop() {
    let m: HashMap<u32, u32> = HashMap::new();
    for (k, v) in &m {
        let _ = (k, v);
    }
}

fn method_iteration(seen: HashSet<u64>) -> usize {
    seen.iter().count()
}

impl Holder {
    fn field_iteration(&self) -> Vec<u64> {
        self.by_key.keys().copied().collect()
    }
}

fn inferred_from_initializer() {
    let mut s = HashSet::new();
    s.insert(1u32);
    for x in s.drain() {
        let _ = x;
    }
}
