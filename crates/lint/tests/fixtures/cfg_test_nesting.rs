// MIXED: cfg(test)-region tracking. The unwrap inside the nested test
// module (including its inner helper module) is legal; the two outside are
// findings (scanned as crates/graph/src/fixture.rs).

fn before_the_module(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    mod nested_helpers {
        pub fn helper(x: Option<u32>) -> u32 {
            x.unwrap()
        }
    }

    #[test]
    fn uses_helper() {
        assert_eq!(nested_helpers::helper(Some(3)), 3);
    }
}

fn after_the_module(x: Option<u32>) -> u32 {
    x.unwrap()
}
