//! The rule registry: every workspace invariant `tie-lint` enforces, run
//! over the token stream of one file at a time.
//!
//! | rule | guards | scope |
//! |------|--------|-------|
//! | `no-unordered-iteration` | `Timer::enhance` byte-identity | non-test `src/` of result-affecting crates |
//! | `no-panic-paths` | PR 7's no-panic library taxonomy | non-test `src/` of library crates |
//! | `no-wallclock` | results never depend on wall-clock | non-test `src/` outside bench/trace |
//! | `registered-sites` | trace/fault site vocabularies | everywhere, including tests |
//!
//! Scopes are derived from the file's workspace-relative path by
//! [`FileClass::classify`]; `cfg(test)` regions inside scanned files are
//! exempt from the first three rules via the scanner's span analysis.

use crate::scanner::{ScannedFile, Tok, Token};

/// Crates whose code can influence the bytes of a TIMER result. These are
/// the crates the byte-identity invariant (docs/DETERMINISM.md) is stated
/// over; `no-unordered-iteration` applies to their non-test sources.
pub const RESULT_AFFECTING_CRATES: &[&str] = &[
    "graph",
    "timer",
    "mapping",
    "topology",
    "partition",
    "metrics",
];

/// Library crates held to the no-panic taxonomy of PR 7: the result-affecting
/// set plus the observability/chaos substrate, the `mapd` service layer and
/// the lint itself.
pub const NO_PANIC_CRATES: &[&str] = &[
    "graph",
    "timer",
    "mapping",
    "topology",
    "partition",
    "metrics",
    "trace",
    "fault",
    "lint",
    "mapd",
];

/// Crates allowed to read the wall clock freely: the bench harness times
/// things by definition, `tie-trace` owns the trace-timestamp epoch, and
/// `mapd` anchors request deadlines and serve-phase spans on real time
/// (its wall-clock reads gate *when* work stops, never what is computed).
pub const WALLCLOCK_EXEMPT_CRATES: &[&str] = &["bench", "trace", "mapd"];

/// Rule identifiers as they appear in findings and allow directives.
pub const RULE_UNORDERED: &str = "no-unordered-iteration";
pub const RULE_PANIC: &str = "no-panic-paths";
pub const RULE_WALLCLOCK: &str = "no-wallclock";
pub const RULE_SITES: &str = "registered-sites";
/// Meta-rule for allowlist hygiene: expired entries and missing reasons.
pub const RULE_ALLOWLIST: &str = "allowlist";

/// All rule names an allow directive may name.
pub const ALL_RULES: &[&str] = &[RULE_UNORDERED, RULE_PANIC, RULE_WALLCLOCK, RULE_SITES];

/// One violation, printed as `file:line: rule: message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Clone, Debug, Default)]
pub struct FileClass {
    pub crate_name: Option<String>,
    /// Whole-file test context: integration tests, benches, examples.
    pub test_context: bool,
    pub check_unordered: bool,
    pub check_panic: bool,
    pub check_wallclock: bool,
    pub check_sites: bool,
    /// Fault-site strings are not checked inside `tie-fault` itself (it
    /// defines the vocabulary and its tests parse arbitrary site specs) or
    /// inside `tie-lint` (whose tests use unregistered names as vectors).
    pub check_fault_sites: bool,
    /// Phase-name strings are likewise not checked inside `tie-trace`
    /// (vocabulary owner) or `tie-lint`.
    pub check_phase_names: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (`/`-separated).
    pub fn classify(rel_path: &str) -> FileClass {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        let test_context = rel_path.contains("/tests/")
            || rel_path.contains("/benches/")
            || rel_path.contains("/examples/")
            || rel_path.starts_with("tests/")
            || rel_path.starts_with("examples/")
            || rel_path.starts_with("benches/");
        let in_crate_src = |set: &[&str]| {
            crate_name
                .as_deref()
                .is_some_and(|c| set.contains(&c) && rel_path.contains("/src/"))
        };
        let wallclock = !test_context
            && match crate_name.as_deref() {
                Some(c) => !WALLCLOCK_EXEMPT_CRATES.contains(&c) && rel_path.contains("/src/"),
                // Root package sources (src/lib.rs) are library code too.
                None => rel_path.starts_with("src/"),
            };
        FileClass {
            check_unordered: !test_context && in_crate_src(RESULT_AFFECTING_CRATES),
            check_panic: !test_context && in_crate_src(NO_PANIC_CRATES),
            check_wallclock: wallclock,
            check_sites: true,
            check_fault_sites: !matches!(crate_name.as_deref(), Some("fault" | "lint")),
            check_phase_names: !matches!(crate_name.as_deref(), Some("trace" | "lint")),
            crate_name,
            test_context,
        }
    }
}

/// The fixed vocabularies the `registered-sites` rule checks against.
#[derive(Clone, Debug)]
pub struct Vocab {
    pub fault_sites: Vec<String>,
    pub phase_names: Vec<String>,
}

impl Vocab {
    /// The real workspace vocabularies, pulled from the crates that export
    /// them — the lint can never drift from the code it checks.
    pub fn workspace() -> Vocab {
        Vocab {
            fault_sites: tie_fault::SITES.iter().map(|s| s.to_string()).collect(),
            phase_names: tie_trace::Phase::ALL
                .iter()
                .map(|p| p.name().to_string())
                .collect(),
        }
    }
}

/// Methods whose call on a `HashMap`/`HashSet` visits entries in hash order.
const ITERATION_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Runs every applicable rule over one scanned file.
pub fn check_file(
    rel_path: &str,
    class: &FileClass,
    scanned: &ScannedFile,
    vocab: &Vocab,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &scanned.tokens;
    let finding = |line: u32, rule: &'static str, message: String| Finding {
        file: rel_path.to_string(),
        line,
        rule,
        message,
    };

    if class.check_unordered {
        let hash_names = collect_hash_names(toks, scanned);
        findings.extend(
            unordered_iteration_sites(toks, scanned, &hash_names)
                .into_iter()
                .map(|(line, msg)| finding(line, RULE_UNORDERED, msg)),
        );
    }

    for (k, t) in toks.iter().enumerate() {
        if scanned.in_test_code(t.line) {
            continue;
        }
        let Tok::Ident(id) = &t.tok else { continue };
        let prev_is_dot = k > 0 && toks[k - 1].tok == Tok::Punct('.');
        let next_is_bang = toks.get(k + 1).map(|n| &n.tok) == Some(&Tok::Punct('!'));
        if class.check_panic {
            match id.as_str() {
                "unwrap" | "expect" if prev_is_dot => {
                    findings.push(finding(
                        t.line,
                        RULE_PANIC,
                        format!(".{id}() on a library path (return a TieError instead)"),
                    ));
                }
                "panic" | "todo" | "unimplemented" if next_is_bang => {
                    findings.push(finding(
                        t.line,
                        RULE_PANIC,
                        format!("{id}! on a library path (return a TieError instead)"),
                    ));
                }
                "assert" | "assert_eq" | "assert_ne"
                    if next_is_bang && !scanned.in_panics_documented_fn(t.line) =>
                {
                    findings.push(finding(
                        t.line,
                        RULE_PANIC,
                        format!(
                            "{id}! outside a `# Panics`-documented function \
                             (document the contract or use debug_assert)"
                        ),
                    ));
                }
                _ => {}
            }
        }
        if class.check_wallclock {
            let wallclock = id == "SystemTime"
                || (id == "Instant"
                    && toks.get(k + 1).map(|n| &n.tok) == Some(&Tok::Punct(':'))
                    && toks.get(k + 2).map(|n| &n.tok) == Some(&Tok::Punct(':'))
                    && matches!(toks.get(k + 3).map(|n| &n.tok), Some(Tok::Ident(m)) if m == "now"));
            if wallclock {
                findings.push(finding(
                    t.line,
                    RULE_WALLCLOCK,
                    format!(
                        "{id} read outside the deadline/trace-timestamp/bench modules \
                         (results must not depend on wall-clock)"
                    ),
                ));
            }
        }
    }

    if class.check_sites {
        findings.extend(
            site_findings(toks, class, vocab)
                .into_iter()
                .map(|(line, msg)| finding(line, RULE_SITES, msg)),
        );
    }

    findings
}

/// Pass 1 of `no-unordered-iteration`: names whose declared type or
/// initializer marks them as `HashMap`/`HashSet` (let bindings, struct
/// fields, fn params — anything of the shape `name: HashMap<…>` or
/// `name = HashMap::…`).
fn collect_hash_names(toks: &[Token], scanned: &ScannedFile) -> Vec<String> {
    let mut names = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if scanned.in_test_code(t.line) {
            continue;
        }
        let Some(next) = toks.get(k + 1) else {
            continue;
        };
        // Type-annotation head: the last path ident before the first
        // structural punct decides (`Vec<HashSet<…>>` is a Vec).
        let type_is_hash = |from: usize| -> bool {
            let mut last_ident: Option<&str> = None;
            for tok in toks.iter().skip(from).take(12) {
                match &tok.tok {
                    Tok::Ident(id) => last_ident = Some(id),
                    Tok::Punct(':') | Tok::Punct('&') => {}
                    _ => break,
                }
            }
            matches!(last_ident, Some("HashMap" | "HashSet"))
        };
        // Initializer head: `= HashMap::new()`, `= x.collect::<HashSet<_>>()`
        // — any hash-type ident before the first call/terminator counts, but
        // an argument position (`= foo(HashMap::new())`) does not.
        let init_is_hash = |from: usize| -> bool {
            for tok in toks.iter().skip(from).take(12) {
                match &tok.tok {
                    Tok::Ident(id) if id == "HashMap" || id == "HashSet" => return true,
                    Tok::Ident(_)
                    | Tok::Punct(':')
                    | Tok::Punct('.')
                    | Tok::Punct('<')
                    | Tok::Punct('&') => {}
                    _ => break,
                }
            }
            false
        };
        let tracked = match &next.tok {
            // `name: HashMap<…>` — but not `path::name`.
            Tok::Punct(':')
                if toks.get(k + 2).map(|n| &n.tok) != Some(&Tok::Punct(':'))
                    && (k == 0 || toks[k - 1].tok != Tok::Punct(':')) =>
            {
                type_is_hash(k + 2)
            }
            // `name = HashMap::new()` — but not `name == …`.
            Tok::Punct('=') => {
                toks.get(k + 2).is_some_and(|n| n.tok != Tok::Punct('=')) && init_is_hash(k + 2)
            }
            _ => false,
        };
        if tracked && !names.contains(name) {
            names.push(name.clone());
        }
    }
    names
}

/// Pass 2: iteration forms over tracked names — `name.iter()` and friends,
/// and `for … in [&[mut]] name` (with or without a `self.` prefix).
fn unordered_iteration_sites(
    toks: &[Token],
    scanned: &ScannedFile,
    hash_names: &[String],
) -> Vec<(u32, String)> {
    let mut sites = Vec::new();
    let is_tracked =
        |tok: &Tok| matches!(tok, Tok::Ident(id) if hash_names.iter().any(|n| n == id));
    for (k, t) in toks.iter().enumerate() {
        if scanned.in_test_code(t.line) {
            continue;
        }
        match &t.tok {
            // `name . method (` — `self . name . method (` reaches here too,
            // since the match is on the name token itself.
            Tok::Ident(_)
                if is_tracked(&t.tok)
                    && toks.get(k + 1).map(|n| &n.tok) == Some(&Tok::Punct('.')) =>
            {
                if let Some(Tok::Ident(m)) = toks.get(k + 2).map(|n| &n.tok) {
                    if ITERATION_METHODS.contains(&m.as_str())
                        && toks.get(k + 3).map(|n| &n.tok) == Some(&Tok::Punct('('))
                    {
                        let Tok::Ident(name) = &t.tok else { continue };
                        sites.push((
                            toks[k + 2].line,
                            format!(
                                "{name}.{m}() iterates a HashMap/HashSet in hash order \
                                 (use a BTreeMap/sorted Vec, or sort before use)"
                            ),
                        ));
                    }
                }
            }
            // `for PAT in [&[mut]] [self.] name {`
            Tok::Ident(id) if id == "for" => {
                let Some(in_at) = toks[k..]
                    .iter()
                    .take(24)
                    .position(|t| t.tok == Tok::Ident("in".to_string()))
                    .map(|off| k + off)
                else {
                    continue;
                };
                let mut e = in_at + 1;
                loop {
                    match toks.get(e).map(|t| &t.tok) {
                        Some(Tok::Punct('&')) => e += 1,
                        Some(Tok::Ident(m)) if m == "mut" => e += 1,
                        _ => break,
                    }
                }
                // Optional `self .` prefix.
                if matches!(toks.get(e).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "self")
                    && toks.get(e + 1).map(|t| &t.tok) == Some(&Tok::Punct('.'))
                {
                    e += 2;
                }
                let Some(name_tok) = toks.get(e) else {
                    continue;
                };
                if is_tracked(&name_tok.tok)
                    && toks.get(e + 1).map(|t| &t.tok) == Some(&Tok::Punct('{'))
                {
                    let Tok::Ident(name) = &name_tok.tok else {
                        continue;
                    };
                    sites.push((
                        name_tok.line,
                        format!(
                            "for-loop over {name} visits a HashMap/HashSet in hash order \
                             (use a BTreeMap/sorted Vec, or sort before use)"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    sites
}

/// `registered-sites`: string arguments of site/phase-keyed calls, and
/// `delay:SITE=` directives embedded in `TIE_FAULTS`-style string literals,
/// must come from the exported vocabularies.
fn site_findings(toks: &[Token], class: &FileClass, vocab: &Vocab) -> Vec<(u32, String)> {
    let mut sites = Vec::new();
    let known = |list: &[String], s: &str| list.iter().any(|v| v == s);
    for (k, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Ident(id)
                if (id == "delay" || id == "with_delay")
                    && class.check_fault_sites
                    && toks.get(k + 1).map(|n| &n.tok) == Some(&Tok::Punct('(')) =>
            {
                if let Some(Tok::Str(site)) = toks.get(k + 2).map(|n| &n.tok) {
                    if !known(&vocab.fault_sites, site) {
                        sites.push((
                            toks[k + 2].line,
                            format!(
                                "fault site {site:?} is not in tie_fault::SITES \
                                 (register it or fix the name)"
                            ),
                        ));
                    }
                }
            }
            Tok::Ident(id)
                if id == "from_name"
                    && class.check_phase_names
                    && toks.get(k + 1).map(|n| &n.tok) == Some(&Tok::Punct('(')) =>
            {
                if let Some(Tok::Str(name)) = toks.get(k + 2).map(|n| &n.tok) {
                    if !known(&vocab.phase_names, name) {
                        sites.push((
                            toks[k + 2].line,
                            format!(
                                "phase name {name:?} is not in tie_trace::Phase::ALL \
                                 (register it or fix the name)"
                            ),
                        ));
                    }
                }
            }
            Tok::Str(s) if class.check_fault_sites && s.contains("delay:") => {
                for directive in s.split(',').map(str::trim) {
                    if let Some(rest) = directive.strip_prefix("delay:") {
                        if let Some((site, _)) = rest.split_once('=') {
                            if !known(&vocab.fault_sites, site) {
                                sites.push((
                                    t.line,
                                    format!(
                                        "TIE_FAULTS delay site {site:?} is not in \
                                         tie_fault::SITES (register it or fix the name)"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn vocab() -> Vocab {
        Vocab::workspace()
    }

    fn class_for(path: &str) -> FileClass {
        FileClass::classify(path)
    }

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, &class_for(path), &scan(src), &vocab())
    }

    #[test]
    fn classify_scopes_rules_by_path() {
        let c = class_for("crates/timer/src/driver.rs");
        assert!(c.check_unordered && c.check_panic && c.check_wallclock);
        let c = class_for("crates/bench/src/harness.rs");
        assert!(!c.check_unordered && !c.check_panic && !c.check_wallclock);
        assert!(c.check_sites);
        let c = class_for("crates/timer/tests/chaos.rs");
        assert!(c.test_context && !c.check_panic && c.check_sites);
        let c = class_for("crates/fault/src/lib.rs");
        assert!(c.check_panic && !c.check_fault_sites);
        let c = class_for("crates/trace/src/lib.rs");
        assert!(!c.check_wallclock && c.check_panic);
        let c = class_for("crates/mapd/src/service.rs");
        assert!(!c.check_unordered && c.check_panic && !c.check_wallclock);
        assert!(c.check_sites && c.check_fault_sites && c.check_phase_names);
    }

    #[test]
    fn hashmap_iteration_fires_and_lookup_does_not() {
        let bad = "fn f() { let mut m: std::collections::HashMap<u32, u32> = \
                   std::collections::HashMap::new(); for (k, v) in &m { let _ = (k, v); } }";
        let found = run("crates/graph/src/x.rs", bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RULE_UNORDERED);

        let good = "fn f(m: &std::collections::HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }";
        assert!(run("crates/graph/src/x.rs", good).is_empty());
    }

    #[test]
    fn vec_of_hashset_is_not_tracked() {
        let src = "fn f() { let sets: Vec<HashSet<u64>> = Vec::new(); \
                   for s in sets.iter() { let _ = s; } }";
        assert!(run("crates/timer/src/x.rs", src).is_empty());
    }

    #[test]
    fn struct_field_iteration_fires() {
        let src = "struct B { edges: HashMap<(u32, u32), u64> }\n\
                   impl B { fn degree(&self) -> usize { self.edges.keys().count() } }";
        let found = run("crates/graph/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("edges.keys()"));
    }

    #[test]
    fn panic_paths_fire_outside_tests_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn g(x: Option<u32>) -> u32 { x.unwrap() } }";
        let found = run("crates/mapping/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RULE_PANIC);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_are_legal() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(run("crates/mapping/src/x.rs", src).is_empty());
    }

    #[test]
    fn documented_assert_is_legal_undocumented_fires() {
        let src = "\
/// Contract check.
///
/// # Panics
/// Panics if `n` is zero.
pub fn f(n: u32) { assert!(n > 0); }
pub fn g(n: u32) { assert!(n > 0); }
";
        let found = run("crates/topology/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 6);
    }

    #[test]
    fn debug_assert_is_always_legal() {
        let src = "pub fn f(n: u32) { debug_assert!(n > 0); debug_assert_eq!(n, n); }";
        assert!(run("crates/topology/src/x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_fires_in_scope_and_not_in_bench() {
        let src = "fn f() -> std::time::Instant { std::time::Instant::now() }";
        let found = run("crates/partition/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, RULE_WALLCLOCK);
        assert!(run("crates/bench/src/x.rs", src).is_empty());
        assert!(run("crates/trace/src/x.rs", src).is_empty());
    }

    #[test]
    fn unregistered_fault_site_fires_even_in_tests() {
        let src = "fn t() { let h = FaultHandle::off(); h.delay(\"warp_core\"); }";
        let found = run("crates/timer/tests/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, RULE_SITES);
        let good = "fn t() { let h = FaultHandle::off(); h.delay(\"assemble\"); }";
        assert!(run("crates/timer/tests/x.rs", good).is_empty());
    }

    #[test]
    fn tie_faults_grammar_strings_are_checked() {
        let src = "const SPEC: &str = \"panic@3, delay:warp_core=250\";";
        let found = run("crates/bench/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("warp_core"));
        let good = "const SPEC: &str = \"panic@3, delay:delta_scan=250\";";
        assert!(run("crates/bench/src/x.rs", good).is_empty());
    }

    #[test]
    fn phase_from_name_strings_are_checked() {
        let bad = "fn f() { let _ = Phase::from_name(\"warp_drive\"); }";
        let found = run("src/lib.rs", bad);
        assert_eq!(found.len(), 1);
        let good = "fn f() { let _ = Phase::from_name(\"contract\"); }";
        assert!(run("src/lib.rs", good).is_empty());
    }

    #[test]
    fn fault_crate_is_exempt_from_site_checks() {
        let src = "fn t() { h.delay(\"anything_goes\"); }";
        assert!(run("crates/fault/src/lib.rs", src).is_empty());
    }
}
