//! Audited suppressions: the checked-in `lint-allow.toml` and the bookkeeping
//! that keeps both suppression mechanisms honest.
//!
//! Every entry must carry a written justification, and every entry must still
//! suppress at least one finding — a suppression that no longer matches
//! anything is reported as *expired* so the allowlist cannot silently rot
//! into a list of permissions nobody remembers granting.

use std::cell::Cell;

use crate::rules::{Finding, ALL_RULES, RULE_ALLOWLIST};

/// One `[[allow]]` entry of `lint-allow.toml`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Workspace-relative path the entry covers (exact match).
    pub path: String,
    /// Rule name the entry suppresses in that file.
    pub rule: String,
    /// Written justification; required.
    pub reason: String,
    /// Line of the entry in `lint-allow.toml` (for hygiene findings).
    pub line: u32,
    pub used: Cell<bool>,
}

/// The parsed allowlist plus any hygiene findings produced while parsing.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    pub parse_findings: Vec<Finding>,
}

impl Allowlist {
    /// Parses the `lint-allow.toml` subset: `#` comments, `[[allow]]` table
    /// headers, and `key = "value"` string pairs (keys: `path`, `rule`,
    /// `reason`). Anything else is reported as a finding rather than an
    /// error, so a broken allowlist fails the lint instead of disabling it.
    pub fn parse(toml_path: &str, content: &str) -> Allowlist {
        let mut out = Allowlist::default();
        let mut current: Option<(String, String, String, u32)> = None;
        let flush = |cur: &mut Option<(String, String, String, u32)>,
                     findings: &mut Vec<Finding>,
                     entries: &mut Vec<AllowEntry>| {
            if let Some((path, rule, reason, line)) = cur.take() {
                let mut bad = |message: String| {
                    findings.push(Finding {
                        file: toml_path.to_string(),
                        line,
                        rule: RULE_ALLOWLIST,
                        message,
                    });
                };
                if path.is_empty() || rule.is_empty() {
                    bad("allow entry needs both `path` and `rule`".to_string());
                } else if reason.trim().is_empty() {
                    bad(format!(
                        "allow entry for {path} / {rule} has no `reason` \
                         (every suppression must carry a justification)"
                    ));
                } else if !ALL_RULES.contains(&rule.as_str()) {
                    bad(format!(
                        "allow entry names unknown rule {rule:?} (known: {ALL_RULES:?})"
                    ));
                } else {
                    entries.push(AllowEntry {
                        path,
                        rule,
                        reason,
                        line,
                        used: Cell::new(false),
                    });
                }
            }
        };
        for (i, raw) in content.lines().enumerate() {
            let lineno = i as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                flush(&mut current, &mut out.parse_findings, &mut out.entries);
                current = Some((String::new(), String::new(), String::new(), lineno));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                out.parse_findings.push(Finding {
                    file: toml_path.to_string(),
                    line: lineno,
                    rule: RULE_ALLOWLIST,
                    message: format!("unparseable line {line:?} (want key = \"value\")"),
                });
                continue;
            };
            let value = value.trim().trim_matches('"').to_string();
            let Some(cur) = current.as_mut() else {
                out.parse_findings.push(Finding {
                    file: toml_path.to_string(),
                    line: lineno,
                    rule: RULE_ALLOWLIST,
                    message: format!("{} outside an [[allow]] entry", key.trim()),
                });
                continue;
            };
            match key.trim() {
                "path" => cur.0 = value,
                "rule" => cur.1 = value,
                "reason" => cur.2 = value,
                other => out.parse_findings.push(Finding {
                    file: toml_path.to_string(),
                    line: lineno,
                    rule: RULE_ALLOWLIST,
                    message: format!("unknown key {other:?} in allow entry"),
                }),
            }
        }
        flush(&mut current, &mut out.parse_findings, &mut out.entries);
        out
    }

    /// Whether `finding` is suppressed by an entry; marks the entry used.
    pub fn suppresses(&self, finding: &Finding) -> bool {
        for e in &self.entries {
            if e.path == finding.file && e.rule == finding.rule {
                e.used.set(true);
                return true;
            }
        }
        false
    }

    /// Hygiene findings for entries that suppressed nothing this run.
    pub fn expired(&self, toml_path: &str) -> Vec<Finding> {
        self.entries
            .iter()
            .filter(|e| !e.used.get())
            .map(|e| Finding {
                file: toml_path.to_string(),
                line: e.line,
                rule: RULE_ALLOWLIST,
                message: format!(
                    "expired allow entry: {} / {} no longer suppresses anything \
                     (delete it)",
                    e.path, e.rule
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_PANIC;

    const GOOD: &str = r#"
# Audited suppressions.
[[allow]]
path = "crates/timer/src/driver.rs"
rule = "no-panic-paths"
reason = "worker join contract"
"#;

    fn finding(file: &str, rule: &'static str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 1,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn parses_and_suppresses() {
        let a = Allowlist::parse("lint-allow.toml", GOOD);
        assert!(a.parse_findings.is_empty(), "{:?}", a.parse_findings);
        assert_eq!(a.entries.len(), 1);
        assert!(a.suppresses(&finding("crates/timer/src/driver.rs", RULE_PANIC)));
        assert!(!a.suppresses(&finding("crates/timer/src/driver.rs", "no-wallclock")));
        assert!(!a.suppresses(&finding("crates/graph/src/io.rs", RULE_PANIC)));
        assert!(a.expired("lint-allow.toml").is_empty());
    }

    #[test]
    fn unused_entry_is_reported_expired() {
        let a = Allowlist::parse("lint-allow.toml", GOOD);
        let expired = a.expired("lint-allow.toml");
        assert_eq!(expired.len(), 1);
        assert!(expired[0].message.contains("expired"));
        assert_eq!(expired[0].line, 3);
    }

    #[test]
    fn missing_reason_is_a_finding() {
        let src = "[[allow]]\npath = \"a.rs\"\nrule = \"no-panic-paths\"\n";
        let a = Allowlist::parse("lint-allow.toml", src);
        assert!(a.entries.is_empty());
        assert_eq!(a.parse_findings.len(), 1);
        assert!(a.parse_findings[0].message.contains("justification"));
    }

    #[test]
    fn unknown_rule_and_garbage_are_findings() {
        let src = "[[allow]]\npath = \"a.rs\"\nrule = \"no-such-rule\"\nreason = \"x\"\nwat\n";
        let a = Allowlist::parse("lint-allow.toml", src);
        assert!(a.entries.is_empty());
        assert_eq!(a.parse_findings.len(), 2);
    }
}
