//! A hand-rolled Rust token scanner: just enough lexing to drive the rule
//! registry without a real parser (crates.io — and therefore `syn` — is
//! unreachable from the build environment, and a lint that gates the tree
//! must not need anything the tree itself cannot build).
//!
//! The scanner produces a flat token stream (identifiers, string literals,
//! punctuation) with line numbers, plus three side channels the rules need:
//!
//! * **inline allow directives** — `// tie-lint: allow(rule) — reason`
//!   comments, with the reason captured so suppressions without a written
//!   justification can be rejected;
//! * **`cfg(test)` regions** — brace-balanced spans introduced by
//!   `#[cfg(test)]` or `#[test]`, so test-only code is exempt from the
//!   determinism rules (nested test modules are handled by tracking the
//!   *outermost* such span);
//! * **`# Panics`-documented spans** — bodies of functions whose doc
//!   comment carries a `# Panics` section, where contract `assert!`s are
//!   legal (a panic that is part of the documented API is not an accident).

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (content without quotes, escapes left as written).
    Str(String),
    /// Single punctuation character (`::` arrives as two `:`).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// An inline `// tie-lint: allow(rule) — reason` directive.
#[derive(Clone, Debug)]
pub struct InlineAllow {
    /// Line the comment sits on; the directive covers this line and, when
    /// the comment stands alone, the next code line.
    pub line: u32,
    pub rule: String,
    /// Justification text after the rule; empty means "missing reason".
    pub reason: String,
    /// Set by the rule engine when the directive suppresses a finding.
    pub used: std::cell::Cell<bool>,
}

/// A half-open line span `[start, end]` (inclusive) of source lines.
#[derive(Clone, Copy, Debug)]
pub struct LineSpan {
    pub start: u32,
    pub end: u32,
}

impl LineSpan {
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// Everything the rules need to know about one scanned file.
#[derive(Debug, Default)]
pub struct ScannedFile {
    pub tokens: Vec<Token>,
    pub allows: Vec<InlineAllow>,
    /// Outermost `#[cfg(test)]` / `#[test]` item spans.
    pub test_spans: Vec<LineSpan>,
    /// Bodies of functions documented with a `# Panics` section.
    pub panics_doc_spans: Vec<LineSpan>,
    /// Lines that are comment-only (used to let a standalone allow comment
    /// cover the following code line).
    pub comment_only_lines: Vec<u32>,
}

impl ScannedFile {
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_spans.iter().any(|s| s.contains(line))
    }

    pub fn in_panics_documented_fn(&self, line: u32) -> bool {
        self.panics_doc_spans.iter().any(|s| s.contains(line))
    }
}

/// Lexes `source` into a [`ScannedFile`]. Never fails: unterminated
/// constructs simply end the stream (the compiler is the authority on
/// well-formedness; the lint only needs a faithful token view of code that
/// already builds).
pub fn scan(source: &str) -> ScannedFile {
    let lexed = lex(source);
    let mut out = ScannedFile {
        test_spans: find_attr_spans(&lexed.tokens),
        panics_doc_spans: find_panics_doc_spans(&lexed.tokens, &lexed.doc_panics_lines),
        tokens: lexed.tokens,
        allows: lexed.allows,
        comment_only_lines: Vec::new(),
    };
    out.comment_only_lines = comment_only_lines(source);
    out
}

struct Lexed {
    tokens: Vec<Token>,
    allows: Vec<InlineAllow>,
    /// Lines of `///` / `//!` doc comments containing `# Panics`.
    doc_panics_lines: Vec<u32>,
}

fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut allows = Vec::new();
    let mut doc_panics_lines = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                if text.starts_with("///") || text.starts_with("//!") {
                    if text.contains("# Panics") {
                        doc_panics_lines.push(line);
                    }
                } else if let Some(allow) = parse_allow_comment(text, line) {
                    allows.push(allow);
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (content, next, newlines) = lex_string(source, i + 1);
                tokens.push(Token {
                    tok: Tok::Str(content),
                    line: start_line,
                });
                line += newlines;
                i = next;
            }
            'r' if is_raw_string_start(bytes, i) => {
                let start_line = line;
                let (content, next, newlines) = lex_raw_string(source, i);
                tokens.push(Token {
                    tok: Tok::Str(content),
                    line: start_line,
                });
                line += newlines;
                i = next;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let rest = &bytes[i + 1..];
                let is_lifetime = matches!(rest.first(), Some(&b) if b.is_ascii_alphabetic() || b == b'_')
                    && rest.get(1) != Some(&b'\'');
                if is_lifetime {
                    i += 1; // skip the quote; the name lexes as an ident
                } else {
                    // Char literal: skip to the closing quote.
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            // Identifiers are ASCII-only on purpose: a multi-byte char (e.g.
            // `µ` or `—` in a char literal) must never be byte-sliced.
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(source[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Numbers (incl. suffixes like 0u64, 1_000, 0x9e37) lex as a
                // blob and are dropped; no rule needs them.
                while i < bytes.len() {
                    let b = bytes[i];
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                        // `0..n` — stop before a range, keep `1.5` together.
                        if b == b'.' && bytes.get(i + 1) == Some(&b'.') {
                            break;
                        }
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
            c => {
                tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    Lexed {
        tokens,
        allows,
        doc_panics_lines,
    }
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Lexes a normal string body starting after the opening quote. Returns
/// `(content, index_after_close, newline_count)`.
fn lex_string(source: &str, mut i: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let start = i;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            // An escaped newline (`\` line continuation) still ends a source
            // line — miscounting here shifts every later finding's line.
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                i += 2;
            }
            b'"' => {
                return (source[start..i].to_string(), i + 1, newlines);
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (source[start..i].to_string(), i, newlines)
}

/// Lexes a raw string starting at the `r`. Returns the same triple as
/// [`lex_string`].
fn lex_raw_string(source: &str, i: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut hashes = 0usize;
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let start = j;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let mut newlines = 0u32;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
        }
        if bytes[j] == b'"' && bytes[j..].starts_with(&closer) {
            return (source[start..j].to_string(), j + closer.len(), newlines);
        }
        j += 1;
    }
    (source[start..j].to_string(), j, newlines)
}

/// Parses `tie-lint: allow(rule) — reason` out of a line comment.
fn parse_allow_comment(comment: &str, line: u32) -> Option<InlineAllow> {
    let idx = comment.find("tie-lint:")?;
    let rest = comment[idx + "tie-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    // Everything after the paren, minus separator punctuation, is the reason.
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\t'])
        .trim_start_matches(['—', '-', ':', '–'])
        .trim()
        .to_string();
    Some(InlineAllow {
        line,
        rule,
        reason,
        used: std::cell::Cell::new(false),
    })
}

fn comment_only_lines(source: &str) -> Vec<u32> {
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("//"))
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

/// Finds the outermost spans of items marked `#[cfg(test)]` or `#[test]`.
/// An item span runs from the attribute to either the `;` closing a bodyless
/// item or the `}` closing its brace-balanced body.
fn find_attr_spans(tokens: &[Token]) -> Vec<LineSpan> {
    let mut spans: Vec<LineSpan> = Vec::new();
    let mut k = 0usize;
    while k < tokens.len() {
        if let Some(attr_len) = test_attr_at(tokens, k) {
            let start_line = tokens[k].line;
            if let Some(last) = spans.last() {
                // Nested inside an already-recorded test span: skip.
                if last.contains(start_line) {
                    k += attr_len;
                    continue;
                }
            }
            let end = item_end(tokens, k + attr_len);
            spans.push(LineSpan {
                start: start_line,
                end: tokens
                    .get(end.min(tokens.len().saturating_sub(1)))
                    .map_or(u32::MAX, |t| t.line),
            });
            k = end + 1;
        } else {
            k += 1;
        }
    }
    spans
}

/// Matches `#[cfg(test)]` or `#[test]` starting at `k`; returns the token
/// count of the attribute when it matches.
fn test_attr_at(tokens: &[Token], k: usize) -> Option<usize> {
    if tokens.get(k)?.tok != Tok::Punct('#') || tokens.get(k + 1)?.tok != Tok::Punct('[') {
        return None;
    }
    match &tokens.get(k + 2)?.tok {
        Tok::Ident(id) if id == "test" => (tokens.get(k + 3)?.tok == Tok::Punct(']')).then_some(4),
        Tok::Ident(id) if id == "cfg" => {
            let seq = [
                Tok::Punct('('),
                Tok::Ident("test".to_string()),
                Tok::Punct(')'),
                Tok::Punct(']'),
            ];
            for (off, want) in seq.iter().enumerate() {
                if &tokens.get(k + 3 + off)?.tok != want {
                    return None;
                }
            }
            Some(7)
        }
        _ => None,
    }
}

/// Index of the token closing the item that starts at `k` (the matching `}`
/// of its first brace block, or the first `;` before any brace opens).
fn item_end(tokens: &[Token], mut k: usize) -> usize {
    let mut depth = 0i32;
    let mut entered = false;
    while k < tokens.len() {
        match tokens[k].tok {
            Tok::Punct('{') => {
                depth += 1;
                entered = true;
            }
            Tok::Punct('}') => {
                depth -= 1;
                if entered && depth == 0 {
                    return k;
                }
            }
            Tok::Punct(';') if !entered => return k,
            _ => {}
        }
        k += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Bodies of `fn`s whose preceding doc block contains `# Panics`: from each
/// such doc line, the next `fn` token's brace block is the documented span.
fn find_panics_doc_spans(tokens: &[Token], doc_lines: &[u32]) -> Vec<LineSpan> {
    let mut spans = Vec::new();
    for &doc_line in doc_lines {
        // First token at or after the doc line.
        let Some(start) = tokens.iter().position(|t| t.line >= doc_line) else {
            continue;
        };
        // The doc block belongs to the next `fn` item; give up at the first
        // closing brace (end of the surrounding scope) to avoid leaking onto
        // unrelated functions.
        let mut k = start;
        let mut fn_at = None;
        while k < tokens.len() {
            match &tokens[k].tok {
                Tok::Ident(id) if id == "fn" => {
                    fn_at = Some(k);
                    break;
                }
                Tok::Punct('}') => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(fn_at) = fn_at {
            let end = item_end(tokens, fn_at);
            spans.push(LineSpan {
                start: tokens[fn_at].line,
                end: tokens.get(end).map_or(tokens[fn_at].line, |t| t.line),
            });
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(scanned: &ScannedFile) -> Vec<String> {
        scanned
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn escaped_newline_in_string_still_counts_as_a_line() {
        let s = scan("let a = \"one \\\n two\";\nlet after = 1;\n");
        let after = s
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("after".to_string()))
            .map(|t| t.line);
        assert_eq!(after, Some(3));
    }

    #[test]
    fn lexes_idents_strings_and_puncts_with_lines() {
        let s = scan("fn main() {\n    let x = \"hello // not a comment\";\n}\n");
        assert_eq!(idents(&s), vec!["fn", "main", "let", "x"]);
        let string_tok = s
            .tokens
            .iter()
            .find(|t| matches!(t.tok, Tok::Str(_)))
            .unwrap();
        assert_eq!(string_tok.line, 2);
        assert_eq!(string_tok.tok, Tok::Str("hello // not a comment".into()));
    }

    #[test]
    fn comments_and_char_literals_do_not_produce_tokens() {
        let s = scan("// line .unwrap()\n/* block\n .expect( */\nlet c = 'x'; let nl = '\\n';");
        assert!(!idents(&s).contains(&"unwrap".to_string()));
        assert!(!idents(&s).contains(&"expect".to_string()));
        assert!(idents(&s).contains(&"nl".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }");
        // The following ident must survive the lifetime quote handling.
        assert!(idents(&s).contains(&"str".to_string()));
    }

    #[test]
    fn raw_strings_lex_whole() {
        let s = scan("let x = r#\"a \"quoted\" b\"#; let y = 1;");
        assert!(s
            .tokens
            .iter()
            .any(|t| t.tok == Tok::Str("a \"quoted\" b".into())));
        assert!(idents(&s).contains(&"y".to_string()));
    }

    #[test]
    fn cfg_test_spans_cover_nested_modules() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    #[cfg(test)]
    mod inner {
        fn helper() {}
    }
    #[test]
    fn t() {}
}
fn prod2() {}
";
        let s = scan(src);
        assert_eq!(s.test_spans.len(), 1, "{:?}", s.test_spans);
        assert!(!s.in_test_code(1));
        assert!(s.in_test_code(6));
        assert!(s.in_test_code(9));
        assert!(!s.in_test_code(11));
    }

    #[test]
    fn bodyless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let s = scan(src);
        assert!(s.in_test_code(2));
        assert!(!s.in_test_code(3));
    }

    #[test]
    fn allow_comments_parse_with_and_without_reason() {
        let src = "\
let a = 1; // tie-lint: allow(no-wallclock) — phase timing feeds telemetry only
// tie-lint: allow(no-panic-paths)
let b = 2;
";
        let s = scan(src);
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].rule, "no-wallclock");
        assert!(s.allows[0].reason.contains("telemetry"));
        assert_eq!(s.allows[1].rule, "no-panic-paths");
        assert!(s.allows[1].reason.is_empty());
        assert!(s.comment_only_lines.contains(&2));
        assert!(!s.comment_only_lines.contains(&1));
    }

    #[test]
    fn panics_doc_span_covers_fn_body() {
        let src = "\
/// Does things.
///
/// # Panics
/// Panics if n is odd.
pub fn f(n: u32) {
    assert!(n % 2 == 0);
}
fn undocumented() {
    let x = 1;
}
";
        let s = scan(src);
        assert!(s.in_panics_documented_fn(6));
        assert!(!s.in_panics_documented_fn(9));
    }
}
