//! # tie-lint
//!
//! A workspace invariant checker for the TiMEr reproduction: statically
//! enforces the conventions every speedup claim rests on, so they are
//! machine-checked on every commit instead of guarded only by tests after
//! the fact.
//!
//! The load-bearing invariant is that `Timer::enhance` is byte-identical
//! across every `(threads, batch)` setting (docs/DETERMINISM.md). The rules:
//!
//! * **no-unordered-iteration** — no `HashMap`/`HashSet` iteration on
//!   non-test paths of result-affecting crates (lookups stay legal);
//! * **no-panic-paths** — no `unwrap`/`expect`/`panic!`/`todo!` on library
//!   paths, and `assert!` only inside `# Panics`-documented functions;
//! * **no-wallclock** — no `Instant::now`/`SystemTime` outside the
//!   deadline, trace-timestamp and bench modules;
//! * **registered-sites** — trace phase names and `TIE_FAULTS` site names
//!   used anywhere must come from the vocabularies exported by `tie-trace`
//!   and `tie-fault`.
//!
//! Audited exceptions live in the checked-in `lint-allow.toml` or as inline
//! `// tie-lint: allow(rule) — reason` comments; both require a written
//! justification and both are reported when they stop suppressing anything.
//!
//! Everything is hand-rolled (scanner included): the build environment has
//! no crates.io access, and the gate must not depend on anything the tree
//! itself cannot build.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod allow;
pub mod rules;
pub mod scanner;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use allow::Allowlist;
use rules::{check_file, FileClass, Finding, Vocab, RULE_ALLOWLIST};
use scanner::scan;

/// Name of the checked-in allowlist at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint-allow.toml";

/// Result of scanning a workspace (or a fixture tree).
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    /// `file:line: rule: message` lines, one per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: {}: {}", f.file, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "tie-lint: {} finding(s) in {} file(s)",
            self.findings.len(),
            self.files_scanned
        );
        out
    }

    /// Machine-readable report (archived next to `BENCH_timer.json` by CI so
    /// the finding count is part of the repo trajectory).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tool\": \"tie-lint\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"finding_count\": {},", self.findings.len());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_string(&f.file),
                f.line,
                json_string(f.rule),
                json_string(&f.message)
            );
        }
        out.push_str(if self.findings.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Scans one file's source against an allowlist, applying inline allow
/// directives. Public so the fixture suite can drive the exact production
/// path with synthetic paths and sources.
pub fn check_source(
    rel_path: &str,
    source: &str,
    vocab: &Vocab,
    allowlist: &Allowlist,
) -> Vec<Finding> {
    let class = FileClass::classify(rel_path);
    let scanned = scan(source);
    let raw = check_file(rel_path, &class, &scanned, vocab);
    let mut findings = Vec::new();
    for f in raw {
        // Inline directive on the finding's line, or standing alone on the
        // line directly above it.
        let inline = scanned.allows.iter().find(|a| {
            a.rule == f.rule
                && (a.line == f.line
                    || (a.line + 1 == f.line && scanned.comment_only_lines.contains(&a.line)))
        });
        if let Some(a) = inline {
            if a.reason.is_empty() {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: a.line,
                    rule: RULE_ALLOWLIST,
                    message: format!(
                        "inline allow({}) has no reason — write \
                         `// tie-lint: allow({}) — why` (directive ignored)",
                        a.rule, a.rule
                    ),
                });
                findings.push(f);
            } else {
                a.used.set(true);
            }
            continue;
        }
        if allowlist.suppresses(&f) {
            continue;
        }
        findings.push(f);
    }
    // Inline directives that suppressed nothing are as stale as unused
    // allowlist entries.
    for a in &scanned.allows {
        if !a.used.get() && !a.reason.is_empty() {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: a.line,
                rule: RULE_ALLOWLIST,
                message: format!(
                    "expired inline allow({}) no longer suppresses anything (delete it)",
                    a.rule
                ),
            });
        }
    }
    findings
}

/// Scans every workspace `.rs` file under `root` and applies the checked-in
/// allowlist. IO problems become findings, never a crash: the lint must be
/// able to report on a tree it cannot fully read.
pub fn scan_workspace(root: &Path) -> Report {
    let vocab = Vocab::workspace();
    let allow_path = root.join(ALLOWLIST_FILE);
    let mut findings = Vec::new();
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(content) => {
            let parsed = Allowlist::parse(ALLOWLIST_FILE, &content);
            findings.extend(parsed.parse_findings.iter().cloned());
            parsed
        }
        // A missing allowlist just means "no exceptions".
        Err(_) => Allowlist::default(),
    };
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    let files_scanned = files.len();
    for rel in &files {
        let abs = root.join(rel);
        match std::fs::read_to_string(&abs) {
            Ok(source) => findings.extend(check_source(rel, &source, &vocab, &allowlist)),
            Err(e) => findings.push(Finding {
                file: rel.clone(),
                line: 0,
                rule: RULE_ALLOWLIST,
                message: format!("unreadable file: {e}"),
            }),
        }
    }
    findings.extend(allowlist.expired(ALLOWLIST_FILE));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Report {
        findings,
        files_scanned,
    }
}

/// Directories never scanned: third-party stand-ins, build output, VCS
/// internals, and the lint's own fixture corpus (which is violations on
/// purpose).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect_rs_files(root, &path, out);
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                // `/`-separated workspace-relative path on every platform.
                let rel: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(rel.join("/"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocab {
        Vocab::workspace()
    }

    #[test]
    fn inline_allow_with_reason_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap() // tie-lint: allow(no-panic-paths) — invariant: x is Some here\n}\n";
        let found = check_source(
            "crates/graph/src/x.rs",
            src,
            &vocab(),
            &Allowlist::default(),
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn inline_allow_on_previous_line_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // tie-lint: allow(no-panic-paths) — invariant: x is Some here\n    \
                   x.unwrap()\n}\n";
        let found = check_source(
            "crates/graph/src/x.rs",
            src,
            &vocab(),
            &Allowlist::default(),
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn inline_allow_without_reason_is_inert_and_flagged() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // tie-lint: allow(no-panic-paths)\n}\n";
        let found = check_source(
            "crates/graph/src/x.rs",
            src,
            &vocab(),
            &Allowlist::default(),
        );
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|f| f.rule == RULE_ALLOWLIST));
        assert!(found.iter().any(|f| f.rule == rules::RULE_PANIC));
    }

    #[test]
    fn expired_inline_allow_is_flagged() {
        let src = "// tie-lint: allow(no-wallclock) — was needed before refactor\nfn f() {}\n";
        let found = check_source(
            "crates/graph/src/x.rs",
            src,
            &vocab(),
            &Allowlist::default(),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("expired inline allow"));
    }

    #[test]
    fn json_report_is_escaped_and_shaped() {
        let report = Report {
            findings: vec![Finding {
                file: "a\"b.rs".to_string(),
                line: 3,
                rule: rules::RULE_PANIC,
                message: "quote \" and newline \n".to_string(),
            }],
            files_scanned: 7,
        };
        let json = report.render_json();
        assert!(json.contains("\"finding_count\": 1"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("newline \\n"));
        assert!(!json.contains('\u{0}'));
    }

    #[test]
    fn text_report_format_is_file_line_rule_message() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/a.rs".to_string(),
                line: 12,
                rule: rules::RULE_WALLCLOCK,
                message: "msg".to_string(),
            }],
            files_scanned: 1,
        };
        let text = report.render_text();
        assert!(text.starts_with("crates/x/src/a.rs:12: no-wallclock: msg\n"));
        assert!(text.contains("1 finding(s) in 1 file(s)"));
    }
}
