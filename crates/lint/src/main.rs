//! `tie-lint` — the workspace invariant checker, run as
//! `cargo run -p tie-lint -- --workspace` (CI runs it alongside clippy).
//!
//! Exit status: 0 clean, 1 findings, 2 usage error.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: tie-lint --workspace [--root PATH] [--format text|json]
  --workspace        scan every workspace .rs file (required)
  --root PATH        workspace root (default: the root this binary was built in)
  --format text|json report format (default text; json is the archived artifact)";

#[derive(Debug)]
struct Options {
    workspace: bool,
    root: Option<PathBuf>,
    json: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        root: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--root" => {
                let path = it.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                other => return Err(format!("--format must be text or json, got {other:?}")),
            },
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !opts.workspace {
        return Err("nothing to do: pass --workspace".to_string());
    }
    Ok(opts)
}

/// Workspace root: `--root`, or two levels above this crate's manifest
/// (crates/lint → workspace), falling back to the current directory.
fn workspace_root(opts: &Options) -> PathBuf {
    if let Some(root) = &opts.root {
        return root.clone();
    }
    let manifest: PathBuf = env!("CARGO_MANIFEST_DIR").into();
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("tie-lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = workspace_root(&opts);
    let report = tie_lint::scan_workspace(&root);
    if opts.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_options(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flags() {
        let o = parse(&["--workspace", "--format", "json"]).expect("valid flags must parse");
        assert!(o.workspace && o.json);
        let o = parse(&["--workspace", "--root", "/tmp/x"]).expect("valid flags must parse");
        assert_eq!(o.root.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--workspace", "--format", "xml"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }
}
