//! Processor-graph builders.
//!
//! The paper evaluates on five processor graphs: a 16×16 grid, an 8×8×8 grid,
//! a 16×16 torus, an 8×8×8 torus and an 8-dimensional hypercube (Section 7.1).
//! All of them — and additionally trees and paths — are partial cubes, the
//! graph class TIMER requires.

use tie_graph::{generators, Graph, GraphBuilder, NodeId};

/// The family a [`Topology`] belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Rectangular mesh with the given extents.
    Grid(Vec<usize>),
    /// Torus with the given extents (wrap-around in every dimension).
    Torus(Vec<usize>),
    /// Hypercube of the given dimension.
    Hypercube(usize),
    /// Complete binary tree with the given vertex count.
    Tree(usize),
    /// Simple path with the given vertex count.
    Path(usize),
    /// Anything user-supplied.
    Custom,
}

/// A processor graph together with descriptive metadata.
#[derive(Clone, Debug)]
pub struct Topology {
    /// The processor graph `Gp`.
    pub graph: Graph,
    /// Human-readable name used in reports (e.g. `grid16x16`).
    pub name: String,
    /// Structural family.
    pub kind: TopologyKind,
}

impl Topology {
    /// Number of processing elements.
    pub fn num_pes(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Wraps an arbitrary graph as a custom topology.
    pub fn custom(graph: Graph, name: impl Into<String>) -> Self {
        Topology {
            graph,
            name: name.into(),
            kind: TopologyKind::Custom,
        }
    }

    /// 2D grid (mesh) topology with `nx × ny` PEs.
    pub fn grid2d(nx: usize, ny: usize) -> Self {
        Topology {
            graph: generators::grid2d(nx, ny),
            name: format!("grid{nx}x{ny}"),
            kind: TopologyKind::Grid(vec![nx, ny]),
        }
    }

    /// 3D grid (mesh) topology with `nx × ny × nz` PEs.
    pub fn grid3d(nx: usize, ny: usize, nz: usize) -> Self {
        Topology {
            graph: generators::grid3d(nx, ny, nz),
            name: format!("grid{nx}x{ny}x{nz}"),
            kind: TopologyKind::Grid(vec![nx, ny, nz]),
        }
    }

    /// 2D torus topology with `nx × ny` PEs. Only tori with *even* extents in
    /// every dimension are partial cubes (the paper restricts itself to
    /// those); odd extents are still constructed but will be rejected by the
    /// partial-cube recognizer.
    pub fn torus2d(nx: usize, ny: usize) -> Self {
        let idx = |x: usize, y: usize| (x * ny + y) as NodeId;
        let mut b = GraphBuilder::new(nx * ny);
        for x in 0..nx {
            for y in 0..ny {
                if nx > 1 {
                    b.add_edge(idx(x, y), idx((x + 1) % nx, y), 1);
                }
                if ny > 1 {
                    b.add_edge(idx(x, y), idx(x, (y + 1) % ny), 1);
                }
            }
        }
        Topology {
            graph: b.build(),
            name: format!("torus{nx}x{ny}"),
            kind: TopologyKind::Torus(vec![nx, ny]),
        }
    }

    /// 3D torus topology with `nx × ny × nz` PEs.
    pub fn torus3d(nx: usize, ny: usize, nz: usize) -> Self {
        let idx = |x: usize, y: usize, z: usize| (x * ny * nz + y * nz + z) as NodeId;
        let mut b = GraphBuilder::new(nx * ny * nz);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    if nx > 1 {
                        b.add_edge(idx(x, y, z), idx((x + 1) % nx, y, z), 1);
                    }
                    if ny > 1 {
                        b.add_edge(idx(x, y, z), idx(x, (y + 1) % ny, z), 1);
                    }
                    if nz > 1 {
                        b.add_edge(idx(x, y, z), idx(x, y, (z + 1) % nz), 1);
                    }
                }
            }
        }
        Topology {
            graph: b.build(),
            name: format!("torus{nx}x{ny}x{nz}"),
            kind: TopologyKind::Torus(vec![nx, ny, nz]),
        }
    }

    /// `dim`-dimensional hypercube with `2^dim` PEs.
    ///
    /// # Panics
    /// Panics if `dim > 20` (over a million PEs — almost certainly a bug).
    pub fn hypercube(dim: usize) -> Self {
        assert!(dim <= 20, "hypercube dimension {dim} unreasonably large");
        let n = 1usize << dim;
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            for d in 0..dim {
                let u = v ^ (1 << d);
                if u > v {
                    b.add_edge(v as NodeId, u as NodeId, 1);
                }
            }
        }
        Topology {
            graph: b.build(),
            name: format!("{dim}-dimHQ"),
            kind: TopologyKind::Hypercube(dim),
        }
    }

    /// Complete binary tree with `n` PEs (e.g. a fat-tree-like switch
    /// hierarchy collapsed to its tree skeleton). Trees are partial cubes.
    pub fn binary_tree(n: usize) -> Self {
        Topology {
            graph: generators::binary_tree(n),
            name: format!("tree{n}"),
            kind: TopologyKind::Tree(n),
        }
    }

    /// Simple path of `n` PEs (a 1×n grid).
    pub fn path(n: usize) -> Self {
        Topology {
            graph: generators::path_graph(n),
            name: format!("path{n}"),
            kind: TopologyKind::Path(n),
        }
    }

    /// The five processor graphs of the paper's evaluation (Section 7.1), in
    /// the order of Table 2: 16×16 grid, 8×8×8 grid, 16×16 torus, 8×8×8
    /// torus, 8-dimensional hypercube.
    pub fn paper_topologies() -> Vec<Topology> {
        vec![
            Topology::grid2d(16, 16),
            Topology::grid3d(8, 8, 8),
            Topology::torus2d(16, 16),
            Topology::torus3d(8, 8, 8),
            Topology::hypercube(8),
        ]
    }

    /// Scaled-down variants of the paper's topologies (64 PEs each) for fast
    /// tests and examples: 8×8 grid, 4×4×4 grid, 8×8 torus, 4×4×4 torus,
    /// 6-dim hypercube.
    pub fn small_topologies() -> Vec<Topology> {
        vec![
            Topology::grid2d(8, 8),
            Topology::grid3d(4, 4, 4),
            Topology::torus2d(8, 8),
            Topology::torus3d(4, 4, 4),
            Topology::hypercube(6),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_graph::traversal::is_connected;

    #[test]
    fn grid2d_metadata() {
        let t = Topology::grid2d(16, 16);
        assert_eq!(t.num_pes(), 256);
        assert_eq!(t.name, "grid16x16");
        assert!(is_connected(&t.graph));
        assert_eq!(t.graph.num_edges(), 2 * 16 * 15);
    }

    #[test]
    fn grid3d_edge_count() {
        let t = Topology::grid3d(8, 8, 8);
        assert_eq!(t.num_pes(), 512);
        assert_eq!(t.graph.num_edges(), 3 * 8 * 8 * 7);
    }

    #[test]
    fn torus2d_is_4_regular() {
        let t = Topology::torus2d(16, 16);
        assert_eq!(t.num_pes(), 256);
        for v in t.graph.vertices() {
            assert_eq!(t.graph.degree(v), 4);
        }
        assert_eq!(t.graph.num_edges(), 2 * 256);
    }

    #[test]
    fn torus3d_is_6_regular() {
        let t = Topology::torus3d(8, 8, 8);
        assert_eq!(t.num_pes(), 512);
        for v in t.graph.vertices() {
            assert_eq!(t.graph.degree(v), 6);
        }
    }

    #[test]
    fn small_torus_degenerate_extents() {
        // 2-extent tori: wrap-around edge coincides with the grid edge, so the
        // builder merges them; degree per dimension is 1, not 2.
        let t = Topology::torus2d(2, 2);
        assert_eq!(t.num_pes(), 4);
        for v in t.graph.vertices() {
            assert_eq!(t.graph.degree(v), 2);
        }
    }

    #[test]
    fn hypercube_shape() {
        let t = Topology::hypercube(8);
        assert_eq!(t.num_pes(), 256);
        for v in t.graph.vertices() {
            assert_eq!(t.graph.degree(v), 8);
        }
        assert_eq!(t.graph.num_edges(), 8 * 256 / 2);
        assert_eq!(t.name, "8-dimHQ");
    }

    #[test]
    fn hypercube_neighbors_differ_in_one_bit() {
        let t = Topology::hypercube(5);
        for (u, v, _) in t.graph.edges() {
            assert_eq!((u ^ v).count_ones(), 1);
        }
    }

    #[test]
    fn tree_and_path() {
        let t = Topology::binary_tree(31);
        assert_eq!(t.graph.num_edges(), 30);
        assert!(is_connected(&t.graph));
        let p = Topology::path(10);
        assert_eq!(p.graph.num_edges(), 9);
    }

    #[test]
    fn paper_topologies_inventory() {
        let ts = Topology::paper_topologies();
        assert_eq!(ts.len(), 5);
        let sizes: Vec<usize> = ts.iter().map(|t| t.num_pes()).collect();
        assert_eq!(sizes, vec![256, 512, 256, 512, 256]);
    }

    #[test]
    fn small_topologies_inventory() {
        let ts = Topology::small_topologies();
        assert_eq!(ts.len(), 5);
        assert!(ts.iter().all(|t| t.num_pes() == 64));
    }
}
