//! Permutation-induced hierarchies on the PEs (Section 2, Figure 2).
//!
//! Given a partial-cube labelling of `Gp` and a permutation π of the label
//! digits, the equivalence relation `u ∼_{π,i} v ⇔` "the first `i` permuted
//! digits of the labels agree" produces a hierarchy of increasingly coarse
//! partitions `(P_dim, …, P_1)`. Different permutations yield very different
//! hierarchies — that diversity is what the TIMER search exploits.

use std::collections::HashMap;

use crate::label::{bit, Label};

/// A hierarchy of partitions of a labelled vertex set, induced by a digit
/// permutation.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    labels: Vec<Label>,
    dim: usize,
    /// `perm[i]` is the original digit that provides the `i`-th digit of the
    /// permuted label (0-based, 0 = most significant group level).
    perm: Vec<usize>,
}

impl Hierarchy {
    /// Creates a hierarchy from labels of dimension `dim` and a permutation
    /// of `0..dim`. The identity permutation corresponds to grouping by the
    /// most significant original digit first (digit `dim - 1`), matching the
    /// paper's convention that level 1 groups by the first label character.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..dim`.
    pub fn new(labels: Vec<Label>, dim: usize, perm: Vec<usize>) -> Self {
        assert_eq!(
            perm.len(),
            dim,
            "permutation length must equal label dimension"
        );
        let mut check: Vec<usize> = perm.clone();
        check.sort_unstable();
        assert_eq!(
            check,
            (0..dim).collect::<Vec<_>>(),
            "perm must be a permutation of 0..dim"
        );
        Hierarchy { labels, dim, perm }
    }

    /// Convenience constructor with the identity permutation.
    pub fn identity(labels: Vec<Label>, dim: usize) -> Self {
        let perm = (0..dim).rev().collect();
        Hierarchy { labels, dim, perm }
    }

    /// Number of levels (equals the label dimension). Level `i` (1-based)
    /// groups vertices by their first `i` permuted digits; level 0 is the
    /// single all-encompassing block.
    pub fn num_levels(&self) -> usize {
        self.dim
    }

    /// Number of labelled vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// The key of vertex `v` at level `i`: its first `i` permuted digits,
    /// packed most-significant-first.
    fn key_at_level(&self, v: usize, level: usize) -> u64 {
        let mut key = 0u64;
        for j in 0..level {
            key = (key << 1) | bit(self.labels[v], self.perm[j]);
        }
        key
    }

    /// Partition at level `i` (0 ≤ i ≤ dim): returns, for every vertex, a
    /// dense block id. Level 0 puts everything in block 0; level `dim`
    /// separates every distinct label.
    ///
    /// # Panics
    /// Panics if `level` exceeds the hierarchy dimension.
    pub fn partition_at_level(&self, level: usize) -> Vec<u32> {
        assert!(
            level <= self.dim,
            "level {level} exceeds dimension {}",
            self.dim
        );
        let mut block_of_key: HashMap<u64, u32> = HashMap::new();
        let mut out = Vec::with_capacity(self.labels.len());
        for v in 0..self.labels.len() {
            let key = self.key_at_level(v, level);
            let next = block_of_key.len() as u32;
            let id = *block_of_key.entry(key).or_insert(next);
            out.push(id);
        }
        out
    }

    /// Number of blocks at the given level.
    pub fn num_blocks_at_level(&self, level: usize) -> usize {
        let p = self.partition_at_level(level);
        p.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0)
    }

    /// Checks that consecutive levels refine each other: any two vertices in
    /// the same block at level `i + 1` are also together at level `i`.
    pub fn is_proper_hierarchy(&self) -> bool {
        for level in 0..self.dim {
            let coarse = self.partition_at_level(level);
            let fine = self.partition_at_level(level + 1);
            let mut coarse_of_fine: HashMap<u32, u32> = HashMap::new();
            for v in 0..self.labels.len() {
                match coarse_of_fine.get(&fine[v]) {
                    None => {
                        coarse_of_fine.insert(fine[v], coarse[v]);
                    }
                    Some(&c) if c != coarse[v] => return false,
                    _ => {}
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::Topology;
    use crate::partial_cube::recognize_partial_cube;

    /// Builds the Figure-2 setting: the 4-dimensional hypercube with its
    /// natural labels (vertex id = label).
    fn hypercube4_labels() -> (Vec<Label>, usize) {
        let t = Topology::hypercube(4);
        let labeling = recognize_partial_cube(&t.graph).unwrap();
        (labeling.labels, labeling.dim)
    }

    #[test]
    fn level_block_counts_double() {
        let (labels, dim) = hypercube4_labels();
        let h = Hierarchy::identity(labels, dim);
        // Figure 2: level i has 2^i blocks for the 4-D hypercube.
        for level in 0..=4usize {
            assert_eq!(h.num_blocks_at_level(level), 1 << level);
        }
    }

    #[test]
    fn opposite_permutations_give_different_partitions() {
        let (labels, dim) = hypercube4_labels();
        let fwd = Hierarchy::new(labels.clone(), dim, (0..dim).collect());
        let rev = Hierarchy::new(labels, dim, (0..dim).rev().collect());
        // Both are proper hierarchies …
        assert!(fwd.is_proper_hierarchy());
        assert!(rev.is_proper_hierarchy());
        // … but group differently at intermediate levels (Figure 2, top vs
        // bottom): at level 1 the forward hierarchy splits on a different
        // digit than the reverse one.
        let p_fwd = fwd.partition_at_level(1);
        let p_rev = rev.partition_at_level(1);
        assert_ne!(p_fwd, p_rev);
        // Finest level always separates all 16 distinct labels.
        assert_eq!(fwd.num_blocks_at_level(4), 16);
        assert_eq!(rev.num_blocks_at_level(4), 16);
    }

    #[test]
    fn level_zero_is_single_block() {
        let (labels, dim) = hypercube4_labels();
        let h = Hierarchy::identity(labels, dim);
        let p = h.partition_at_level(0);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn hierarchy_on_grid_labels() {
        let t = Topology::grid2d(4, 4);
        let labeling = recognize_partial_cube(&t.graph).unwrap();
        let perm: Vec<usize> = (0..labeling.dim).collect();
        let h = Hierarchy::new(labeling.labels, labeling.dim, perm);
        assert!(h.is_proper_hierarchy());
        // A 4x4 grid has 16 distinct labels at the finest level.
        assert_eq!(h.num_blocks_at_level(h.num_levels()), 16);
        // Block counts are monotone in the level.
        let mut prev = 1;
        for level in 0..=h.num_levels() {
            let cur = h.num_blocks_at_level(level);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_permutation() {
        let (labels, dim) = hypercube4_labels();
        let _ = Hierarchy::new(labels, dim, vec![0; dim]);
    }

    #[test]
    #[should_panic]
    fn rejects_level_beyond_dim() {
        let (labels, dim) = hypercube4_labels();
        let h = Hierarchy::identity(labels, dim);
        let _ = h.partition_at_level(dim + 1);
    }
}
