//! Bitvector labels.
//!
//! Labels are stored as the low `dim` bits of a `u64`. This covers every
//! configuration in the paper: the largest processor graph (a 16×16 torus)
//! has 32 Djoković classes, and the extension bits needed to make
//! application-graph labels unique add `ceil(log2(max block size))` more —
//! comfortably below 64 for realistic block sizes. The recognizer rejects
//! topologies whose isometric dimension exceeds 64.

/// A bitvector label, stored in the low bits of a `u64`.
pub type Label = u64;

/// Hamming distance between two labels (number of differing bits).
#[inline]
pub fn hamming(a: Label, b: Label) -> u32 {
    (a ^ b).count_ones()
}

/// Returns bit `i` (0 = least significant) of `label` as 0 or 1.
#[inline]
pub fn bit(label: Label, i: usize) -> u64 {
    (label >> i) & 1
}

/// Sets bit `i` of `label` to `value` (0 or 1).
#[inline]
pub fn with_bit(label: Label, i: usize, value: u64) -> Label {
    (label & !(1u64 << i)) | ((value & 1) << i)
}

/// Permutes the low `dim` bits of `label`: bit `i` of the result is bit
/// `perm[i]` of the input. `perm` must be a permutation of `0..dim`.
///
/// The paper permutes label *digits* to generate diverse hierarchies
/// (Section 6); this is the corresponding bit-level operation.
///
/// # Panics
/// Panics if `perm.len() != dim` — in all build profiles. A wrong-length
/// permutation would silently drop or duplicate label digits, corrupting
/// every mapping derived from the labels downstream, so this is a hard
/// error rather than a debug-only assertion.
pub fn permute_label_bits(label: Label, perm: &[usize], dim: usize) -> Label {
    assert_eq!(
        perm.len(),
        dim,
        "digit permutation has length {} but the labels have {} digits",
        perm.len(),
        dim
    );
    let mut out = 0u64;
    for (i, &src) in perm.iter().enumerate() {
        debug_assert!(src < dim, "permutation entry {src} out of range 0..{dim}");
        out |= bit(label, src) << i;
    }
    out
}

/// Inverts a permutation of `0..n`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Renders the low `dim` bits of `label` most-significant-bit first, matching
/// the paper's figures (e.g. `0110`).
pub fn format_label(label: Label, dim: usize) -> String {
    (0..dim)
        .rev()
        .map(|i| if bit(label, i) == 1 { '1' } else { '0' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basic() {
        assert_eq!(hamming(0b1010, 0b1010), 0);
        assert_eq!(hamming(0b1010, 0b0101), 4);
        assert_eq!(hamming(0, u64::MAX), 64);
        assert_eq!(hamming(0b100, 0b101), 1);
    }

    #[test]
    fn bit_get_set() {
        let l = 0b1010u64;
        assert_eq!(bit(l, 0), 0);
        assert_eq!(bit(l, 1), 1);
        assert_eq!(with_bit(l, 0, 1), 0b1011);
        assert_eq!(with_bit(l, 3, 0), 0b0010);
        assert_eq!(with_bit(l, 1, 1), l);
    }

    #[test]
    fn permutation_identity_and_reverse() {
        let l = 0b1100u64;
        let id: Vec<usize> = (0..4).collect();
        assert_eq!(permute_label_bits(l, &id, 4), l);
        let rev: Vec<usize> = (0..4).rev().collect();
        assert_eq!(permute_label_bits(l, &rev, 4), 0b0011);
    }

    #[test]
    fn permutation_roundtrip_via_inverse() {
        let perm = vec![2usize, 0, 3, 1];
        let inv = invert_permutation(&perm);
        for label in 0..16u64 {
            let p = permute_label_bits(label, &perm, 4);
            let back = permute_label_bits(p, &inv, 4);
            assert_eq!(back, label);
        }
    }

    #[test]
    fn permutation_preserves_hamming() {
        let perm = vec![3usize, 1, 4, 0, 2];
        for a in 0..32u64 {
            for b in 0..32u64 {
                let pa = permute_label_bits(a, &perm, 5);
                let pb = permute_label_bits(b, &perm, 5);
                assert_eq!(hamming(a, b), hamming(pa, pb));
            }
        }
    }

    #[test]
    #[should_panic(expected = "digit permutation has length")]
    fn wrong_length_permutation_is_rejected_in_all_profiles() {
        // A short permutation must never silently mis-permute digits.
        let _ = permute_label_bits(0b1010, &[1, 0], 4);
    }

    #[test]
    fn format_label_matches_paper_style() {
        assert_eq!(format_label(0b0110, 4), "0110");
        assert_eq!(format_label(1, 3), "001");
        assert_eq!(format_label(0, 2), "00");
    }
}
