//! # tie-topology
//!
//! Processor-graph topologies and partial-cube machinery for the TIMER
//! reproduction ("Topology-induced Enhancement of Mappings", ICPP 2018).
//!
//! The paper's central structural assumption is that the processor graph
//! `Gp` is a *partial cube*: an isometric subgraph of a hypercube. For such
//! graphs the vertices can be labelled with bitvectors so that graph distance
//! equals Hamming distance between labels (Definition 2.2). This crate
//! provides:
//!
//! * [`builders`] — the processor topologies used in the paper's evaluation
//!   (2D/3D grids, 2D/3D tori, hypercubes) plus trees and paths, wrapped in a
//!   [`Topology`] carrying name and shape metadata,
//! * [`partial_cube`] — bipartiteness test, Djoković relation, partial-cube
//!   recognition and the vertex labelling `lp(·)` of Section 3,
//! * [`label`] — bitvector label utilities (Hamming distance, digit
//!   permutations) shared with `tie-timer`,
//! * [`hierarchy`] — the permutation-induced hierarchies of partitions of
//!   Section 2 (Figure 2).
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod builders;
pub mod hierarchy;
pub mod label;
pub mod partial_cube;

pub use builders::{Topology, TopologyKind};
pub use hierarchy::Hierarchy;
pub use label::{hamming, permute_label_bits, Label};
pub use partial_cube::{
    is_bipartite, recognize_partial_cube, verify_labeling, PartialCubeLabeling, RecognitionError,
};
