//! Partial-cube recognition and vertex labelling (Section 3 of the paper).
//!
//! A graph `Gp` is a partial cube iff (i) it is bipartite and (ii) the
//! cut-sets of its convex cuts partition the edge set; the equivalence
//! classes are given by the Djoković relation θ. The recognizer below follows
//! the paper's simple `O(|Ep|^2)` procedure: repeatedly pick an unclassified
//! edge, compute its θ-class, and fail if classes overlap. Each class `j`
//! contributes one digit of the vertex labels: bit `j` of `lp(u)` says on
//! which side of the `j`-th convex cut PE `u` lies. Afterwards the labelling
//! is verified against the (BFS) distance matrix, so that a successful result
//! is guaranteed to satisfy `d_Gp(u, v) = hamming(lp(u), lp(v))`.

use std::collections::VecDeque;

use tie_graph::traversal::{all_pairs_distances, DistanceMatrix};
use tie_graph::{Graph, NodeId};

use crate::label::{hamming, Label};

/// Reasons why a graph cannot be labelled as a partial cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecognitionError {
    /// The graph contains an odd cycle.
    NotBipartite,
    /// The graph is disconnected; partial-cube labels require connectivity.
    Disconnected,
    /// Two Djoković classes overlap — the graph is bipartite but not a
    /// partial cube. The payload names the offending edge (by endpoints).
    OverlappingClasses(NodeId, NodeId),
    /// The computed labelling does not reproduce graph distances (defensive
    /// check; also triggers for graphs where θ is not transitive).
    DistanceMismatch(NodeId, NodeId),
    /// The isometric dimension exceeds 64 and does not fit in a `u64` label.
    DimensionTooLarge(usize),
    /// A labeling was verified against a graph with a different vertex
    /// count (labeling size, graph size).
    SizeMismatch(usize, usize),
}

impl std::fmt::Display for RecognitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecognitionError::NotBipartite => write!(f, "graph is not bipartite"),
            RecognitionError::Disconnected => write!(f, "graph is not connected"),
            RecognitionError::OverlappingClasses(u, v) => {
                write!(
                    f,
                    "Djoković classes overlap at edge ({u}, {v}); not a partial cube"
                )
            }
            RecognitionError::DistanceMismatch(u, v) => {
                write!(
                    f,
                    "labelling does not reproduce the distance between {u} and {v}"
                )
            }
            RecognitionError::DimensionTooLarge(d) => {
                write!(
                    f,
                    "isometric dimension {d} exceeds the supported maximum of 64"
                )
            }
            RecognitionError::SizeMismatch(labels, vertices) => {
                write!(
                    f,
                    "labeling covers {labels} PEs but the graph has {vertices} vertices"
                )
            }
        }
    }
}

impl std::error::Error for RecognitionError {}

/// The result of a successful partial-cube recognition: per-vertex bitvector
/// labels such that graph distance equals Hamming distance.
#[derive(Clone, Debug)]
pub struct PartialCubeLabeling {
    /// Label of every PE; only the low [`Self::dim`] bits are meaningful.
    pub labels: Vec<Label>,
    /// Isometric dimension (number of Djoković classes / convex cuts).
    pub dim: usize,
    /// For every edge (in `graph.edges()` order) the θ-class it belongs to.
    pub edge_class: Vec<u32>,
}

impl PartialCubeLabeling {
    /// Distance between PEs `u` and `v`, computed from the labels.
    #[inline]
    pub fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        hamming(self.labels[u as usize], self.labels[v as usize])
    }

    /// Label of PE `u`.
    #[inline]
    pub fn label(&self, u: NodeId) -> Label {
        self.labels[u as usize]
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.labels.len()
    }

    /// Verifies this labeling against the processor graph it claims to
    /// describe: the PE count must match and Hamming distance between labels
    /// must equal graph distance for every pair (the partial-cube property).
    ///
    /// `recognize_partial_cube` output always verifies against its input
    /// graph; this check is for labelings that crossed a trust boundary —
    /// deserialized, transformed, or paired with a graph they may not
    /// belong to.
    pub fn verify(&self, graph: &Graph) -> Result<(), RecognitionError> {
        if self.labels.len() != graph.num_vertices() {
            return Err(RecognitionError::SizeMismatch(
                self.labels.len(),
                graph.num_vertices(),
            ));
        }
        let dist = all_pairs_distances(graph);
        verify_labeling(&self.labels, &dist)
    }
}

/// Two-colours the graph via BFS; returns `None` if an odd cycle exists.
pub fn is_bipartite(graph: &Graph) -> bool {
    bipartite_sides(graph).is_some()
}

fn bipartite_sides(graph: &Graph) -> Option<Vec<u8>> {
    let n = graph.num_vertices();
    let mut colour = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for s in graph.vertices() {
        if colour[s as usize] != u8::MAX {
            continue;
        }
        colour[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                if colour[v as usize] == u8::MAX {
                    colour[v as usize] = 1 - colour[u as usize];
                    queue.push_back(v);
                } else if colour[v as usize] == colour[u as usize] {
                    return None;
                }
            }
        }
    }
    Some(colour)
}

/// Recognizes whether `graph` is a partial cube and, if so, returns the
/// vertex labelling `lp(·)` of Definition 2.2 / Section 3.
///
/// Runs in `O(|Vp| · |Ep| + |Ep|^2)` time, which for the paper's processor
/// graphs (≤ 512 PEs, ≤ ~1500 links) is instantaneous, and needs to be done
/// only once per parallel machine.
pub fn recognize_partial_cube(graph: &Graph) -> Result<PartialCubeLabeling, RecognitionError> {
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(PartialCubeLabeling {
            labels: Vec::new(),
            dim: 0,
            edge_class: Vec::new(),
        });
    }
    if !tie_graph::is_connected(graph) {
        return Err(RecognitionError::Disconnected);
    }
    if bipartite_sides(graph).is_none() {
        return Err(RecognitionError::NotBipartite);
    }

    let dist = all_pairs_distances(graph);
    let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(u, v, _)| (u, v)).collect();
    let m = edges.len();
    let mut edge_class = vec![u32::MAX; m];
    let mut dim = 0usize;
    // Representative edge (x_j, y_j) of every class, in class order.
    let mut representatives: Vec<(NodeId, NodeId)> = Vec::new();

    for start in 0..m {
        if edge_class[start] != u32::MAX {
            continue;
        }
        let (x, y) = edges[start];
        let class = dim as u32;
        // side[u] = true iff u is closer to x than to y (W_{x,y}). In a
        // bipartite graph adjacent x, y admit no ties.
        let side: Vec<bool> = (0..n as NodeId)
            .map(|u| dist.get(u, x) < dist.get(u, y))
            .collect();
        for (idx, &(a, b)) in edges.iter().enumerate() {
            if side[a as usize] != side[b as usize] {
                if edge_class[idx] != u32::MAX {
                    return Err(RecognitionError::OverlappingClasses(a, b));
                }
                edge_class[idx] = class;
            }
        }
        representatives.push((x, y));
        dim += 1;
        if dim > 64 {
            return Err(RecognitionError::DimensionTooLarge(dim));
        }
    }

    // Label construction, Eq. (5): bit j of lp(u) is 0 iff u lies on the x_j
    // side of the j-th convex cut.
    let mut labels = vec![0 as Label; n];
    for (j, &(x, y)) in representatives.iter().enumerate() {
        for u in 0..n as NodeId {
            if dist.get(u, x) >= dist.get(u, y) {
                labels[u as usize] |= 1u64 << j;
            }
        }
    }

    verify_labeling(&labels, &dist)?;
    Ok(PartialCubeLabeling {
        labels,
        dim,
        edge_class,
    })
}

/// Checks `hamming(lp(u), lp(v)) == d_Gp(u, v)` for all pairs.
///
/// Public so that callers holding a (possibly transformed) labelling can
/// re-validate it against the distance matrix — e.g. after permuting label
/// digits — instead of trusting the transformation blindly.
pub fn verify_labeling(labels: &[Label], dist: &DistanceMatrix) -> Result<(), RecognitionError> {
    let n = labels.len();
    for u in 0..n {
        for v in (u + 1)..n {
            let h = hamming(labels[u], labels[v]);
            if h != dist.get(u as NodeId, v as NodeId) {
                return Err(RecognitionError::DistanceMismatch(u as NodeId, v as NodeId));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::Topology;
    use tie_graph::generators;

    fn assert_is_partial_cube(graph: &Graph, expected_dim: Option<usize>) -> PartialCubeLabeling {
        let labeling = recognize_partial_cube(graph).expect("expected a partial cube");
        if let Some(d) = expected_dim {
            assert_eq!(labeling.dim, d);
        }
        labeling
    }

    #[test]
    fn bipartiteness() {
        assert!(is_bipartite(&generators::cycle_graph(6)));
        assert!(!is_bipartite(&generators::cycle_graph(5)));
        assert!(is_bipartite(&generators::grid2d(4, 4)));
        assert!(!is_bipartite(&generators::complete_graph(3)));
        assert!(is_bipartite(&generators::binary_tree(15)));
    }

    #[test]
    fn hypercubes_are_partial_cubes_of_their_dimension() {
        for d in 1..=6usize {
            let t = Topology::hypercube(d);
            assert_is_partial_cube(&t.graph, Some(d));
        }
    }

    #[test]
    fn grid_dimensions_match_expected_counts() {
        // The paper (Section 7.2) quotes 30, 21, 32, 24, 8 convex cuts for its
        // five topologies. For the grids and the hypercube these equal the
        // isometric dimension computed here (30, 21, 8). For the tori the
        // isometric dimension is half the paper's figure (16 and 12): each
        // Djoković class of an even cycle C_2k contains a pair of antipodal
        // edges, so C_2k contributes k digits, not 2k. The labelling still
        // satisfies distance = Hamming distance (verified below), which is
        // the property TIMER relies on; see EXPERIMENTS.md for discussion.
        assert_eq!(
            assert_is_partial_cube(&Topology::grid2d(4, 4).graph, None).dim,
            6
        );
        assert_eq!(
            assert_is_partial_cube(&Topology::grid2d(16, 16).graph, None).dim,
            30
        );
        assert_eq!(
            assert_is_partial_cube(&Topology::grid3d(8, 8, 8).graph, None).dim,
            21
        );
        assert_eq!(
            assert_is_partial_cube(&Topology::torus2d(16, 16).graph, None).dim,
            16
        );
        assert_eq!(
            assert_is_partial_cube(&Topology::torus3d(8, 8, 8).graph, None).dim,
            12
        );
        assert_eq!(
            assert_is_partial_cube(&Topology::hypercube(8).graph, None).dim,
            8
        );
    }

    #[test]
    fn even_cycles_are_partial_cubes_odd_are_not() {
        assert_is_partial_cube(&generators::cycle_graph(8), Some(4));
        assert_eq!(
            recognize_partial_cube(&generators::cycle_graph(7)).unwrap_err(),
            RecognitionError::NotBipartite
        );
    }

    #[test]
    fn trees_are_partial_cubes_with_dim_equal_edge_count() {
        let t = generators::binary_tree(15);
        let labeling = assert_is_partial_cube(&t, Some(14));
        assert_eq!(labeling.edge_class.len(), 14);
        // Every tree edge is its own class.
        let mut classes: Vec<u32> = labeling.edge_class.clone();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes.len(), 14);
    }

    #[test]
    fn odd_torus_rejected() {
        let t = Topology::torus2d(3, 4);
        assert_eq!(
            recognize_partial_cube(&t.graph).unwrap_err(),
            RecognitionError::NotBipartite
        );
    }

    #[test]
    fn complete_bipartite_k23_is_not_a_partial_cube() {
        // K_{2,3} is bipartite but not a partial cube.
        let mut b = tie_graph::GraphBuilder::new(5);
        for u in 0..2u32 {
            for v in 2..5u32 {
                b.add_edge(u, v, 1);
            }
        }
        let g = b.build();
        let err = recognize_partial_cube(&g).unwrap_err();
        assert!(matches!(
            err,
            RecognitionError::OverlappingClasses(_, _) | RecognitionError::DistanceMismatch(_, _)
        ));
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            recognize_partial_cube(&g).unwrap_err(),
            RecognitionError::Disconnected
        );
    }

    #[test]
    fn labels_reproduce_distances_on_grid() {
        let g = generators::grid2d(5, 4);
        let labeling = assert_is_partial_cube(&g, Some(4 + 3));
        let dist = all_pairs_distances(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(labeling.distance(u, v), dist.get(u, v));
            }
        }
    }

    #[test]
    fn figure3_style_small_example() {
        // The paper's Figure 3a: a 6-vertex partial cube with two convex cuts
        // is modelled here by a 3x2 grid (2 + 1 = 3 cuts) — check the edge
        // classes partition the edge set.
        let g = generators::grid2d(3, 2);
        let labeling = assert_is_partial_cube(&g, Some(3));
        assert_eq!(
            labeling
                .edge_class
                .iter()
                .filter(|&&c| c == u32::MAX)
                .count(),
            0
        );
    }

    #[test]
    fn edge_classes_partition_edges() {
        let t = Topology::torus2d(4, 6);
        let labeling = assert_is_partial_cube(&t.graph, Some(2 + 3));
        // Every edge belongs to exactly one class and classes are 0..dim.
        for &c in &labeling.edge_class {
            assert!((c as usize) < labeling.dim);
        }
    }

    #[test]
    fn verify_labeling_catches_corruption() {
        let g = generators::grid2d(4, 4);
        let labeling = recognize_partial_cube(&g).unwrap();
        let dist = all_pairs_distances(&g);
        assert!(verify_labeling(&labeling.labels, &dist).is_ok());
        // Flip one digit of one label: some pairwise distance must now break.
        let mut corrupted = labeling.labels.clone();
        corrupted[3] ^= 1;
        assert!(matches!(
            verify_labeling(&corrupted, &dist),
            Err(RecognitionError::DistanceMismatch(_, _))
        ));
    }

    #[test]
    fn empty_graph_is_trivially_labelled() {
        let g = Graph::from_edges(0, &[]);
        let labeling = recognize_partial_cube(&g).unwrap();
        assert_eq!(labeling.dim, 0);
        assert!(labeling.labels.is_empty());
    }

    #[test]
    fn single_vertex() {
        let g = Graph::from_edges(1, &[]);
        let labeling = recognize_partial_cube(&g).unwrap();
        assert_eq!(labeling.dim, 0);
        assert_eq!(labeling.labels, vec![0]);
    }
}
