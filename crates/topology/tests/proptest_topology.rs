//! Property-based tests for topology builders and partial-cube recognition.

use proptest::prelude::*;
use tie_graph::traversal::all_pairs_distances;
use tie_topology::label::{format_label, invert_permutation, permute_label_bits};
use tie_topology::{hamming, recognize_partial_cube, Hierarchy, Topology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every even-extent 2D torus is a partial cube whose labelling
    /// reproduces graph distances exactly.
    #[test]
    fn even_tori_are_partial_cubes(nx in 1..5usize, ny in 1..5usize) {
        let t = Topology::torus2d(2 * nx, 2 * ny);
        let labeling = recognize_partial_cube(&t.graph).unwrap();
        let dist = all_pairs_distances(&t.graph);
        for u in t.graph.vertices() {
            for v in t.graph.vertices() {
                prop_assert_eq!(labeling.distance(u, v), dist.get(u, v));
            }
        }
    }

    /// Every grid is a partial cube with dimension (nx-1) + (ny-1).
    #[test]
    fn grids_have_expected_dimension(nx in 2..7usize, ny in 2..7usize) {
        let t = Topology::grid2d(nx, ny);
        let labeling = recognize_partial_cube(&t.graph).unwrap();
        prop_assert_eq!(labeling.dim, (nx - 1) + (ny - 1));
    }

    /// 3D grids: dimension is the sum of (extent - 1) over the axes.
    #[test]
    fn grid3d_dimension(nx in 2..4usize, ny in 2..4usize, nz in 2..4usize) {
        let t = Topology::grid3d(nx, ny, nz);
        let labeling = recognize_partial_cube(&t.graph).unwrap();
        prop_assert_eq!(labeling.dim, (nx - 1) + (ny - 1) + (nz - 1));
    }

    /// Hypercube labels of dimension d are a bijection onto {0,1}^d.
    #[test]
    fn hypercube_labels_are_bijective(d in 1..7usize) {
        let t = Topology::hypercube(d);
        let labeling = recognize_partial_cube(&t.graph).unwrap();
        prop_assert_eq!(labeling.dim, d);
        let mut labels = labeling.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        prop_assert_eq!(labels.len(), 1 << d);
    }

    /// Label permutation preserves pairwise Hamming distances and is
    /// invertible.
    #[test]
    fn label_permutation_isometry(labels in proptest::collection::vec(0u64..(1 << 10), 2..40), seed in 0..1_000u64) {
        let dim = 10usize;
        let perm = tie_graph::generators::random_permutation(dim, seed)
            .into_iter().map(|x| x as usize).collect::<Vec<_>>();
        let inv = invert_permutation(&perm);
        for i in 0..labels.len() {
            let p = permute_label_bits(labels[i], &perm, dim);
            prop_assert_eq!(permute_label_bits(p, &inv, dim), labels[i]);
            for j in (i + 1)..labels.len() {
                let q = permute_label_bits(labels[j], &perm, dim);
                prop_assert_eq!(hamming(p, q), hamming(labels[i], labels[j]));
            }
        }
    }

    /// Hierarchies built from random digit permutations are proper
    /// hierarchies with monotone block counts, on a mid-sized grid.
    #[test]
    fn random_hierarchies_are_proper(seed in 0..200u64) {
        let t = Topology::grid2d(4, 4);
        let labeling = recognize_partial_cube(&t.graph).unwrap();
        let perm = tie_graph::generators::random_permutation(labeling.dim, seed)
            .into_iter().map(|x| x as usize).collect::<Vec<_>>();
        let h = Hierarchy::new(labeling.labels, labeling.dim, perm);
        prop_assert!(h.is_proper_hierarchy());
        prop_assert_eq!(h.num_blocks_at_level(0), 1);
        prop_assert_eq!(h.num_blocks_at_level(h.num_levels()), 16);
    }

    /// format_label produces dim characters of 0/1 and round-trips through
    /// binary parsing.
    #[test]
    fn format_label_roundtrip(label in 0u64..(1 << 12)) {
        let s = format_label(label, 12);
        prop_assert_eq!(s.len(), 12);
        let parsed = u64::from_str_radix(&s, 2).unwrap();
        prop_assert_eq!(parsed, label);
    }
}

#[test]
fn paper_topologies_are_all_partial_cubes() {
    for t in Topology::paper_topologies() {
        let labeling = recognize_partial_cube(&t.graph)
            .unwrap_or_else(|e| panic!("{} should be a partial cube: {e}", t.name));
        assert_eq!(labeling.num_pes(), t.num_pes());
    }
}

#[test]
fn paper_convex_cut_counts() {
    // Section 7.2 quotes "30, 21, 32, 24 and 8 convex cuts". Our recognizer
    // returns the isometric dimension, which matches for grids and the
    // hypercube; for tori it is half the quoted figure because an even cycle
    // C_2k has isometric dimension k (each Djoković class pairs two antipodal
    // edges). The Hamming-distance property is verified either way.
    let expected = [30usize, 21, 16, 12, 8];
    for (t, &dim) in Topology::paper_topologies().iter().zip(expected.iter()) {
        let labeling = recognize_partial_cube(&t.graph).unwrap();
        assert_eq!(labeling.dim, dim, "{}", t.name);
    }
}
