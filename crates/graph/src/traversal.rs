//! Breadth-first traversal utilities: single-source distances, all-pairs
//! distances, connected components.

use std::collections::VecDeque;

use crate::csr::{Graph, NodeId};
use crate::UNREACHABLE;

/// Unweighted BFS distances from `source` to every vertex. Unreachable
/// vertices get [`UNREACHABLE`].
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    if n == 0 {
        return dist;
    }
    let mut queue = VecDeque::with_capacity(n);
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in graph.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All-pairs unweighted distances as a dense `n x n` matrix in row-major
/// order. Intended for processor graphs (a few hundred vertices), not for
/// application graphs.
pub fn all_pairs_distances(graph: &Graph) -> DistanceMatrix {
    let n = graph.num_vertices();
    let mut data = Vec::with_capacity(n * n);
    for s in graph.vertices() {
        data.extend_from_slice(&bfs_distances(graph, s));
    }
    DistanceMatrix { n, data }
}

/// Dense distance matrix produced by [`all_pairs_distances`].
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<u32>,
}

impl DistanceMatrix {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Distance between `u` and `v` in hops.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> u32 {
        self.data[u as usize * self.n + v as usize]
    }

    /// Largest finite distance (graph diameter if connected).
    pub fn diameter(&self) -> u32 {
        self.data
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

/// Assigns a component id to every vertex and returns `(components, count)`.
pub fn connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for s in graph.vertices() {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// True if the graph is connected (the empty graph counts as connected).
pub fn is_connected(graph: &Graph) -> bool {
    graph.num_vertices() == 0 || connected_components(graph).1 == 1
}

/// Extracts the largest connected component as a new graph together with the
/// mapping `old id -> new id` (vertices outside the component map to `None`).
pub fn largest_connected_component(graph: &Graph) -> (Graph, Vec<Option<NodeId>>) {
    let n = graph.num_vertices();
    if n == 0 {
        return (graph.clone(), Vec::new());
    }
    let (comp, count) = connected_components(graph);
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let mut remap = vec![None; n];
    let mut next = 0 as NodeId;
    for v in 0..n {
        if comp[v] == largest {
            remap[v] = Some(next);
            next += 1;
        }
    }
    let mut builder = crate::GraphBuilder::new(next as usize);
    for u in graph.vertices() {
        if let Some(nu) = remap[u as usize] {
            builder.set_vertex_weight(nu, graph.vertex_weight(u));
            for (v, w) in graph.edges_of(u) {
                if u < v {
                    if let Some(nv) = remap[v as usize] {
                        builder.add_edge(nu, nv, w);
                    }
                }
            }
        }
    }
    (builder.build(), remap)
}

/// Returns a BFS ordering of the vertices starting from `source`; vertices in
/// other components are appended in id order. Useful for locality-friendly
/// initial numberings.
pub fn bfs_order(graph: &Graph, source: NodeId) -> Vec<NodeId> {
    let n = graph.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    let mut start = source;
    loop {
        if !seen[start as usize] {
            seen[start as usize] = true;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &v in graph.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        match seen.iter().position(|&s| !s) {
            Some(next) => start = next as NodeId,
            None => break,
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn all_pairs_matches_single_source() {
        let g = generators::cycle_graph(6);
        let m = all_pairs_distances(&g);
        for s in g.vertices() {
            let d = bfs_distances(&g, s);
            for t in g.vertices() {
                assert_eq!(m.get(s, t), d[t as usize]);
            }
        }
        assert_eq!(m.diameter(), 3);
    }

    #[test]
    fn components_counts() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_cycle() {
        let g = generators::cycle_graph(8);
        assert!(is_connected(&g));
    }

    #[test]
    fn largest_component_extraction() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (5, 6)]);
        let (lcc, remap) = largest_connected_component(&g);
        assert_eq!(lcc.num_vertices(), 3);
        assert_eq!(lcc.num_edges(), 3);
        assert!(remap[0].is_some() && remap[3].is_none() && remap[5].is_none());
        assert!(is_connected(&lcc));
    }

    #[test]
    fn bfs_order_visits_all_vertices() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let order = bfs_order(&g, 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_graph_traversal() {
        let g = Graph::from_edges(0, &[]);
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).1, 0);
    }
}
