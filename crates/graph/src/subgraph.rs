//! Induced subgraph extraction.

use crate::csr::{Graph, NodeId};
use crate::GraphBuilder;

/// Result of extracting an induced subgraph.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The induced subgraph; vertex `i` corresponds to `to_parent[i]` in the
    /// original graph.
    pub graph: Graph,
    /// Mapping from subgraph vertex id to original vertex id.
    pub to_parent: Vec<NodeId>,
}

/// Extracts the subgraph induced by `vertices` (which may be in any order and
/// may contain duplicates; duplicates are ignored). Vertex and edge weights
/// are preserved.
pub fn induced_subgraph(graph: &Graph, vertices: &[NodeId]) -> Subgraph {
    let n = graph.num_vertices();
    let mut selected = vec![false; n];
    for &v in vertices {
        selected[v as usize] = true;
    }
    let mut to_parent: Vec<NodeId> = Vec::new();
    let mut to_child = vec![NodeId::MAX; n];
    for v in 0..n as NodeId {
        if selected[v as usize] {
            to_child[v as usize] = to_parent.len() as NodeId;
            to_parent.push(v);
        }
    }
    let mut builder = GraphBuilder::new(to_parent.len());
    for (child, &parent) in to_parent.iter().enumerate() {
        builder.set_vertex_weight(child as NodeId, graph.vertex_weight(parent));
        for (nb, w) in graph.edges_of(parent) {
            if parent < nb && selected[nb as usize] {
                builder.add_edge(child as NodeId, to_child[nb as usize], w);
            }
        }
    }
    Subgraph {
        graph: builder.build(),
        to_parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn subgraph_of_grid_quadrant() {
        let g = generators::grid2d(4, 4);
        // Top-left 2x2 quadrant: vertices with x < 2 and y < 2.
        let verts: Vec<NodeId> = vec![0, 1, 4, 5];
        let sub = induced_subgraph(&g, &verts);
        assert_eq!(sub.graph.num_vertices(), 4);
        assert_eq!(sub.graph.num_edges(), 4);
        assert_eq!(sub.to_parent, verts);
    }

    #[test]
    fn subgraph_preserves_weights() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 7);
        b.add_edge(2, 3, 9);
        b.set_vertex_weight(1, 3);
        let g = b.build();
        let sub = induced_subgraph(&g, &[1, 2]);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.graph.edge_weight(0, 1), Some(7));
        assert_eq!(sub.graph.vertex_weight(0), 3);
    }

    #[test]
    fn duplicates_and_empty() {
        let g = generators::cycle_graph(5);
        let sub = induced_subgraph(&g, &[2, 2, 3]);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
        let empty = induced_subgraph(&g, &[]);
        assert_eq!(empty.graph.num_vertices(), 0);
    }

    #[test]
    fn full_subgraph_is_isomorphic_copy() {
        let g = generators::barabasi_albert(50, 2, 3);
        let all: Vec<NodeId> = g.vertices().collect();
        let sub = induced_subgraph(&g, &all);
        assert_eq!(sub.graph, g);
    }
}
