//! Gain bucket priority queue, the classical data structure behind
//! Fiduccia–Mattheyses refinement.
//!
//! The queue stores items (vertex ids) keyed by an integer gain in the range
//! `[-max_gain, +max_gain]`. All operations used in the FM inner loop —
//! insert, remove, change key, extract max — run in `O(1)` amortized time
//! (extract-max degrades only when the maximum pointer has to slide down
//! after many removals, which amortizes against the insertions that raised
//! it).

use crate::Gain;

/// Bucket priority queue keyed by bounded integer gains.
#[derive(Clone, Debug)]
pub struct BucketQueue {
    /// Buckets indexed by `gain + max_gain`; each bucket is a vec of items.
    buckets: Vec<Vec<u32>>,
    /// Position of each item inside its bucket (`u32::MAX` when absent).
    pos_in_bucket: Vec<u32>,
    /// Current bucket index of each item (`u32::MAX` when absent).
    bucket_of: Vec<u32>,
    /// Highest non-empty bucket index + 1 (0 if the queue is empty).
    max_bucket_hint: usize,
    max_gain: Gain,
    len: usize,
}

impl BucketQueue {
    /// Creates a queue able to hold items `0..capacity` with gains bounded by
    /// `max_gain` in absolute value.
    pub fn new(capacity: usize, max_gain: Gain) -> Self {
        let max_gain = max_gain.max(0);
        let num_buckets = (2 * max_gain + 1) as usize;
        BucketQueue {
            buckets: vec![Vec::new(); num_buckets],
            pos_in_bucket: vec![u32::MAX; capacity],
            bucket_of: vec![u32::MAX; capacity],
            max_bucket_hint: 0,
            max_gain,
            len: 0,
        }
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no item is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `item` is currently in the queue.
    pub fn contains(&self, item: u32) -> bool {
        self.bucket_of[item as usize] != u32::MAX
    }

    /// Gain bound the queue was created with.
    pub fn max_gain(&self) -> Gain {
        self.max_gain
    }

    #[inline]
    fn bucket_index(&self, gain: Gain) -> usize {
        let clamped = gain.clamp(-self.max_gain, self.max_gain);
        (clamped + self.max_gain) as usize
    }

    #[inline]
    fn gain_of_bucket(&self, bucket: usize) -> Gain {
        bucket as Gain - self.max_gain
    }

    /// Inserts `item` with the given gain.
    ///
    /// # Panics
    /// Panics if `item` is already present.
    pub fn insert(&mut self, item: u32, gain: Gain) {
        assert!(!self.contains(item), "item {item} already in bucket queue");
        let b = self.bucket_index(gain);
        self.pos_in_bucket[item as usize] = self.buckets[b].len() as u32;
        self.bucket_of[item as usize] = b as u32;
        self.buckets[b].push(item);
        self.max_bucket_hint = self.max_bucket_hint.max(b + 1);
        self.len += 1;
    }

    /// Removes `item` if present; returns true if it was present.
    pub fn remove(&mut self, item: u32) -> bool {
        let b = self.bucket_of[item as usize];
        if b == u32::MAX {
            return false;
        }
        let b = b as usize;
        let pos = self.pos_in_bucket[item as usize] as usize;
        let last = self.buckets[b].len() - 1;
        self.buckets[b].swap(pos, last);
        let moved = self.buckets[b][pos];
        self.pos_in_bucket[moved as usize] = pos as u32;
        self.buckets[b].pop();
        self.bucket_of[item as usize] = u32::MAX;
        self.pos_in_bucket[item as usize] = u32::MAX;
        self.len -= 1;
        true
    }

    /// Updates the gain of `item`.
    ///
    /// # Panics
    /// Panics if `item` is not present.
    pub fn update_gain(&mut self, item: u32, new_gain: Gain) {
        assert!(self.contains(item), "item {item} not in bucket queue");
        self.remove(item);
        self.insert(item, new_gain);
    }

    /// Returns the item with maximum gain together with its gain, without
    /// removing it.
    pub fn peek_max(&mut self) -> Option<(u32, Gain)> {
        while self.max_bucket_hint > 0 && self.buckets[self.max_bucket_hint - 1].is_empty() {
            self.max_bucket_hint -= 1;
        }
        if self.max_bucket_hint == 0 {
            return None;
        }
        let b = self.max_bucket_hint - 1;
        // The hint loop above guarantees bucket `b` is non-empty.
        let item = *self.buckets[b].last()?;
        Some((item, self.gain_of_bucket(b)))
    }

    /// Removes and returns the item with maximum gain.
    pub fn pop_max(&mut self) -> Option<(u32, Gain)> {
        let (item, gain) = self.peek_max()?;
        self.remove(item);
        Some((item, gain))
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            for &item in b.iter() {
                self.bucket_of[item as usize] = u32::MAX;
                self.pos_in_bucket[item as usize] = u32::MAX;
            }
            b.clear();
        }
        self.max_bucket_hint = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_pop_in_gain_order() {
        let mut q = BucketQueue::new(10, 5);
        q.insert(0, -3);
        q.insert(1, 5);
        q.insert(2, 0);
        q.insert(3, 2);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_max(), Some((1, 5)));
        assert_eq!(q.pop_max(), Some((3, 2)));
        assert_eq!(q.pop_max(), Some((2, 0)));
        assert_eq!(q.pop_max(), Some((0, -3)));
        assert_eq!(q.pop_max(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn gains_are_clamped_to_bounds() {
        let mut q = BucketQueue::new(4, 3);
        q.insert(0, 100);
        q.insert(1, -100);
        assert_eq!(q.pop_max(), Some((0, 3)));
        assert_eq!(q.pop_max(), Some((1, -3)));
    }

    #[test]
    fn update_gain_moves_item() {
        let mut q = BucketQueue::new(4, 10);
        q.insert(0, 1);
        q.insert(1, 2);
        q.update_gain(0, 9);
        assert_eq!(q.peek_max(), Some((0, 9)));
        q.update_gain(0, -9);
        assert_eq!(q.peek_max(), Some((1, 2)));
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut q = BucketQueue::new(3, 2);
        assert!(!q.remove(1));
        q.insert(1, 0);
        assert!(q.remove(1));
        assert!(!q.remove(1));
        assert!(q.is_empty());
    }

    #[test]
    fn contains_tracks_membership() {
        let mut q = BucketQueue::new(3, 2);
        assert!(!q.contains(2));
        q.insert(2, 1);
        assert!(q.contains(2));
        q.pop_max();
        assert!(!q.contains(2));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = BucketQueue::new(5, 4);
        for i in 0..5 {
            q.insert(i, i as Gain - 2);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop_max(), None);
        // Items can be reinserted after clear.
        q.insert(3, 1);
        assert_eq!(q.pop_max(), Some((3, 1)));
    }

    #[test]
    fn ties_resolved_lifo_within_bucket() {
        let mut q = BucketQueue::new(4, 2);
        q.insert(0, 1);
        q.insert(1, 1);
        // Both valid; we only require that both come out with gain 1.
        let a = q.pop_max().unwrap();
        let b = q.pop_max().unwrap();
        assert_eq!(a.1, 1);
        assert_eq!(b.1, 1);
        assert_ne!(a.0, b.0);
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut q = BucketQueue::new(2, 1);
        q.insert(0, 0);
        q.insert(0, 1);
    }
}
