//! Compressed sparse row (CSR) representation of undirected, weighted graphs.
//!
//! The representation follows the usual METIS/KaHIP convention: for every
//! undirected edge `{u, v}` the adjacency arrays store both the arc `u -> v`
//! and the arc `v -> u`, each carrying the same edge weight. Vertex weights
//! default to 1 and become relevant once graphs are coarsened.

use std::fmt;

/// Vertex identifier. 32 bits are plenty for the graph sizes the paper uses
/// (up to a few hundred thousand vertices) and keep the CSR arrays compact.
pub type NodeId = u32;

/// Unsigned weight type for vertex and edge weights.
pub type Weight = u64;

/// An undirected, weighted graph in CSR form.
///
/// Construction goes through [`crate::GraphBuilder`] (incremental, with
/// deduplication) or [`Graph::from_adjacency`] (when the adjacency structure
/// is already known to be consistent).
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// Offsets into `adjncy`/`adjwgt`; length `n + 1`.
    xadj: Vec<usize>,
    /// Concatenated adjacency lists; length `2 * m`.
    adjncy: Vec<NodeId>,
    /// Edge weight of each arc, parallel to `adjncy`.
    adjwgt: Vec<Weight>,
    /// Vertex weights; length `n`.
    vwgt: Vec<Weight>,
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent (offsets not
    /// monotone, lengths mismatching, neighbour ids out of range).
    pub fn from_adjacency(
        xadj: Vec<usize>,
        adjncy: Vec<NodeId>,
        adjwgt: Vec<Weight>,
        vwgt: Vec<Weight>,
    ) -> Self {
        assert!(!xadj.is_empty(), "xadj must have length n + 1 >= 1");
        let n = xadj.len() - 1;
        assert_eq!(vwgt.len(), n, "vertex weight array length mismatch");
        assert_eq!(
            adjncy.len(),
            adjwgt.len(),
            "edge weight array length mismatch"
        );
        assert_eq!(xadj[n], adjncy.len(), "last offset must equal arc count");
        for w in xadj.windows(2) {
            assert!(w[0] <= w[1], "xadj offsets must be non-decreasing");
        }
        for &v in &adjncy {
            assert!((v as usize) < n, "neighbour id {v} out of range (n = {n})");
        }
        Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Builds an unweighted graph (all vertex and edge weights 1) from a list
    /// of undirected edges over `n` vertices. Self-loops are dropped and
    /// parallel edges merged (weights summed).
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = crate::GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v, 1);
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Number of stored arcs (twice the number of undirected edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.adjncy.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: NodeId) -> Weight {
        self.vwgt[v as usize]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[Weight] {
        &self.vwgt
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> Weight {
        self.vwgt.iter().sum()
    }

    /// Sum of all (undirected) edge weights.
    pub fn total_edge_weight(&self) -> Weight {
        self.adjwgt.iter().sum::<Weight>() / 2
    }

    /// Sum of the weights of all arcs leaving `v` (weighted degree).
    pub fn weighted_degree(&self, v: NodeId) -> Weight {
        let v = v as usize;
        self.adjwgt[self.xadj[v]..self.xadj[v + 1]].iter().sum()
    }

    /// Iterator over vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_vertices() as NodeId
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Edge weights of the arcs leaving `v`, parallel to [`Graph::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: NodeId) -> &[Weight] {
        let v = v as usize;
        &self.adjwgt[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Iterator over `(neighbour, edge_weight)` pairs of `v`.
    #[inline]
    pub fn edges_of(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.neighbor_weights(v).iter().copied())
    }

    /// Iterator over every undirected edge `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.vertices().flat_map(move |u| {
            self.edges_of(u)
                .filter_map(move |(v, w)| if u < v { Some((u, v, w)) } else { None })
        })
    }

    /// Returns the weight of edge `{u, v}` if it exists.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.edges_of(u).find(|&(x, _)| x == v).map(|(_, w)| w)
    }

    /// True if `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).contains(&v)
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Replaces all vertex weights.
    ///
    /// # Panics
    /// Panics if `vwgt.len() != n`.
    pub fn set_vertex_weights(&mut self, vwgt: Vec<Weight>) {
        assert_eq!(vwgt.len(), self.num_vertices());
        self.vwgt = vwgt;
    }

    /// Checks structural symmetry: every arc `u -> v` has a reverse arc
    /// `v -> u` with the same weight. Intended for tests and debug assertions.
    pub fn is_symmetric(&self) -> bool {
        for u in self.vertices() {
            for (v, w) in self.edges_of(u) {
                if self.edges_of(v).find(|&(x, _)| x == u).map(|(_, w2)| w2) != Some(w) {
                    return false;
                }
            }
        }
        true
    }

    /// Raw CSR offset array (length `n + 1`). Exposed for performance-critical
    /// consumers (partitioner inner loops) that want to avoid bounds churn.
    #[inline]
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Raw adjacency array (length `2m`).
    #[inline]
    pub fn adjncy(&self) -> &[NodeId] {
        &self.adjncy
    }

    /// Raw arc weight array (length `2m`).
    #[inline]
    pub fn adjwgt(&self) -> &[Weight] {
        &self.adjwgt
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n = {}, m = {}, total_vwgt = {}, total_ewgt = {})",
            self.num_vertices(),
            self.num_edges(),
            self.total_vertex_weight(),
            self.total_edge_weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.total_vertex_weight(), 3);
        assert_eq!(g.total_edge_weight(), 3);
        assert!(g.is_symmetric());
    }

    #[test]
    fn neighbors_and_weights() {
        let g = triangle();
        let mut nb: Vec<_> = g.neighbors(1).to_vec();
        nb.sort_unstable();
        assert_eq!(nb, vec![0, 2]);
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(1, 0), Some(1));
        assert_eq!(g.edge_weight(0, 0), None);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(3 % 3, 0) || g.has_edge(0, 1)); // sanity, no panic
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for &(u, v, w) in &edges {
            assert!(u < v);
            assert_eq!(w, 1);
        }
    }

    #[test]
    fn parallel_edges_are_merged() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn weighted_degree_sums_arc_weights() {
        let mut b = crate::GraphBuilder::new(3);
        b.add_edge(0, 1, 4);
        b.add_edge(0, 2, 6);
        let g = b.build();
        assert_eq!(g.weighted_degree(0), 10);
        assert_eq!(g.weighted_degree(1), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn set_vertex_weights_roundtrip() {
        let mut g = triangle();
        g.set_vertex_weights(vec![5, 6, 7]);
        assert_eq!(g.vertex_weight(2), 7);
        assert_eq!(g.total_vertex_weight(), 18);
    }

    #[test]
    #[should_panic]
    fn from_adjacency_rejects_bad_offsets() {
        let _ = Graph::from_adjacency(vec![0, 2, 1], vec![1, 0], vec![1, 1], vec![1, 1]);
    }

    #[test]
    #[should_panic]
    fn from_adjacency_rejects_out_of_range_neighbor() {
        let _ = Graph::from_adjacency(vec![0, 1, 2], vec![5, 0], vec![1, 1], vec![1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_vertex_weight(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.num_edges(), 1);
    }
}
