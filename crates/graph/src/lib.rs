//! # tie-graph
//!
//! Graph substrate for the TIMER reproduction ("Topology-induced Enhancement
//! of Mappings", ICPP 2018).
//!
//! The crate provides the data structures and algorithms every other crate in
//! the workspace builds on:
//!
//! * [`Graph`] — an undirected, weighted graph in compressed sparse row (CSR)
//!   form with vertex and edge weights,
//! * [`GraphBuilder`] — an incremental builder that deduplicates parallel
//!   edges and accumulates their weights,
//! * [`generators`] — seeded synthetic-network generators (Erdős–Rényi,
//!   Barabási–Albert, Watts–Strogatz, R-MAT, grids, trees, …) used to stand in
//!   for the paper's complex-network benchmark set,
//! * [`traversal`] — BFS distances, connected components,
//! * [`quotient`] — block contraction (communication-graph construction),
//! * [`contract`] — the allocation-free, sort-based CSR contraction kernel
//!   used by the coarsening loops (`contract_into` + `ContractScratch`),
//! * [`bucket_queue`] — the gain bucket priority queue used by the
//!   Fiduccia–Mattheyses refinement in `tie-partition`,
//! * [`union_find`] — a disjoint-set forest,
//! * [`io`] — METIS-format and edge-list readers/writers.
//!
//! All vertex identifiers are `u32` ([`NodeId`]); all weights are `u64`
//! ([`Weight`]). Gains (signed weight differences) are `i64`.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod bucket_queue;
pub mod builder;
pub mod contract;
pub mod csr;
pub mod generators;
pub mod io;
pub mod quotient;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod union_find;

pub use builder::GraphBuilder;
pub use contract::{contract_into, ContractScratch};
pub use csr::{Graph, NodeId, Weight};
pub use quotient::{quotient_graph, QuotientGraph};
pub use subgraph::{induced_subgraph, Subgraph};
pub use traversal::{bfs_distances, connected_components, is_connected};
pub use union_find::UnionFind;

/// Signed weight type used for gains and deltas of objective functions.
pub type Gain = i64;

/// Infinity marker for unreachable BFS distances.
pub const UNREACHABLE: u32 = u32::MAX;
