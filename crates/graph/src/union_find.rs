//! Disjoint-set forest (union-find) with path compression and union by size.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure contains no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets containing `x` and `y`. Returns true if they were
    /// previously distinct.
    pub fn union(&mut self, x: u32, y: u32) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (big, small) = if self.size[rx as usize] >= self.size[ry as usize] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.num_sets -= 1;
        true
    }

    /// True if `x` and `y` are in the same set.
    pub fn same_set(&mut self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.same_set(0, 1));
        assert_eq!(uf.set_size(2), 1);
    }

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 3));
        assert_eq!(uf.set_size(1), 3);
    }

    #[test]
    fn chain_union_all() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert_eq!(uf.set_size(0), n);
        assert!(uf.same_set(0, n as u32 - 1));
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
