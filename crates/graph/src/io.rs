//! Graph I/O: METIS graph format and plain edge lists.
//!
//! The METIS format is the de-facto exchange format of the partitioning
//! community (KaHIP, METIS, Scotch converters all read it), so supporting it
//! makes the reproduction usable with the paper's original inputs when those
//! are available locally.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use tie_fault::FaultHandle;

use crate::csr::{Graph, NodeId, Weight};
use crate::GraphBuilder;

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file-system error.
    Io(io::Error),
    /// The file content violates the expected format.
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serializes a graph in METIS format.
///
/// The header line is `n m fmt` where `fmt` is `011` (vertex and edge
/// weights) — we always emit both weight kinds for simplicity. Vertex ids in
/// the body are 1-based per the format specification.
pub fn to_metis_string(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {} 011", graph.num_vertices(), graph.num_edges());
    for v in graph.vertices() {
        let mut line = String::new();
        let _ = write!(line, "{}", graph.vertex_weight(v));
        for (u, w) in graph.edges_of(v) {
            let _ = write!(line, " {} {}", u + 1, w);
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Writes a graph to `path` in METIS format.
pub fn write_metis<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), IoError> {
    fs::write(path, to_metis_string(graph))?;
    Ok(())
}

/// Parses a graph in METIS format from a string. Supports the `fmt` codes
/// `0`/`00`/`000` (no weights), `1`/`001` (edge weights), `10`/`010` (vertex
/// weights) and `11`/`011` (both). Comment lines start with `%`.
pub fn from_metis_str(content: &str) -> Result<Graph, IoError> {
    // Keep 1-based line numbers so parse errors can name the offending line;
    // '%' comment lines (possibly indented) are skipped everywhere.
    let mut lines = content
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim_start().starts_with('%'));
    let (_, header) = lines
        .next()
        .ok_or_else(|| IoError::Parse("empty METIS file".to_string()))?;
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 2 {
        return Err(IoError::Parse(format!("bad header line: {header:?}")));
    }
    let n: usize = head[0]
        .parse()
        .map_err(|_| IoError::Parse(format!("bad vertex count: {}", head[0])))?;
    let m: usize = head[1]
        .parse()
        .map_err(|_| IoError::Parse(format!("bad edge count: {}", head[1])))?;
    // OOM defense against overflowing header counts: a METIS file with `n`
    // vertices has at least `n` (possibly empty) body lines and an edge
    // needs at least two body bytes, so counts far beyond the file size are
    // certainly lies — reject them *before* sizing any allocation by them.
    if n > content.len() + 1 {
        return Err(IoError::Parse(format!(
            "header claims {n} vertices but the file is only {} bytes — \
             refusing to allocate for an impossible count",
            content.len()
        )));
    }
    if m > content.len() {
        return Err(IoError::Parse(format!(
            "header claims {m} edges but the file is only {} bytes — \
             refusing to allocate for an impossible count",
            content.len()
        )));
    }
    let fmt = if head.len() >= 3 { head[2] } else { "0" };
    let has_vwgt = fmt.len() >= 2 && fmt.as_bytes()[fmt.len() - 2] == b'1';
    let has_ewgt = !fmt.is_empty() && fmt.as_bytes()[fmt.len() - 1] == b'1';

    let mut builder = GraphBuilder::new(n);
    let mut vertex = 0usize;
    for (lineno, line) in lines {
        if vertex >= n {
            // Tolerate trailing whitespace-only lines after the last vertex.
            if line.trim().is_empty() {
                continue;
            }
            return Err(IoError::Parse(format!(
                "line {lineno}: unexpected content after all {n} vertex lines: {line:?}"
            )));
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let mut idx = 0usize;
        if has_vwgt {
            if tokens.is_empty() {
                return Err(IoError::Parse(format!(
                    "line {lineno}: vertex {} missing weight",
                    vertex + 1
                )));
            }
            let w: Weight = tokens[0].parse().map_err(|_| {
                IoError::Parse(format!("line {lineno}: bad vertex weight: {}", tokens[0]))
            })?;
            builder.set_vertex_weight(vertex as NodeId, w);
            idx = 1;
        }
        while idx < tokens.len() {
            let nb: usize = tokens[idx].parse().map_err(|_| {
                IoError::Parse(format!("line {lineno}: bad neighbour id: {}", tokens[idx]))
            })?;
            if nb == 0 {
                return Err(IoError::Parse(format!(
                    "line {lineno}: neighbour id 0 — METIS vertex ids are 1-based: {line:?}"
                )));
            }
            if nb > n {
                return Err(IoError::Parse(format!(
                    "line {lineno}: neighbour id {nb} out of range 1..={n}: {line:?}"
                )));
            }
            if nb == vertex + 1 {
                return Err(IoError::Parse(format!(
                    "line {lineno}: self-loop on vertex {nb}: {line:?}"
                )));
            }
            let w: Weight = if has_ewgt {
                idx += 1;
                if idx >= tokens.len() {
                    return Err(IoError::Parse(format!(
                        "line {lineno}: edge weight missing: {line:?}"
                    )));
                }
                tokens[idx].parse().map_err(|_| {
                    IoError::Parse(format!("line {lineno}: bad edge weight: {}", tokens[idx]))
                })?
            } else {
                1
            };
            let u = vertex as NodeId;
            let v = (nb - 1) as NodeId;
            // METIS lists each edge in both adjacency lines; add once.
            if u < v {
                builder.add_edge(u, v, w);
            }
            idx += 1;
        }
        vertex += 1;
    }
    if vertex != n {
        return Err(IoError::Parse(format!(
            "expected {n} vertex lines, found {vertex}"
        )));
    }
    let g = builder.build();
    if g.num_edges() != m {
        return Err(IoError::Parse(format!(
            "header promises {m} edges but adjacency lists define {}",
            g.num_edges()
        )));
    }
    Ok(g)
}

/// Parses a graph in METIS format from raw bytes, turning invalid UTF-8
/// into a typed [`IoError::Parse`] that names the first offending byte
/// offset (instead of the untyped `io::Error` a lossy `read_to_string`
/// would produce).
pub fn from_metis_bytes(bytes: &[u8]) -> Result<Graph, IoError> {
    let content = std::str::from_utf8(bytes).map_err(|e| {
        IoError::Parse(format!(
            "file is not valid UTF-8 (first invalid byte at offset {})",
            e.valid_up_to()
        ))
    })?;
    from_metis_str(content)
}

/// Reads a graph in METIS format from `path`.
pub fn read_metis<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    read_metis_with(path, &FaultHandle::off())
}

/// [`read_metis`] with a fault-injection handle: an armed IO fault surfaces
/// as `IoError::Io` exactly where a real file-system failure would. The
/// plain reader delegates here with a disabled handle.
pub fn read_metis_with<P: AsRef<Path>>(path: P, faults: &FaultHandle) -> Result<Graph, IoError> {
    if let Some(e) = faults.io_fault("read_metis") {
        return Err(IoError::Io(e));
    }
    from_metis_bytes(&fs::read(path)?)
}

/// Serializes a graph as a weighted edge list: one `u v w` triple per line,
/// 0-based vertex ids, preceded by a `# n m` header comment.
pub fn to_edge_list_string(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} {}", graph.num_vertices(), graph.num_edges());
    for (u, v, w) in graph.edges() {
        let _ = writeln!(out, "{u} {v} {w}");
    }
    out
}

/// Parses a weighted edge list produced by [`to_edge_list_string`]. Lines
/// starting with `#` are comments except the first, which may carry the
/// vertex count; without it the vertex count is inferred from the ids.
pub fn from_edge_list_str(content: &str) -> Result<Graph, IoError> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(NodeId, NodeId, Weight)> = Vec::new();
    let mut max_id = 0 as NodeId;
    for line in content.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('#') {
            let tokens: Vec<&str> = trimmed.trim_start_matches('#').split_whitespace().collect();
            if n.is_none() && !tokens.is_empty() {
                if let Ok(parsed) = tokens[0].parse::<usize>() {
                    n = Some(parsed);
                }
            }
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        if tokens.len() < 2 {
            return Err(IoError::Parse(format!("bad edge line: {trimmed:?}")));
        }
        let u: NodeId = tokens[0]
            .parse()
            .map_err(|_| IoError::Parse(format!("bad vertex id: {}", tokens[0])))?;
        let v: NodeId = tokens[1]
            .parse()
            .map_err(|_| IoError::Parse(format!("bad vertex id: {}", tokens[1])))?;
        let w: Weight = if tokens.len() >= 3 {
            tokens[2]
                .parse()
                .map_err(|_| IoError::Parse(format!("bad edge weight: {}", tokens[2])))?
        } else {
            1
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = n.unwrap_or_else(|| {
        if edges.is_empty() {
            0
        } else {
            max_id as usize + 1
        }
    });
    // OOM defense for the declared header count. Unlike METIS, an edge-list
    // file legitimately omits isolated vertices, so the count may exceed the
    // line count — but a count beyond both the file size and a generous
    // 2^20-isolated-vertex allowance is certainly an overflow/typo.
    if n > content.len().max(1 << 20) {
        return Err(IoError::Parse(format!(
            "header claims {n} vertices for a {}-byte file — refusing to \
             allocate for an impossible count",
            content.len()
        )));
    }
    if (max_id as usize) >= n && !edges.is_empty() {
        return Err(IoError::Parse(format!(
            "vertex id {max_id} exceeds declared count {n}"
        )));
    }
    let mut builder = GraphBuilder::new(n);
    for (u, v, w) in edges {
        builder.add_edge(u, v, w);
    }
    Ok(builder.build())
}

/// Writes a graph to `path` as a weighted edge list.
pub fn write_edge_list<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), IoError> {
    fs::write(path, to_edge_list_string(graph))?;
    Ok(())
}

/// Reads a weighted edge list from `path`.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    read_edge_list_with(path, &FaultHandle::off())
}

/// [`read_edge_list`] with a fault-injection handle (see [`read_metis_with`]).
pub fn read_edge_list_with<P: AsRef<Path>>(
    path: P,
    faults: &FaultHandle,
) -> Result<Graph, IoError> {
    if let Some(e) = faults.io_fault("read_edge_list") {
        return Err(IoError::Io(e));
    }
    let bytes = fs::read(path)?;
    let content = std::str::from_utf8(&bytes).map_err(|e| {
        IoError::Parse(format!(
            "file is not valid UTF-8 (first invalid byte at offset {})",
            e.valid_up_to()
        ))
    })?;
    from_edge_list_str(content)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn metis_roundtrip_preserves_graph() {
        let g = generators::randomize_edge_weights(&generators::grid2d(5, 4), 9, 2);
        let s = to_metis_string(&g);
        let g2 = from_metis_str(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn metis_unweighted_parse() {
        let content = "3 2\n2\n1 3\n2\n";
        let g = from_metis_str(content).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn metis_with_comments() {
        let content = "% a comment\n2 1 001\n2 5\n1 5\n";
        let g = from_metis_str(content).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(5));
    }

    #[test]
    fn metis_rejects_bad_neighbor() {
        let content = "2 1\n3\n1\n";
        assert!(from_metis_str(content).is_err());
    }

    #[test]
    fn metis_tolerates_interspersed_comments_and_trailing_whitespace() {
        // Comments between vertex lines, trailing spaces on body lines and
        // whitespace-only lines after the last vertex must all parse.
        let content =
            "% header comment\n3 2 001\n2 7  \n  % mid-body comment\n1 7 3 4\n2 4\n\n   \n";
        let g = from_metis_str(content).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(7));
        assert_eq!(g.edge_weight(1, 2), Some(4));
    }

    #[test]
    fn metis_rejects_self_loop_naming_line() {
        // Vertex 2's adjacency (line 3) lists vertex 2 itself.
        let content = "3 2\n2\n2 3\n2\n";
        let err = from_metis_str(content).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("self-loop"), "{msg}");
        assert!(msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn metis_rejects_zero_indexed_vertices_naming_line() {
        // METIS ids are 1-based; a 0 neighbour indicates a 0-indexed file.
        let content = "2 1\n0\n1\n";
        let err = from_metis_str(content).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("1-based"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn metis_rejects_trailing_garbage_naming_line() {
        let content = "2 1\n2\n1\nextra junk\n";
        let err = from_metis_str(content).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
    }

    #[test]
    fn metis_rejects_edge_count_mismatch() {
        let content = "3 5\n2\n1 3\n2\n";
        assert!(from_metis_str(content).is_err());
    }

    #[test]
    fn metis_rejects_empty() {
        assert!(from_metis_str("").is_err());
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = generators::randomize_edge_weights(&generators::barabasi_albert(60, 2, 1), 5, 3);
        let s = to_edge_list_string(&g);
        let g2 = from_edge_list_str(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_without_header_infers_size() {
        let g = from_edge_list_str("0 1\n1 2 4\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.edge_weight(1, 2), Some(4));
        assert_eq!(g.edge_weight(0, 1), Some(1));
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(from_edge_list_str("hello world graph\n").is_err());
        assert!(from_edge_list_str("1\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let p1 = dir.join("tie_graph_io_test.metis");
        let p2 = dir.join("tie_graph_io_test.edges");
        let g = generators::watts_strogatz(40, 4, 0.2, 7);
        write_metis(&g, &p1).unwrap();
        write_edge_list(&g, &p2).unwrap();
        assert_eq!(read_metis(&p1).unwrap(), g);
        assert_eq!(read_edge_list(&p2).unwrap(), g);
        let _ = std::fs::remove_file(p1);
        let _ = std::fs::remove_file(p2);
    }
}
