//! Sort-based CSR contraction kernel.
//!
//! Contracting a graph along a vertex-merge map used to go through
//! [`crate::GraphBuilder`]: every surviving edge was pushed into a
//! `HashMap<(NodeId, NodeId), Weight>` coalescer, the map was drained into a
//! sorted vector, and every adjacency list was sorted once more. That is the
//! right tool for incremental construction from unknown input, but inside a
//! coarsening loop — where the kernel runs once per level per hierarchy
//! round — the hashing, rehashing and per-build allocations dominate the
//! profile. [`contract_into`] replaces the whole path with counting sorts:
//! the fine vertices are counting-sorted by coarse id (an O(n) pass), and
//! the arc list is then emitted head-major in that order, so every tail
//! bucket receives its heads already sorted and a single run-scan coalesces
//! parallel coarse arcs — no comparison sort touches the arcs at all. All
//! intermediate state lives in buffers owned by a reusable
//! [`ContractScratch`]; the only allocations per call are the exact-size
//! output arrays of the coarse [`Graph`] itself.
//!
//! The kernel is pinned to produce **byte-identical** output to the
//! `GraphBuilder` path: same vertex order, same sorted adjacency lists, same
//! coalesced weights (see the equivalence proptest below and the oracle test
//! in `tie-timer::hierarchy`).

use crate::csr::{Graph, NodeId, Weight};

/// Reusable buffers for [`contract_into`]. One scratch serves any number of
/// contractions of any sizes; buffers grow to the high-water mark and stay
/// allocated. The result of a contraction never depends on leftover scratch
/// contents.
#[derive(Clone, Debug, Default)]
pub struct ContractScratch {
    /// Bucket start offsets; length `coarse_n + 1`.
    starts: Vec<usize>,
    /// Bucket write cursors (end offsets after the scatter); length `coarse_n`.
    cursors: Vec<usize>,
    /// Fine vertices counting-sorted by coarse id; length `n`.
    order: Vec<NodeId>,
    /// Cross arcs `(coarse_head, weight)` bucketed by coarse tail, heads
    /// sorted within each bucket by construction.
    arcs: Vec<(NodeId, Weight)>,
    /// Coalesced adjacency staging (copied into the exact-size output).
    out_adjncy: Vec<NodeId>,
    /// Coalesced weight staging (copied into the exact-size output).
    out_adjwgt: Vec<Weight>,
}

/// Contracts `fine` along `fine_to_coarse` into a coarse graph with
/// `coarse_n` vertices, directly in CSR form.
///
/// * Every fine arc `u -> v` becomes the coarse arc
///   `fine_to_coarse[u] -> fine_to_coarse[v]`; arcs that collapse into a
///   coarse self-loop are dropped, parallel coarse arcs are coalesced with
///   summed weights, and every adjacency list comes out sorted by neighbour
///   id — exactly the invariants [`crate::GraphBuilder::build`] establishes.
/// * Coarse vertex weights are the sums of the fine vertex weights merged
///   into them (a coarse vertex with no fine preimage gets weight 0).
///
/// The kernel leans on [`Graph`]'s undirectedness invariant (every arc has
/// a mirror arc of equal weight, see [`Graph::is_symmetric`]): it reads the
/// weight of `u -> v` from `v`'s adjacency row.
///
/// # Panics
/// Panics if `fine_to_coarse` is shorter than the vertex count of `fine` or
/// maps a vertex to an id `>= coarse_n`.
pub fn contract_into(
    fine: &Graph,
    fine_to_coarse: &[NodeId],
    coarse_n: usize,
    scratch: &mut ContractScratch,
) -> Graph {
    let n = fine.num_vertices();
    assert_eq!(
        fine_to_coarse.len(),
        n,
        "fine_to_coarse must map every vertex of the fine graph"
    );
    debug_assert!(
        fine.is_symmetric(),
        "contract_into requires the undirectedness invariant (mirrored arcs \
         with equal weights)"
    );
    let xadj = fine.xadj();
    let adjncy = fine.adjncy();
    let adjwgt = fine.adjwgt();

    let mut vwgt = vec![0 as Weight; coarse_n];
    for (v, &c) in fine_to_coarse.iter().enumerate() {
        let c = c as usize;
        assert!(
            c < coarse_n,
            "coarse id {c} out of range (coarse_n = {coarse_n})"
        );
        vwgt[c] += fine.vertex_weight(v as NodeId);
    }

    // Pass 1: counting-sort the fine vertices by coarse id. `starts` doubles
    // as the histogram; the stable scatter keeps ascending vertex-id order
    // within each coarse group.
    let starts = &mut scratch.starts;
    let cursors = &mut scratch.cursors;
    starts.clear();
    starts.resize(coarse_n + 1, 0);
    for &c in fine_to_coarse {
        starts[c as usize + 1] += 1;
    }
    for c in 0..coarse_n {
        starts[c + 1] += starts[c];
    }
    cursors.clear();
    cursors.extend_from_slice(&starts[..coarse_n]);
    scratch.order.clear();
    scratch.order.resize(n, 0);
    for (v, &c) in fine_to_coarse.iter().enumerate() {
        let c = c as usize;
        scratch.order[cursors[c]] = v as NodeId;
        cursors[c] += 1;
    }

    // Pass 2: bucket every cross arc by its coarse *tail*, visiting arcs
    // head-side in ascending coarse-head order (the vertex order from pass
    // 1). The fine graph is symmetric, so arc `u -> v` is emitted while
    // scanning head `v`'s row with `v`'s copy of the weight — and because
    // heads arrive in ascending coarse order, every tail bucket comes out
    // sorted by head with no comparison sort. Coarse self-loops are dropped
    // during the scatter, so the degree-sum bucket sizes are upper bounds
    // and `cursors[c]` tracks each bucket's actual end.
    starts.clear();
    starts.resize(coarse_n + 1, 0);
    for u in 0..n {
        let cu = fine_to_coarse[u] as usize;
        starts[cu + 1] += xadj[u + 1] - xadj[u];
    }
    for c in 0..coarse_n {
        starts[c + 1] += starts[c];
    }
    cursors.clear();
    cursors.extend_from_slice(&starts[..coarse_n]);
    scratch.arcs.clear();
    scratch.arcs.resize(starts[coarse_n], (0, 0));
    for &v in &scratch.order {
        let cv = fine_to_coarse[v as usize];
        let row = xadj[v as usize]..xadj[v as usize + 1];
        for (&u, &w) in adjncy[row.clone()].iter().zip(&adjwgt[row]) {
            let cu = fine_to_coarse[u as usize];
            if cu != cv {
                scratch.arcs[cursors[cu as usize]] = (cv, w);
                cursors[cu as usize] += 1;
            }
        }
    }

    // Pass 3: coalesce the head runs of each (sorted) bucket with summed
    // weights into the staging buffers. Equal heads arrive in fine-vertex
    // order rather than the reference path's insertion order, but the run
    // sum is the same for every order, so the output stays byte-stable.
    let mut cxadj = Vec::with_capacity(coarse_n + 1);
    cxadj.push(0usize);
    scratch.out_adjncy.clear();
    scratch.out_adjwgt.clear();
    for c in 0..coarse_n {
        let bucket = &scratch.arcs[starts[c]..cursors[c]];
        let mut i = 0;
        while i < bucket.len() {
            let cv = bucket[i].0;
            let mut w: Weight = 0;
            while i < bucket.len() && bucket[i].0 == cv {
                w += bucket[i].1;
                i += 1;
            }
            scratch.out_adjncy.push(cv);
            scratch.out_adjwgt.push(w);
        }
        cxadj.push(scratch.out_adjncy.len());
    }

    // The staging buffers keep their high-water capacity for the next call;
    // the coarse graph gets exact-size copies.
    let cadjncy = scratch.out_adjncy.clone();
    let cadjwgt = scratch.out_adjwgt.clone();
    Graph::from_adjacency(cxadj, cadjncy, cadjwgt, vwgt)
}

/// Allocating convenience wrapper around [`contract_into`] for one-shot
/// callers; loops should hold a [`ContractScratch`] and call the kernel.
pub fn contract(fine: &Graph, fine_to_coarse: &[NodeId], coarse_n: usize) -> Graph {
    contract_into(
        fine,
        fine_to_coarse,
        coarse_n,
        &mut ContractScratch::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    /// Reference contraction via the incremental `GraphBuilder` path — the
    /// pre-kernel implementation the kernel must reproduce byte for byte.
    fn contract_reference(fine: &Graph, fine_to_coarse: &[NodeId], coarse_n: usize) -> Graph {
        let mut builder = GraphBuilder::new(coarse_n);
        let mut vwgt = vec![0 as Weight; coarse_n];
        for v in fine.vertices() {
            vwgt[fine_to_coarse[v as usize] as usize] += fine.vertex_weight(v);
        }
        for (c, &w) in vwgt.iter().enumerate() {
            builder.set_vertex_weight(c as NodeId, w);
        }
        for (u, v, w) in fine.edges() {
            let (cu, cv) = (fine_to_coarse[u as usize], fine_to_coarse[v as usize]);
            if cu != cv {
                builder.add_edge(cu, cv, w);
            }
        }
        builder.build()
    }

    #[test]
    fn pairwise_contraction_of_a_cycle() {
        let g = generators::cycle_graph(8);
        let f2c: Vec<NodeId> = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let coarse = contract(&g, &f2c, 4);
        assert_eq!(coarse.num_vertices(), 4);
        assert_eq!(coarse.num_edges(), 4);
        assert_eq!(coarse.total_vertex_weight(), g.total_vertex_weight());
        assert!(coarse.is_symmetric());
        assert_eq!(coarse, contract_reference(&g, &f2c, 4));
    }

    #[test]
    fn parallel_coarse_arcs_are_coalesced_with_summed_weights() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2, 2);
        b.add_edge(0, 3, 3);
        b.add_edge(1, 2, 5);
        b.add_edge(0, 1, 7); // intra-group: must vanish
        let g = b.build();
        let f2c: Vec<NodeId> = vec![0, 0, 1, 1];
        let coarse = contract(&g, &f2c, 2);
        assert_eq!(coarse.num_edges(), 1);
        assert_eq!(coarse.edge_weight(0, 1), Some(2 + 3 + 5));
        assert_eq!(coarse, contract_reference(&g, &f2c, 2));
    }

    #[test]
    fn empty_and_edgeless_inputs() {
        let empty = Graph::from_edges(0, &[]);
        let coarse = contract(&empty, &[], 0);
        assert_eq!(coarse.num_vertices(), 0);
        assert_eq!(coarse.num_edges(), 0);

        let edgeless = Graph::from_edges(3, &[]);
        let coarse = contract(&edgeless, &[1, 0, 1], 2);
        assert_eq!(coarse.num_vertices(), 2);
        assert_eq!(coarse.num_edges(), 0);
        assert_eq!(coarse.vertex_weights(), &[1, 2]);
    }

    #[test]
    fn coarse_vertex_without_preimage_gets_weight_zero() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let coarse = contract(&g, &[0, 2], 3);
        assert_eq!(coarse.vertex_weights(), &[1, 0, 1]);
        assert_eq!(coarse.edge_weight(0, 2), Some(1));
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let a = generators::cycle_graph(8);
        let b = generators::randomize_edge_weights(&generators::barabasi_albert(64, 3, 1), 4, 2);
        let f2c_a: Vec<NodeId> = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let f2c_b: Vec<NodeId> = (0..64).map(|v| (v / 2) as NodeId).collect();
        let mut scratch = ContractScratch::default();
        let fresh_a = contract_into(&a, &f2c_a, 4, &mut scratch);
        // Dirty the scratch with a larger instance, then redo the first one.
        let fresh_b = contract_into(&b, &f2c_b, 32, &mut scratch);
        assert_eq!(fresh_b, contract_reference(&b, &f2c_b, 32));
        assert_eq!(contract_into(&a, &f2c_a, 4, &mut scratch), fresh_a);
    }

    #[test]
    #[should_panic]
    fn rejects_short_merge_map() {
        let g = generators::path_graph(3);
        let _ = contract(&g, &[0, 0], 1);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_coarse_id() {
        let g = generators::path_graph(2);
        let _ = contract(&g, &[0, 5], 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// On random weighted graphs with random merge maps, the kernel's
        /// output equals the `GraphBuilder` reference field for field
        /// (`Graph` derives `PartialEq` over its raw CSR arrays, so this is
        /// byte-identity of the representation, not just isomorphism).
        #[test]
        fn kernel_matches_builder_reference(
            n in 1..120usize,
            extra_edges in 0..300usize,
            groups in 1..40usize,
            seed in 0..1000u64,
        ) {
            let base = generators::erdos_renyi_gnm(n, extra_edges.min(n * (n - 1) / 2), seed);
            let g = generators::randomize_edge_weights(&base, 9, seed ^ 0x5eed);
            let coarse_n = groups.min(n);
            // Deterministic pseudo-random merge map touching all of 0..coarse_n.
            let f2c: Vec<NodeId> = (0..n)
                .map(|v| {
                    if v < coarse_n {
                        v as NodeId
                    } else {
                        ((v.wrapping_mul(2654435761).wrapping_add(seed as usize)) % coarse_n)
                            as NodeId
                    }
                })
                .collect();
            let kernel = contract(&g, &f2c, coarse_n);
            let reference = contract_reference(&g, &f2c, coarse_n);
            prop_assert_eq!(kernel, reference);
        }
    }
}
