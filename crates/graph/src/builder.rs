//! Incremental graph builder with deduplication of parallel edges.

use std::collections::BTreeMap;

use crate::csr::{Graph, NodeId, Weight};

/// Builds an undirected, weighted [`Graph`] edge by edge.
///
/// * Self-loops are silently ignored (the mapping objective never counts
///   intra-vertex communication).
/// * Parallel edges are merged; their weights accumulate.
/// * Vertex weights default to 1 and can be overridden per vertex.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    /// Edge weight per normalized (min, max) vertex pair. A `BTreeMap` so
    /// that iteration during [`GraphBuilder::build`] is key-sorted — the
    /// CSR layout never depends on insertion or hash order.
    edges: BTreeMap<(NodeId, NodeId), Weight>,
    vwgt: Vec<Weight>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: BTreeMap::new(),
            vwgt: vec![1; n],
        }
    }

    /// Number of vertices the builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of distinct undirected edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge `{u, v}` with weight `w`. Re-adding an edge
    /// accumulates weights. Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "vertex id out of range"
        );
        if u == v {
            return;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        *self.edges.entry(key).or_insert(0) += w;
    }

    /// Returns true if edge `{u, v}` has been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains_key(&key)
    }

    /// Sets the weight of vertex `v`.
    pub fn set_vertex_weight(&mut self, v: NodeId, w: Weight) {
        self.vwgt[v as usize] = w;
    }

    /// Finalizes the builder into a CSR [`Graph`]. Adjacency lists are sorted
    /// by neighbour id, which gives deterministic iteration order.
    pub fn build(self) -> Graph {
        let n = self.n;
        let mut degree = vec![0usize; n];
        for &(u, v) in self.edges.keys() {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for i in 0..n {
            xadj[i + 1] = xadj[i] + degree[i];
        }
        let total_arcs = xadj[n];
        let mut adjncy = vec![0 as NodeId; total_arcs];
        let mut adjwgt = vec![0 as Weight; total_arcs];
        let mut cursor = xadj.clone();
        // BTreeMap iteration is already key-sorted, so insertion order here
        // is deterministic without an extra collect-and-sort pass.
        for ((u, v), w) in self.edges {
            let (ui, vi) = (u as usize, v as usize);
            adjncy[cursor[ui]] = v;
            adjwgt[cursor[ui]] = w;
            cursor[ui] += 1;
            adjncy[cursor[vi]] = u;
            adjwgt[cursor[vi]] = w;
            cursor[vi] += 1;
        }
        // Sort each adjacency list by neighbour id for deterministic lookups.
        for v in 0..n {
            let range = xadj[v]..xadj[v + 1];
            let mut pairs: Vec<_> = adjncy[range.clone()]
                .iter()
                .copied()
                .zip(adjwgt[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(nb, _)| nb);
            for (i, (nb, w)) in pairs.into_iter().enumerate() {
                adjncy[xadj[v] + i] = nb;
                adjwgt[xadj[v] + i] = w;
            }
        }
        Graph::from_adjacency(xadj, adjncy, adjwgt, self.vwgt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn accumulates_parallel_edge_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 0, 3);
        assert_eq!(b.num_edges(), 1);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(5));
    }

    #[test]
    fn ignores_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1, 7);
        assert_eq!(b.num_edges(), 0);
    }

    #[test]
    fn vertex_weights_carried_through() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1);
        b.set_vertex_weight(0, 9);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 9);
        assert_eq!(g.vertex_weight(1), 1);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(0, 3, 1);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0, 1);
        assert!(b.has_edge(0, 2));
        assert!(b.has_edge(2, 0));
        assert!(!b.has_edge(1, 2));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn symmetry_of_built_graph() {
        let mut b = GraphBuilder::new(6);
        for (u, v, w) in [
            (0u32, 1u32, 3u64),
            (1, 2, 1),
            (2, 3, 2),
            (3, 4, 5),
            (4, 5, 1),
            (5, 0, 4),
            (1, 4, 2),
        ] {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.total_edge_weight(), 18);
    }
}
