//! Quotient (contracted) graphs.
//!
//! Given a graph and an assignment of its vertices to blocks, the quotient
//! graph has one vertex per non-empty block; the weight of a quotient edge
//! aggregates the weights of all original edges whose endpoints lie in the
//! two blocks. This is exactly the *communication graph* `Gc` of the paper
//! (Figure 1b) and also the coarsening step of the multilevel partitioner.

use std::collections::HashMap;

use crate::csr::{Graph, NodeId, Weight};
use crate::GraphBuilder;

/// Result of contracting a graph along a block assignment.
#[derive(Clone, Debug)]
pub struct QuotientGraph {
    /// The contracted graph; vertex `b` represents block `b`.
    pub graph: Graph,
    /// For every original vertex, the quotient vertex it was contracted into.
    pub vertex_to_block: Vec<NodeId>,
    /// Total vertex weight of each block (same as the quotient vertex weight).
    pub block_weights: Vec<Weight>,
    /// Sum of the weights of edges whose endpoints fall into different blocks
    /// (the edge cut of the assignment).
    pub cut_weight: Weight,
}

/// Contracts `graph` along `assignment`, which maps every vertex to a block
/// id. Block ids need not be contiguous; they are compacted and the quotient
/// vertex of block `b` is the rank of `b` among the used ids — but when the
/// ids are already `0..k`, quotient vertex `i` corresponds to block `i`.
///
/// # Panics
/// Panics if `assignment.len() != graph.num_vertices()`.
pub fn quotient_graph(graph: &Graph, assignment: &[u32]) -> QuotientGraph {
    assert_eq!(
        assignment.len(),
        graph.num_vertices(),
        "assignment length mismatch"
    );
    // Compact block ids while preserving their numeric order.
    let mut used: Vec<u32> = assignment.to_vec();
    used.sort_unstable();
    used.dedup();
    let rank: HashMap<u32, NodeId> = used
        .iter()
        .enumerate()
        .map(|(i, &b)| (b, i as NodeId))
        .collect();
    let k = used.len();

    let vertex_to_block: Vec<NodeId> = assignment.iter().map(|b| rank[b]).collect();

    let mut block_weights = vec![0 as Weight; k];
    for v in graph.vertices() {
        block_weights[vertex_to_block[v as usize] as usize] += graph.vertex_weight(v);
    }

    let mut builder = GraphBuilder::new(k);
    for (b, &w) in block_weights.iter().enumerate() {
        builder.set_vertex_weight(b as NodeId, w);
    }
    let mut cut_weight = 0 as Weight;
    for (u, v, w) in graph.edges() {
        let (bu, bv) = (vertex_to_block[u as usize], vertex_to_block[v as usize]);
        if bu != bv {
            builder.add_edge(bu, bv, w);
            cut_weight += w;
        }
    }
    QuotientGraph {
        graph: builder.build(),
        vertex_to_block,
        block_weights,
        cut_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn contraction_of_figure1_style_instance() {
        // A 4x4 grid split into 4 quadrant blocks: the communication graph is
        // a 2x2 grid-like structure with aggregated weights.
        let g = generators::grid2d(4, 4);
        let mut assignment = vec![0u32; 16];
        for x in 0..4usize {
            for y in 0..4usize {
                let v = x * 4 + y;
                assignment[v] = ((x / 2) * 2 + (y / 2)) as u32;
            }
        }
        let q = quotient_graph(&g, &assignment);
        assert_eq!(q.graph.num_vertices(), 4);
        assert_eq!(q.block_weights, vec![4, 4, 4, 4]);
        // Each pair of adjacent quadrants shares exactly 2 grid edges.
        for (_, _, w) in q.graph.edges() {
            assert_eq!(w, 2);
        }
        assert_eq!(q.cut_weight, 8);
        // Quadrants touching only at the corner are not adjacent.
        assert_eq!(q.graph.num_edges(), 4);
    }

    #[test]
    fn singleton_blocks_reproduce_graph() {
        let g = generators::cycle_graph(6);
        let assignment: Vec<u32> = (0..6).collect();
        let q = quotient_graph(&g, &assignment);
        assert_eq!(q.graph.num_vertices(), 6);
        assert_eq!(q.graph.num_edges(), 6);
        assert_eq!(q.cut_weight, g.total_edge_weight());
    }

    #[test]
    fn single_block_yields_single_vertex() {
        let g = generators::complete_graph(5);
        let q = quotient_graph(&g, &[3u32; 5]);
        assert_eq!(q.graph.num_vertices(), 1);
        assert_eq!(q.graph.num_edges(), 0);
        assert_eq!(q.cut_weight, 0);
        assert_eq!(q.block_weights, vec![5]);
    }

    #[test]
    fn non_contiguous_block_ids_are_compacted() {
        let g = generators::path_graph(4);
        let q = quotient_graph(&g, &[10, 10, 40, 40]);
        assert_eq!(q.graph.num_vertices(), 2);
        assert_eq!(q.vertex_to_block, vec![0, 0, 1, 1]);
        assert_eq!(q.graph.edge_weight(0, 1), Some(1));
        assert_eq!(q.cut_weight, 1);
    }

    #[test]
    fn edge_weights_aggregate() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2, 3);
        b.add_edge(0, 3, 4);
        b.add_edge(1, 2, 5);
        b.add_edge(0, 1, 7); // intra-block
        let g = b.build();
        let q = quotient_graph(&g, &[0, 0, 1, 1]);
        assert_eq!(q.graph.edge_weight(0, 1), Some(12));
        assert_eq!(q.cut_weight, 12);
    }

    #[test]
    #[should_panic]
    fn wrong_assignment_length_panics() {
        let g = generators::path_graph(3);
        let _ = quotient_graph(&g, &[0, 1]);
    }
}
