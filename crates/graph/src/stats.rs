//! Structural statistics of graphs: degree distribution, clustering,
//! effective diameter estimates. Used by the workload catalogue to document
//! that the synthetic stand-ins belong to the same structural class as the
//! paper's real networks (heavy-tailed degrees, short distances).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Graph, NodeId};
use crate::traversal::bfs_distances;
use crate::UNREACHABLE;

/// Summary statistics of a graph's structure.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Global clustering coefficient estimated by wedge sampling.
    pub clustering: f64,
    /// 90th-percentile BFS distance from sampled sources ("effective
    /// diameter" estimate).
    pub effective_diameter: u32,
}

/// Computes summary statistics. `samples` controls how many BFS sources and
/// wedges are sampled; statistics are deterministic in `seed`.
pub fn graph_stats(graph: &Graph, samples: usize, seed: u64) -> GraphStats {
    let n = graph.num_vertices();
    let degrees: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    let min_degree = degrees.iter().copied().min().unwrap_or(0);
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let avg_degree = if n == 0 {
        0.0
    } else {
        degrees.iter().sum::<usize>() as f64 / n as f64
    };
    GraphStats {
        num_vertices: n,
        num_edges: graph.num_edges(),
        min_degree,
        avg_degree,
        max_degree,
        clustering: clustering_coefficient(graph, samples.max(1), seed),
        effective_diameter: effective_diameter(graph, samples.max(1), seed ^ 0x5bd1e995),
    }
}

/// Estimates the global clustering coefficient (fraction of closed wedges) by
/// sampling `samples` random wedges.
pub fn clustering_coefficient(graph: &Graph, samples: usize, seed: u64) -> f64 {
    let candidates: Vec<NodeId> = graph.vertices().filter(|&v| graph.degree(v) >= 2).collect();
    if candidates.is_empty() {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut closed = 0usize;
    let mut total = 0usize;
    for _ in 0..samples {
        let v = candidates[rng.gen_range(0..candidates.len())];
        let nbrs = graph.neighbors(v);
        let a = nbrs[rng.gen_range(0..nbrs.len())];
        let b = nbrs[rng.gen_range(0..nbrs.len())];
        if a == b {
            continue;
        }
        total += 1;
        if graph.has_edge(a, b) {
            closed += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        closed as f64 / total as f64
    }
}

/// Estimates the 90th-percentile shortest-path distance from `samples`
/// random sources (unreachable pairs are ignored).
pub fn effective_diameter(graph: &Graph, samples: usize, seed: u64) -> u32 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut distances: Vec<u32> = Vec::new();
    for _ in 0..samples {
        let s = rng.gen_range(0..n) as NodeId;
        distances.extend(
            bfs_distances(graph, s)
                .into_iter()
                .filter(|&d| d != UNREACHABLE && d > 0),
        );
    }
    if distances.is_empty() {
        return 0;
    }
    distances.sort_unstable();
    distances[(distances.len() as f64 * 0.9) as usize - 1]
}

/// Degree histogram: entry `d` counts the vertices of degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_complete_graph() {
        let g = generators::complete_graph(10);
        let s = graph_stats(&g, 200, 1);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 45);
        assert_eq!(s.min_degree, 9);
        assert_eq!(s.max_degree, 9);
        assert!((s.avg_degree - 9.0).abs() < 1e-12);
        assert!(
            (s.clustering - 1.0).abs() < 1e-12,
            "complete graph wedges are all closed"
        );
        assert_eq!(s.effective_diameter, 1);
    }

    #[test]
    fn stats_of_cycle() {
        let g = generators::cycle_graph(20);
        let s = graph_stats(&g, 100, 2);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.clustering, 0.0, "cycles of length > 3 have no triangles");
        assert!(s.effective_diameter >= 7 && s.effective_diameter <= 10);
    }

    #[test]
    fn heavy_tail_visible_in_ba_graphs() {
        let g = generators::barabasi_albert(800, 3, 5);
        let s = graph_stats(&g, 400, 3);
        assert!(
            s.max_degree as f64 > 5.0 * s.avg_degree,
            "BA graphs have hubs"
        );
        assert!(
            s.effective_diameter <= 8,
            "scale-free graphs have short distances"
        );
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = generators::watts_strogatz(100, 4, 0.2, 1);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 100);
        assert_eq!(
            hist.iter().enumerate().map(|(d, &c)| d * c).sum::<usize>(),
            2 * g.num_edges()
        );
    }

    #[test]
    fn stats_deterministic_in_seed() {
        let g = generators::barabasi_albert(300, 3, 7);
        assert_eq!(graph_stats(&g, 100, 9), graph_stats(&g, 100, 9));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = Graph::from_edges(0, &[]);
        let s = graph_stats(&empty, 10, 0);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.effective_diameter, 0);
        let single = Graph::from_edges(1, &[]);
        let s = graph_stats(&single, 10, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.clustering, 0.0);
    }
}
