//! Seeded synthetic graph generators.
//!
//! The TIMER paper evaluates on 15 real-world complex networks (Table 1).
//! Those data sets are not redistributable here, so the benchmark harness
//! substitutes seeded synthetic networks from this module whose structural
//! class matches the originals: heavy-tailed degree distributions
//! (Barabási–Albert, R-MAT), small-world structure (Watts–Strogatz) and
//! near-random structure (Erdős–Rényi). All generators are deterministic in
//! the seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};

/// Simple path with `n` vertices `0 - 1 - ... - (n-1)`.
pub fn path_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId, 1);
    }
    b.build()
}

/// Cycle with `n` vertices.
pub fn cycle_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId, 1);
    }
    if n > 2 {
        b.add_edge((n - 1) as NodeId, 0, 1);
    }
    b.build()
}

/// Star with a centre (vertex 0) and `n - 1` leaves.
pub fn star_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i as NodeId, 1);
    }
    b.build()
}

/// Complete graph on `n` vertices.
pub fn complete_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as NodeId, v as NodeId, 1);
        }
    }
    b.build()
}

/// Complete binary tree with `n` vertices (vertex 0 is the root, vertex `i`
/// has children `2i + 1` and `2i + 2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = (i - 1) / 2;
        b.add_edge(parent as NodeId, i as NodeId, 1);
    }
    b.build()
}

/// `nx × ny` rectangular mesh (4-neighbourhood).
pub fn grid2d(nx: usize, ny: usize) -> Graph {
    let idx = |x: usize, y: usize| (x * ny + y) as NodeId;
    let mut b = GraphBuilder::new(nx * ny);
    for x in 0..nx {
        for y in 0..ny {
            if x + 1 < nx {
                b.add_edge(idx(x, y), idx(x + 1, y), 1);
            }
            if y + 1 < ny {
                b.add_edge(idx(x, y), idx(x, y + 1), 1);
            }
        }
    }
    b.build()
}

/// `nx × ny × nz` cubic mesh (6-neighbourhood).
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> Graph {
    let idx = |x: usize, y: usize, z: usize| (x * ny * nz + y * nz + z) as NodeId;
    let mut b = GraphBuilder::new(nx * ny * nz);
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                if x + 1 < nx {
                    b.add_edge(idx(x, y, z), idx(x + 1, y, z), 1);
                }
                if y + 1 < ny {
                    b.add_edge(idx(x, y, z), idx(x, y + 1, z), 1);
                }
                if z + 1 < nz {
                    b.add_edge(idx(x, y, z), idx(x, y, z + 1), 1);
                }
            }
        }
    }
    b.build()
}

/// Erdős–Rényi G(n, p) graph: every pair becomes an edge independently with
/// probability `p`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u as NodeId, v as NodeId, 1);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi G(n, m) graph with exactly `m` distinct random edges (or fewer
/// if `m` exceeds the number of available pairs).
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut b = GraphBuilder::new(n);
    let mut added = 0usize;
    while added < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v, 1);
            added += 1;
        }
    }
    b.build()
}

/// Barabási–Albert preferential-attachment graph: starts from a small clique
/// and attaches each new vertex to `m_attach` existing vertices with
/// probability proportional to their degree. Produces heavy-tailed degree
/// distributions akin to citation and social networks.
///
/// # Panics
/// Panics if `m_attach` is zero.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Graph {
    assert!(m_attach >= 1, "attachment count must be at least 1");
    let m_attach = m_attach.min(n.saturating_sub(1)).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: vertices appear once per incident edge, which
    // makes degree-proportional sampling a uniform draw from the list.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    let seed_size = (m_attach + 1).min(n);
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            b.add_edge(u as NodeId, v as NodeId, 1);
            endpoints.push(u as NodeId);
            endpoints.push(v as NodeId);
        }
    }
    for u in seed_size..n {
        let mut targets: Vec<NodeId> = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while targets.len() < m_attach && guard < 50 * m_attach {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..u) as NodeId
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t != u as NodeId && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(u as NodeId, t, 1);
            endpoints.push(u as NodeId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where every vertex is
/// connected to its `k` nearest neighbours, with each edge rewired with
/// probability `beta`.
///
/// # Panics
/// Panics if `k` is odd or `k >= n`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k.is_multiple_of(2), "watts_strogatz requires even k");
    assert!(k < n, "k must be smaller than n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            if rng.gen_bool(beta) {
                // Rewire: keep u, pick a random new endpoint.
                let mut w = rng.gen_range(0..n);
                let mut guard = 0;
                while (w == u || b.has_edge(u as NodeId, w as NodeId)) && guard < 100 {
                    w = rng.gen_range(0..n);
                    guard += 1;
                }
                if w != u && !b.has_edge(u as NodeId, w as NodeId) {
                    b.add_edge(u as NodeId, w as NodeId, 1);
                    continue;
                }
            }
            b.add_edge(u as NodeId, v as NodeId, 1);
        }
    }
    b.build()
}

/// R-MAT (recursive matrix) generator with partition probabilities
/// `(a, b, c, d)`, `a + b + c + d = 1`. Produces skewed, scale-free-like
/// graphs similar to web and social networks. `scale` is log2 of the vertex
/// count; `edge_factor` is the average degree / 2.
///
/// # Panics
/// Panics if the four probabilities do not sum to 1.
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> Graph {
    let (a, b_p, c, d) = probs;
    let total = a + b_p + c + d;
    assert!(
        (total - 1.0).abs() < 1e-6,
        "R-MAT probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..m {
        let (mut x0, mut x1) = (0usize, n);
        let (mut y0, mut y1) = (0usize, n);
        while x1 - x0 > 1 {
            let r: f64 = rng.gen();
            let (dx, dy) = if r < a {
                (0, 0)
            } else if r < a + b_p {
                (0, 1)
            } else if r < a + b_p + c {
                (1, 0)
            } else {
                (1, 1)
            };
            let mx = (x0 + x1) / 2;
            let my = (y0 + y1) / 2;
            if dx == 0 {
                x1 = mx;
            } else {
                x0 = mx;
            }
            if dy == 0 {
                y1 = my;
            } else {
                y0 = my;
            }
        }
        let (u, v) = (x0 as NodeId, y0 as NodeId);
        if u != v {
            builder.add_edge(u, v, 1);
        }
    }
    builder.build()
}

/// Random geometric-ish community graph: `communities` dense clusters joined
/// by a sparse random backbone. Used as a stand-in for networks with strong
/// community structure (e.g. collaboration networks).
///
/// # Panics
/// Panics if `communities` is zero.
pub fn planted_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out_edges: usize,
    seed: u64,
) -> Graph {
    assert!(communities >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let comm_of = |v: usize| v * communities / n.max(1);
    // Dense intra-community edges.
    for u in 0..n {
        for v in (u + 1)..n {
            if comm_of(u) == comm_of(v) && rng.gen_bool(p_in) {
                b.add_edge(u as NodeId, v as NodeId, 1);
            }
        }
    }
    // Sparse inter-community backbone.
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < p_out_edges && guard < 100 * p_out_edges.max(1) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && comm_of(u) != comm_of(v) && !b.has_edge(u as NodeId, v as NodeId) {
            b.add_edge(u as NodeId, v as NodeId, 1);
            added += 1;
        }
    }
    b.build()
}

/// Assigns random integer edge weights in `1..=max_weight` to an existing
/// graph, preserving its structure. Useful for turning unit-weight synthetic
/// networks into weighted communication workloads.
pub fn randomize_edge_weights(graph: &Graph, max_weight: u64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(graph.num_vertices());
    for (u, v, _) in graph.edges() {
        b.add_edge(u, v, rng.gen_range(1..=max_weight.max(1)));
    }
    for v in graph.vertices() {
        b.set_vertex_weight(v, graph.vertex_weight(v));
    }
    b.build()
}

/// Returns a uniformly random permutation of `0..n`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path_graph(10);
        assert_eq!(p.num_edges(), 9);
        assert!(is_connected(&p));
        let c = cycle_graph(10);
        assert_eq!(c.num_edges(), 10);
        for v in c.vertices() {
            assert_eq!(c.degree(v), 2);
        }
    }

    #[test]
    fn star_and_complete_shapes() {
        let s = star_graph(6);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.num_edges(), 5);
        let k = complete_graph(5);
        assert_eq!(k.num_edges(), 10);
        for v in k.vertices() {
            assert_eq!(k.degree(v), 4);
        }
    }

    #[test]
    fn binary_tree_shape() {
        let t = binary_tree(7);
        assert_eq!(t.num_edges(), 6);
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.degree(3), 1);
        assert!(is_connected(&t));
    }

    #[test]
    fn grid2d_shape() {
        let g = grid2d(4, 3);
        assert_eq!(g.num_vertices(), 12);
        // Edges: 3*(4-1) horizontal strips... compute: nx*(ny-1) + ny*(nx-1) = 4*2 + 3*3 = 17.
        assert_eq!(g.num_edges(), 17);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid3d_shape() {
        let g = grid3d(2, 3, 4);
        assert_eq!(g.num_vertices(), 24);
        // nx*ny*(nz-1) + nx*(ny-1)*nz + (nx-1)*ny*nz = 2*3*3 + 2*2*4 + 1*3*4 = 18+16+12 = 46.
        assert_eq!(g.num_edges(), 46);
        assert!(is_connected(&g));
    }

    #[test]
    fn erdos_renyi_is_deterministic_in_seed() {
        let g1 = erdos_renyi_gnp(50, 0.1, 7);
        let g2 = erdos_renyi_gnp(50, 0.1, 7);
        let g3 = erdos_renyi_gnp(50, 0.1, 8);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn erdos_renyi_gnm_edge_count() {
        let g = erdos_renyi_gnm(40, 100, 3);
        assert_eq!(g.num_edges(), 100);
        let g_small = erdos_renyi_gnm(5, 1000, 3);
        assert_eq!(g_small.num_edges(), 10); // clamped to complete graph
    }

    #[test]
    fn barabasi_albert_properties() {
        let g = barabasi_albert(200, 3, 11);
        assert_eq!(g.num_vertices(), 200);
        assert!(g.num_edges() >= 3 * (200 - 4));
        assert!(is_connected(&g));
        // Heavy tail: max degree clearly above the attachment parameter.
        assert!(g.max_degree() > 10);
    }

    #[test]
    fn watts_strogatz_properties() {
        let g = watts_strogatz(100, 4, 0.1, 5);
        assert_eq!(g.num_vertices(), 100);
        // Ring lattice contributes ~ n*k/2 edges; rewiring keeps the count close.
        assert!(g.num_edges() >= 150 && g.num_edges() <= 200);
    }

    #[test]
    fn rmat_properties() {
        let g = rmat(8, 8, (0.57, 0.19, 0.19, 0.05), 42);
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 256); // duplicates removed, still dense enough
        assert!(g.max_degree() > 16); // skew
    }

    #[test]
    fn planted_partition_connectivity_backbone() {
        let g = planted_partition(120, 4, 0.3, 30, 9);
        assert_eq!(g.num_vertices(), 120);
        assert!(g.num_edges() > 100);
    }

    #[test]
    fn randomize_edge_weights_preserves_structure() {
        let g = cycle_graph(12);
        let w = randomize_edge_weights(&g, 10, 1);
        assert_eq!(w.num_edges(), g.num_edges());
        assert!(w.total_edge_weight() >= g.total_edge_weight());
        for (u, v, wt) in w.edges() {
            assert!(g.has_edge(u, v));
            assert!((1..=10).contains(&wt));
        }
    }

    #[test]
    fn random_permutation_is_permutation() {
        let p = random_permutation(100, 3);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100u32).collect::<Vec<_>>());
        assert_ne!(p, (0..100u32).collect::<Vec<_>>()); // overwhelmingly likely
    }
}
