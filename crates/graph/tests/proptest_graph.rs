//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use tie_graph::{generators, io, quotient_graph, traversal, Graph, GraphBuilder, NodeId};

/// Strategy producing a random edge list over `n` vertices.
fn edge_list(
    max_n: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32, u64)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1..20u64), 0..max_edges);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, u64)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Built graphs are always structurally symmetric.
    #[test]
    fn built_graphs_are_symmetric((n, edges) in edge_list(40, 120)) {
        let g = build(n, &edges);
        prop_assert!(g.is_symmetric());
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    /// The sum of all degrees equals twice the edge count.
    #[test]
    fn handshake_lemma((n, edges) in edge_list(40, 120)) {
        let g = build(n, &edges);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// METIS round-trip is the identity.
    #[test]
    fn metis_roundtrip((n, edges) in edge_list(30, 80)) {
        let g = build(n, &edges);
        let parsed = io::from_metis_str(&io::to_metis_string(&g)).unwrap();
        prop_assert_eq!(parsed, g);
    }

    /// Edge-list round-trip is the identity.
    #[test]
    fn edge_list_roundtrip((n, edges) in edge_list(30, 80)) {
        let g = build(n, &edges);
        let parsed = io::from_edge_list_str(&io::to_edge_list_string(&g)).unwrap();
        prop_assert_eq!(parsed, g);
    }

    /// BFS distances satisfy the triangle-ish property along edges: distances
    /// of adjacent vertices differ by at most one.
    #[test]
    fn bfs_distances_lipschitz((n, edges) in edge_list(40, 150)) {
        let g = build(n, &edges);
        let d = traversal::bfs_distances(&g, 0);
        for (u, v, _) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != tie_graph::UNREACHABLE && dv != tie_graph::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                // Both endpoints must be unreachable together.
                prop_assert_eq!(du, dv);
            }
        }
    }

    /// Connected components partition the vertex set and edges never cross
    /// components.
    #[test]
    fn components_are_edge_closed((n, edges) in edge_list(40, 100)) {
        let g = build(n, &edges);
        let (comp, count) = traversal::connected_components(&g);
        prop_assert_eq!(comp.len(), g.num_vertices());
        for &c in &comp {
            prop_assert!((c as usize) < count);
        }
        for (u, v, _) in g.edges() {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
    }

    /// Contracting along any assignment conserves total vertex weight and
    /// total edge weight (cut + internal).
    #[test]
    fn quotient_conserves_weight(
        (n, edges) in edge_list(30, 100),
        blocks in 1..6usize,
        seed in 0..1000u64,
    ) {
        let g = build(n, &edges);
        // Pseudo-random but deterministic assignment derived from the seed.
        let assignment: Vec<u32> = (0..g.num_vertices())
            .map(|v| ((v as u64 * 2654435761 + seed) % blocks as u64) as u32)
            .collect();
        let q = quotient_graph(&g, &assignment);
        prop_assert_eq!(q.graph.total_vertex_weight(), g.total_vertex_weight());
        let internal: u64 = g
            .edges()
            .filter(|&(u, v, _)| assignment[u as usize] == assignment[v as usize])
            .map(|(_, _, w)| w)
            .sum();
        prop_assert_eq!(q.cut_weight + internal, g.total_edge_weight());
        prop_assert_eq!(q.graph.total_edge_weight(), q.cut_weight);
    }

    /// Generators are deterministic in their seed.
    #[test]
    fn generators_deterministic(seed in 0..500u64) {
        let a = generators::barabasi_albert(80, 2, seed);
        let b = generators::barabasi_albert(80, 2, seed);
        prop_assert_eq!(a, b);
        let a = generators::rmat(6, 4, (0.45, 0.22, 0.22, 0.11), seed);
        let b = generators::rmat(6, 4, (0.45, 0.22, 0.22, 0.11), seed);
        prop_assert_eq!(a, b);
    }

    /// A random permutation really is a permutation.
    #[test]
    fn permutation_property(n in 1..200usize, seed in 0..100u64) {
        let p = generators::random_permutation(n, seed);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }
}

#[test]
fn largest_component_is_connected_smoke() {
    let g = generators::erdos_renyi_gnp(200, 0.008, 17);
    let (lcc, _) = traversal::largest_connected_component(&g);
    assert!(traversal::is_connected(&lcc));
    assert!(lcc.num_vertices() <= g.num_vertices());
}

#[test]
fn bfs_distance_matches_grid_manhattan() {
    let g = generators::grid2d(6, 5);
    let d = traversal::bfs_distances(&g, 0);
    for x in 0..6usize {
        for y in 0..5usize {
            let v = (x * 5 + y) as NodeId;
            assert_eq!(d[v as usize], (x + y) as u32);
        }
    }
}
