//! Malformed-input corpus for the graph readers: every entry must produce a
//! **typed** `IoError` — never a panic, never an abort, never an unbounded
//! allocation. Run in release as part of the CI chaos job, where an OOM or
//! index panic would slip past debug-only checks.

use tie_fault::{FaultHandle, FaultPlan};
use tie_graph::generators;
use tie_graph::io::{
    from_edge_list_str, from_metis_bytes, from_metis_str, read_edge_list_with, read_metis,
    read_metis_with, to_metis_string, IoError,
};

/// The corpus: (name, content) pairs that exercise every rejection path of
/// the METIS parser. Each must fail with `IoError::Parse`.
fn metis_corpus() -> Vec<(&'static str, String)> {
    vec![
        ("empty file", String::new()),
        (
            "comment-only file",
            "% nothing here\n% still nothing\n".to_string(),
        ),
        ("header with one field", "42\n".to_string()),
        ("non-numeric vertex count", "many 3\n".to_string()),
        ("non-numeric edge count", "3 lots\n".to_string()),
        ("negative vertex count", "-5 2\n".to_string()),
        // Overflowing counts: headers promising more data than the file can
        // possibly hold must be rejected before any allocation is sized.
        (
            "overflowing vertex count",
            "18446744073709551615 1\n1 2\n".to_string(),
        ),
        (
            "huge vertex count, tiny file",
            "999999999 1\n2\n1\n".to_string(),
        ),
        (
            "huge edge count, tiny file",
            "2 999999999\n2\n1\n".to_string(),
        ),
        // Truncations.
        (
            "truncated: too few vertex lines",
            "3 2\n2 3\n1\n".to_string(),
        ),
        (
            "truncated mid-adjacency (edge count off)",
            "3 3\n2 3\n1\n1\n".to_string(),
        ),
        ("extra vertex lines", "2 1\n2\n1\n1\n".to_string()),
        // Body-level corruption.
        ("neighbour id zero (1-based ids)", "2 1\n0\n1\n".to_string()),
        ("neighbour id out of range", "2 1\n5\n1\n".to_string()),
        ("self-loop", "2 1\n1\n1\n".to_string()),
        ("non-numeric neighbour", "2 1\ntwo\n1\n".to_string()),
        ("bad edge weight", "2 1 1\n2 heavy\n1 heavy\n".to_string()),
        ("missing edge weight", "2 1 1\n2\n1 1\n".to_string()),
        ("bad vertex weight", "2 1 10\nheavy 2\n1 1\n".to_string()),
        ("missing vertex weight", "2 1 10\n\n1 1\n".to_string()),
        (
            "edge count disagrees with adjacency",
            "3 1\n2 3\n1 3\n1 2\n".to_string(),
        ),
    ]
}

#[test]
fn malformed_metis_corpus_yields_typed_errors() {
    for (name, content) in metis_corpus() {
        match from_metis_str(&content) {
            Err(IoError::Parse(msg)) => {
                assert!(!msg.is_empty(), "{name}: error message must not be empty");
            }
            Err(other) => panic!("{name}: expected IoError::Parse, got {other:?}"),
            Ok(g) => panic!(
                "{name}: malformed input parsed into a {}-vertex graph",
                g.num_vertices()
            ),
        }
    }
}

#[test]
fn non_utf8_bytes_are_a_typed_error_naming_the_offset() {
    // Valid header, then a 0xFF byte at offset 4.
    let bytes: &[u8] = b"2 1\n\xff\n1\n";
    match from_metis_bytes(bytes) {
        Err(IoError::Parse(msg)) => {
            assert!(msg.contains("UTF-8"), "{msg}");
            assert!(msg.contains("offset 4"), "{msg}");
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
    // A lone continuation byte at offset 0.
    assert!(matches!(
        from_metis_bytes(&[0x80, 0x80]),
        Err(IoError::Parse(_))
    ));
}

#[test]
fn malformed_edge_lists_yield_typed_errors() {
    for (name, content) in [
        ("endpoint out of range", "# 2 1\n0 7 1\n"),
        ("non-numeric endpoint", "# 2 1\nzero 1 1\n"),
        ("non-numeric weight", "# 2 1\n0 1 w\n"),
        ("single-token edge line", "# 2 1\n0\n"),
        ("huge vertex count, tiny file", "# 99999999 1\n0 1 1\n"),
    ] {
        match from_edge_list_str(content) {
            Err(IoError::Parse(msg)) => {
                assert!(!msg.is_empty(), "{name}: empty message");
            }
            Err(other) => panic!("{name}: expected IoError::Parse, got {other:?}"),
            Ok(_) => panic!("{name}: malformed edge list parsed successfully"),
        }
    }
}

#[test]
fn well_formed_round_trip_still_works() {
    // The corpus guards must not have broken the happy path.
    let g = generators::grid2d(4, 4);
    let text = to_metis_string(&g);
    let parsed = from_metis_str(&text).unwrap();
    assert_eq!(parsed.num_vertices(), g.num_vertices());
    assert_eq!(parsed.num_edges(), g.num_edges());
}

#[test]
fn missing_file_is_io_not_panic() {
    match read_metis("/nonexistent/definitely/not/here.metis") {
        Err(IoError::Io(_)) => {}
        other => panic!("expected IoError::Io, got {other:?}"),
    }
}

#[test]
fn injected_io_faults_surface_as_io_errors() {
    // Write a valid file, then arm one IO fault: the first read fails with
    // IoError::Io, the second (fault consumed) succeeds.
    let g = generators::grid2d(3, 3);
    let dir = std::env::temp_dir().join("tie_graph_chaos_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grid.metis");
    std::fs::write(&path, to_metis_string(&g)).unwrap();

    let faults = FaultHandle::new(FaultPlan::new().with_io_fault(1));
    match read_metis_with(&path, &faults) {
        Err(IoError::Io(e)) => assert!(e.to_string().contains("injected"), "{e}"),
        other => panic!("expected injected IoError::Io, got {other:?}"),
    }
    assert_eq!(faults.io_faults_fired(), 1);
    let parsed = read_metis_with(&path, &faults).unwrap();
    assert_eq!(parsed.num_vertices(), 9);

    // Same contract for the edge-list reader.
    let el_path = dir.join("grid.edges");
    std::fs::write(&el_path, tie_graph::io::to_edge_list_string(&g)).unwrap();
    let faults = FaultHandle::new(FaultPlan::new().with_io_fault(1));
    assert!(matches!(
        read_edge_list_with(&el_path, &faults),
        Err(IoError::Io(_))
    ));
    assert_eq!(
        read_edge_list_with(&el_path, &faults)
            .unwrap()
            .num_vertices(),
        9
    );

    std::fs::remove_dir_all(&dir).ok();
}
