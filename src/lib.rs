//! Workspace-level umbrella crate for the TiMEr reproduction.
//!
//! This crate carries no code of its own: it exists so the repository root
//! owns the cross-crate integration tests in `tests/` and the runnable
//! examples in `examples/`. The actual functionality lives in the
//! `crates/*` workspace members (`tie-graph`, `tie-partition`,
//! `tie-mapping`, `tie-metrics`, `tie-topology`, `tie-timer`, `tie-bench`).
#![forbid(unsafe_code)]
