//! Quickstart: map a small complex network onto a 2D grid and enhance the
//! mapping with TIMER.
//!
//! Run with: `cargo run --release --example quickstart`

use tie_graph::generators;
use tie_mapping::identity_mapping;
use tie_metrics::evaluate;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};

fn main() {
    // 1. An application graph: a scale-free network with 2 000 tasks.
    let ga = generators::barabasi_albert(2_000, 4, 42);
    println!(
        "application graph: {} tasks, {} communication edges",
        ga.num_vertices(),
        ga.num_edges()
    );

    // 2. A processor graph: an 8x8 grid (64 PEs). Grids are partial cubes, so
    //    TIMER applies.
    let topo = Topology::grid2d(8, 8);
    let pcube = recognize_partial_cube(&topo.graph).expect("grids are partial cubes");
    println!(
        "processor graph: {} ({} PEs, {} convex cuts)",
        topo.name,
        topo.num_pes(),
        pcube.dim
    );

    // 3. Partition the application graph into one block per PE (3 % imbalance,
    //    the paper's setting) and map block i to PE i (the IDENTITY baseline).
    let part = partition(
        &ga,
        &PartitionConfig::new(topo.num_pes(), 7).with_epsilon(0.03),
    );
    let initial = identity_mapping(&part, topo.num_pes());

    // 4. Enhance the mapping with TIMER (10 hierarchies are usually enough).
    let result = enhance_mapping(&ga, &pcube, &initial, TimerConfig::new(10, 7)).unwrap();

    // 5. Compare the mappings.
    let before = evaluate(&ga, &topo.graph, &initial);
    let after = evaluate(&ga, &topo.graph, &result.mapping);
    println!("\n{:<22} {:>12} {:>12}", "metric", "initial", "after TIMER");
    println!(
        "{:<22} {:>12} {:>12}",
        "Coco (hop-byte)", before.coco, after.coco
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "edge cut", before.edge_cut, after.edge_cut
    );
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "avg dilation", before.avg_dilation, after.avg_dilation
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "congestion", before.congestion, after.congestion
    );
    println!(
        "\nTIMER reduced Coco by {:.1}% ({} of {} hierarchies accepted, {} label swaps)",
        100.0 * result.coco_improvement(),
        result.hierarchies_accepted,
        10,
        result.total_swaps
    );
    assert!(after.coco <= before.coco);
}
