//! Reproduces the paper's observation that TIMER's improvement depends on the
//! processor topology: grids improve more than tori, and the well-connected
//! hypercube improves least (Section 7.2).
//!
//! Run with: `cargo run --release --example torus_vs_grid`

use tie_bench::experiment::{run_case, ExperimentCase, ExperimentConfig};
use tie_bench::stats::geometric_mean;
use tie_bench::workloads::{quick_networks, Scale};
use tie_topology::Topology;

fn main() {
    let networks = quick_networks();
    let topologies = Topology::small_topologies();
    let config = ExperimentConfig {
        num_hierarchies: 10,
        ..Default::default()
    };

    println!(
        "Geometric-mean relative Coco after TIMER (initial mapping: GREEDYALLC), per topology:\n"
    );
    println!(
        "{:<14} {:>12} {:>12}",
        "topology", "rel. Coco", "improvement"
    );
    for topo in &topologies {
        let mut quotients = Vec::new();
        for spec in &networks {
            let ga = spec.build(Scale::Tiny);
            let r = run_case(&ga, topo, ExperimentCase::C3GreedyAllC, &config).unwrap();
            quotients.push(r.coco_quotient());
        }
        let gm = geometric_mean(&quotients).expect("no networks were swept");
        println!(
            "{:<14} {:>12.4} {:>11.1}%",
            topo.name,
            gm,
            100.0 * (1.0 - gm)
        );
    }
    println!("\nExpected shape (cf. Figure 5c): grids improve the most, tori somewhat less,");
    println!("and the 6-dim hypercube the least, because better-connected topologies leave");
    println!("less room for locality gains.");
}
