//! Illustrates Figure 2 of the paper: two opposite hierarchies of the
//! 4-dimensional hypercube induced by permutations of the label digits, plus
//! the partial-cube labelling of Figure 3's style for a small grid.
//!
//! Run with: `cargo run --release --example hierarchies`

use tie_topology::label::format_label;
use tie_topology::{recognize_partial_cube, Hierarchy, Topology};

fn main() {
    // Figure 2: hierarchies of the 4-D hypercube.
    let hq = Topology::hypercube(4);
    let labeling = recognize_partial_cube(&hq.graph).expect("hypercubes are partial cubes");
    println!(
        "4-dimensional hypercube: {} PEs, {} label digits\n",
        hq.num_pes(),
        labeling.dim
    );

    for (name, perm) in [
        (
            "pi = (1,2,3,4)  (identity)",
            (0..labeling.dim).rev().collect::<Vec<_>>(),
        ),
        (
            "pi = (4,3,2,1)  (opposite)",
            (0..labeling.dim).collect::<Vec<_>>(),
        ),
    ] {
        let h = Hierarchy::new(labeling.labels.clone(), labeling.dim, perm);
        println!("hierarchy {name}");
        for level in 0..=h.num_levels() {
            let blocks = h.num_blocks_at_level(level);
            println!("  level {level}: {blocks} block(s)");
        }
        assert!(h.is_proper_hierarchy());
        println!();
    }

    // Figure 3 style: labels of a small grid, distance = Hamming distance.
    let grid = Topology::grid2d(3, 2);
    let gl = recognize_partial_cube(&grid.graph).unwrap();
    println!("3x2 grid labels (distance in the grid = Hamming distance between labels):");
    for pe in grid.graph.vertices() {
        println!("  PE {pe}: {}", format_label(gl.label(pe), gl.dim));
    }
    let d = tie_graph::traversal::all_pairs_distances(&grid.graph);
    for u in grid.graph.vertices() {
        for v in grid.graph.vertices() {
            assert_eq!(gl.distance(u, v), d.get(u, v));
        }
    }
    println!("\nverified: Hamming distance equals graph distance for all PE pairs.");
}
