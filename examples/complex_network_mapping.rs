//! Domain scenario from the paper's introduction: parallel complex-network
//! analysis on a distributed-memory machine. Compares the four initial
//! mapping strategies (c1–c4) on one network/topology pair and shows how much
//! TIMER improves each of them.
//!
//! Run with: `cargo run --release --example complex_network_mapping`

use tie_bench::experiment::{run_case, ExperimentCase, ExperimentConfig};
use tie_bench::workloads::{paper_networks, Scale};
use tie_topology::Topology;

fn main() {
    // A citation-network stand-in mapped onto an 8x8x8-like (4x4x4) torus.
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "citationCiteseer")
        .unwrap();
    let ga = spec.build(Scale::Small);
    let topo = Topology::torus3d(4, 4, 4);
    println!(
        "network {} ({} vertices, {} edges) onto {} ({} PEs)\n",
        spec.name,
        ga.num_vertices(),
        ga.num_edges(),
        topo.name,
        topo.num_pes()
    );

    let config = ExperimentConfig {
        num_hierarchies: 10,
        ..Default::default()
    };
    println!(
        "{:<24} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "initial mapping", "Coco before", "Coco after", "impr.", "Cut before", "Cut after"
    );
    for case in ExperimentCase::all() {
        let r = run_case(&ga, &topo, case, &config).unwrap();
        println!(
            "{:<24} {:>12} {:>12} {:>8.1}% {:>12} {:>12}",
            case.name(),
            r.initial.coco,
            r.enhanced.coco,
            100.0 * (1.0 - r.coco_quotient()),
            r.initial.edge_cut,
            r.enhanced.edge_cut
        );
    }
    println!("\nLower Coco is better; TIMER trades a small edge-cut increase for lower communication cost.");
}
