//! Ablation of TIMER's design choices on one instance:
//!
//! * number of hierarchies NH (10 vs 50),
//! * the diversity term of Coco⁺ (Section 5) on vs off,
//! * sequential vs speculative batched hierarchy rounds (Section 6.3
//!   outlook; identical result, different wall-clock),
//! * TIMER vs a plain pairwise-swap refinement on the communication graph
//!   (network-cost-matrix baseline).
//!
//! Run with: `cargo run --release --example pipeline_ablation`

use std::time::Instant;

use tie_bench::workloads::{paper_networks, Scale};
use tie_mapping::{communication_graph, identity_mapping, refine_by_swaps, Mapping};
use tie_metrics::coco;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};

fn main() {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "web-Google")
        .unwrap();
    let ga = spec.build(Scale::Small);
    let topo = Topology::grid2d(8, 8);
    let pcube = recognize_partial_cube(&topo.graph).unwrap();
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 3));
    let initial = identity_mapping(&part, topo.num_pes());
    let initial_coco = coco(&ga, &topo.graph, &initial);
    println!(
        "{} ({} vertices) on {}: initial Coco (IDENTITY) = {initial_coco}\n",
        spec.name,
        ga.num_vertices(),
        topo.name
    );
    println!(
        "{:<44} {:>12} {:>9} {:>9}",
        "variant", "Coco", "impr.", "time [s]"
    );

    let run = |label: &str, cfg: TimerConfig| {
        let t = Instant::now();
        let r = enhance_mapping(&ga, &pcube, &initial, cfg).unwrap();
        let secs = t.elapsed().as_secs_f64();
        println!(
            "{:<44} {:>12} {:>8.1}% {:>9.2}",
            label,
            r.final_coco,
            100.0 * r.coco_improvement(),
            secs
        );
    };

    run("TIMER, NH=10", TimerConfig::new(10, 1));
    run("TIMER, NH=50 (paper setting)", TimerConfig::new(50, 1));
    run(
        "TIMER, NH=10, no diversity term",
        TimerConfig::new(10, 1).without_diversity(),
    );
    run(
        "TIMER, NH=10, 4-way speculative batches",
        TimerConfig::new(10, 1).with_threads(4),
    );

    // Extension (conclusions of the paper): TIMER followed by a cut-edge
    // polishing pass that swaps arbitrary labels, not just single digits.
    {
        let t = Instant::now();
        let r = enhance_mapping(&ga, &pcube, &initial, TimerConfig::new(10, 1)).unwrap();
        let mut labeling = r.labeling.clone();
        let stats = tie_timer::polish(&ga, &mut labeling, true, 3);
        let polished_coco = coco(&ga, &topo.graph, &labeling.to_mapping());
        println!(
            "{:<44} {:>12} {:>8.1}% {:>9.2}",
            format!("TIMER NH=10 + polish ({} extra swaps)", stats.swaps),
            polished_coco,
            100.0 * (1.0 - polished_coco as f64 / initial_coco as f64),
            t.elapsed().as_secs_f64()
        );
    }

    // NCM-style baseline: pairwise swaps on the communication graph only.
    let t = Instant::now();
    let gc = communication_graph(&ga, &part);
    let mut nu: Vec<u32> = (0..topo.num_pes() as u32).collect();
    refine_by_swaps(&gc, &topo.graph, &mut nu, 20);
    let ncm = Mapping::from_partition(&part, &nu, topo.num_pes());
    let ncm_coco = coco(&ga, &topo.graph, &ncm);
    println!(
        "{:<44} {:>12} {:>8.1}% {:>9.2}",
        "NCM-style block swaps (no re-partitioning)",
        ncm_coco,
        100.0 * (1.0 - ncm_coco as f64 / initial_coco as f64),
        t.elapsed().as_secs_f64()
    );
    println!("\nTIMER additionally moves individual vertices between blocks, which the");
    println!("communication-graph-level baseline cannot do.");
}
