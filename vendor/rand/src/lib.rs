//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::{shuffle, choose}`. The generator is xoshiro256++
//! seeded through SplitMix64 — high quality, deterministic, and fast. The
//! streams differ from upstream `rand`, which only matters if bit-identical
//! reproduction of upstream-seeded artefacts were required (it is not; all
//! seeds live inside this workspace).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable constructor, by u64 convenience seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        self.gen::<f64>() < p
    }

    fn gen<T>(&mut self) -> T
    where
        T: SampleUniform,
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers).
pub trait SampleUniform {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64 like upstream guidance.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and element choice, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
