//! Offline stand-in for the `criterion` benchmark framework.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! API surface the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `BenchmarkGroup::
//! {sample_size, bench_function, bench_with_input, finish}`, `BenchmarkId`
//! and `Bencher::iter` — measuring plain wall-clock time instead of
//! criterion's statistical machinery. Each benchmark runs `sample_size`
//! samples (after one warm-up iteration) and prints min/mean/max per
//! iteration, so `cargo bench` produces readable output and
//! `cargo bench --no-run` compiles the real bench sources unchanged.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing driver handed to the bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run the routine once for warm-up, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut bencher);
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = *bencher.samples.iter().min().unwrap();
    let max = *bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{name:<50} [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&self.name, id, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&self.name, &id.id, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one("", id, self.sample_size, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("fib");
        group.sample_size(3);
        for n in [5u64, 10] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| fib(n));
            });
        }
        group.bench_function("fixed", |b| b.iter(|| fib(8)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
