//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! re-implements the subset of proptest the workspace's property suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]` and
//!   `fn name(pat in strategy, ...) { .. }` items,
//! * [`Strategy`] for integer ranges, tuples, [`Just`] and
//!   [`collection::vec`], plus `prop_flat_map`/`prop_map` combinators,
//! * `prop_assert!` / `prop_assert_eq!` (mapped onto the std assertions).
//!
//! Inputs are generated from a deterministic per-test SplitMix64 stream (the
//! seed mixes the test name with the case index), so failures are
//! reproducible across runs. There is no shrinking: a failing case reports
//! the case index instead, which together with determinism is enough to
//! replay it under a debugger.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, S, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, T, F> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty inclusive range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 stream driving input generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed for one test case: mixes the test's name into the case index
        /// so distinct tests explore distinct input streams.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::new(h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Subset of proptest's runner configuration: only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The proptest test-definition macro. Each `fn name(pat in strategy, ..)`
/// item becomes a `#[test]` that replays `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )+
                let run = || -> () { $body };
                run();
            }
        }
    )*};
}

/// `prop_assert!`: in real proptest this aborts the case with a shrinkable
/// failure; here it is a plain assertion (no shrinking, deterministic replay).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair(max: usize) -> impl Strategy<Value = (usize, Vec<u32>)> {
        (2..max).prop_flat_map(|n| (Just(n), crate::collection::vec(0..n as u32, 1..10)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3..17usize, y in 1..=5u64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=5).contains(&y));
        }

        #[test]
        fn flat_map_respects_inner_bound((n, v) in pair(20)) {
            prop_assert!((2..20).contains(&n));
            for &e in &v {
                prop_assert!((e as usize) < n);
            }
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0..10u32, 0..10u32), 0..8)) {
            prop_assert!(v.len() < 8);
            for &(a, b) in &v {
                prop_assert!(a < 10 && b < 10);
            }
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
