//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace (by
//! `tie-timer`'s parallel sweep). Since Rust 1.63 the standard library ships
//! scoped threads, so this shim forwards to [`std::thread::scope`] while
//! keeping crossbeam's call shape: the scope closure and every spawned
//! closure receive the scope as an argument, and `scope` returns a `Result`.

pub mod thread {
    use std::any::Any;

    /// `crossbeam::thread::scope` wraps panics into an error; the std scope
    /// propagates them instead, so the `Err` arm here is never constructed —
    /// callers' `.expect(..)` remains well-typed either way.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. As in crossbeam, the closure receives the scope
        /// (allowing nested spawns), which callers typically ignore with `|_|`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
