//! Workspace-level acceptance test for the mapping service: the served
//! result must be byte-identical to the one-shot result for the same
//! request, on a cache miss AND on a cache hit — the invariant the CI
//! smoke job re-checks over a real socket.

use tie_graph::generators;
use tie_mapd::protocol::{GraphSource, MapRequest};
use tie_mapd::{Service, ServiceOptions};

fn request(case: &str, seed: u64, threads: usize) -> MapRequest {
    let g = generators::barabasi_albert(500, 4, seed);
    MapRequest {
        graph: GraphSource::Inline {
            num_vertices: g.num_vertices(),
            edges: g.edges().collect(),
        },
        topology: "grid4x8".to_string(),
        case: case.to_string(),
        nh: 10,
        eps: 0.03,
        seed,
        threads,
        batch: 0,
        deadline_ms: 0,
    }
}

#[test]
fn service_results_are_identical_across_cache_dispositions_and_threads() {
    for case in ["c1", "c2"] {
        // Two independent services: each starts cold, so both first calls
        // are misses; the second call on each is a hit.
        let a = Service::new(ServiceOptions::default());
        let b = Service::new(ServiceOptions::default());
        let req1 = request(case, 42, 1);
        let req4 = request(case, 42, 4);

        let miss = a.execute(&req1).expect("miss execution");
        let hit = a.execute(&req1).expect("hit execution");
        assert_eq!(miss.cache, "miss", "{case}");
        assert_eq!(hit.cache, "hit", "{case}");
        assert_eq!(miss.mapping, hit.mapping, "{case}: hit must equal miss");
        assert_eq!(miss.enhanced, hit.enhanced, "{case}");
        assert_eq!(miss.total_swaps, hit.total_swaps, "{case}");

        // Thread count must not change the result either (the pipeline's
        // determinism contract), served through a different service.
        let threaded = b.execute(&req4).expect("threaded execution");
        assert_eq!(
            miss.mapping, threaded.mapping,
            "{case}: threads changed the result"
        );
        assert_eq!(miss.enhanced, threaded.enhanced, "{case}");

        let stats = a.cache_stats();
        assert_eq!(stats.misses, 1, "{case}");
        assert_eq!(stats.hits, 1, "{case}");
    }
}

#[test]
fn admission_counters_return_to_zero() {
    let service = Service::new(ServiceOptions {
        max_inflight: 1,
        ..ServiceOptions::default()
    });
    assert_eq!(service.admission_capacity(), 1);
    service.execute(&request("c2", 5, 1)).expect("execution");
    assert_eq!(service.in_flight(), 0, "permit must be released");
}

#[test]
fn deadline_zero_means_no_deadline_and_expired_deadline_rejects() {
    let service = Service::new(ServiceOptions::default());
    let ok = service.execute(&request("c2", 9, 1)).expect("no deadline");
    assert_eq!(ok.stop_reason, "completed");

    // A 1 ms deadline on a fresh service cannot cover context construction
    // plus enhancement: the run must stop early or be rejected, never hang.
    let fresh = Service::new(ServiceOptions::default());
    let mut req = request("c2", 9, 1);
    req.deadline_ms = 1;
    match fresh.execute(&req) {
        Ok(resp) => assert_eq!(resp.stop_reason, "deadline_exceeded", "{resp:?}"),
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("deadline") || msg.contains("rejected"),
                "{msg}"
            );
        }
    }
}
