//! End-to-end integration tests spanning all crates: generate a network,
//! partition it, build every initial mapping, enhance with TIMER, and verify
//! the cross-crate invariants the paper relies on.

use tie_bench::workloads::{paper_networks, Scale};
use tie_graph::traversal::all_pairs_distances;
use tie_mapping::{drb, greedy, identity_mapping, Mapping};
use tie_metrics::{coco, edge_cut, evaluate, imbalance};
use tie_partition::{partition, PartitionConfig};
use tie_timer::{coco as label_coco, enhance_mapping, Labeling, TimerConfig};
use tie_topology::{recognize_partial_cube, Topology};

/// Small but non-trivial shared fixture.
fn fixture() -> (tie_graph::Graph, Topology) {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "email-EuAll")
        .unwrap();
    (spec.build(Scale::Tiny), Topology::grid2d(8, 8))
}

#[test]
fn full_pipeline_c2_identity() {
    let (ga, topo) = fixture();
    let pcube = recognize_partial_cube(&topo.graph).unwrap();
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 1));
    assert!(
        part.is_balanced(&ga, 0.03 + 1e-9),
        "partition imbalance {}",
        part.imbalance(&ga)
    );

    let initial = identity_mapping(&part, topo.num_pes());
    let result = enhance_mapping(&ga, &pcube, &initial, TimerConfig::new(10, 1)).unwrap();

    // Label-based Coco agrees with the metric crate's distance-based Coco.
    assert_eq!(result.final_coco, coco(&ga, &topo.graph, &result.mapping));
    assert_eq!(result.initial_coco, coco(&ga, &topo.graph, &initial));
    // Balance is preserved exactly (same load multiset).
    let mut before = initial.load_per_pe();
    let mut after = result.mapping.load_per_pe();
    before.sort_unstable();
    after.sort_unstable();
    assert_eq!(before, after);
    // The balance metric is within the partitioner's guarantee.
    assert!(imbalance(&ga, &result.mapping) <= 0.03 + 1e-9);
}

#[test]
fn every_initial_mapping_strategy_composes_with_timer() {
    let (ga, topo) = fixture();
    let pcube = recognize_partial_cube(&topo.graph).unwrap();
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 2));
    let candidates: Vec<(&str, Mapping)> = vec![
        ("identity", identity_mapping(&part, topo.num_pes())),
        (
            "greedy_allc",
            greedy::greedy_allc_mapping(&ga, &part, &topo.graph),
        ),
        (
            "greedy_min",
            greedy::greedy_min_mapping(&ga, &part, &topo.graph),
        ),
        ("drb", drb::drb_mapping(&ga, &part, &topo.graph, 5)),
    ];
    for (name, initial) in candidates {
        let before = evaluate(&ga, &topo.graph, &initial);
        let result = enhance_mapping(&ga, &pcube, &initial, TimerConfig::new(8, 3)).unwrap();
        let after = evaluate(&ga, &topo.graph, &result.mapping);
        // Coco+ never worsens; Coco itself stays within a few percent and
        // typically improves.
        assert!(result.final_coco_plus <= result.initial_coco_plus, "{name}");
        assert!(after.coco as f64 <= before.coco as f64 * 1.05, "{name}");
        // The mapping stays a function onto the same PE set.
        assert_eq!(
            after.imbalance, before.imbalance,
            "{name}: balance must be preserved"
        );
    }
}

#[test]
fn timer_on_all_small_topologies() {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "p2p-Gnutella")
        .unwrap();
    let ga = spec.build(Scale::Tiny);
    for topo in Topology::small_topologies() {
        let pcube =
            recognize_partial_cube(&topo.graph).unwrap_or_else(|e| panic!("{}: {e}", topo.name));
        let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 7));
        let initial = identity_mapping(&part, topo.num_pes());
        let result = enhance_mapping(&ga, &pcube, &initial, TimerConfig::new(5, 7)).unwrap();
        assert!(
            result.final_coco_plus <= result.initial_coco_plus,
            "{}",
            topo.name
        );
        assert_eq!(
            result.final_coco,
            coco(&ga, &topo.graph, &result.mapping),
            "{}",
            topo.name
        );
    }
}

#[test]
fn run_case_with_speculative_threads_matches_sequential() {
    // The experiment harness threads flag must not change any reported
    // number: the batched driver reproduces the sequential trajectory.
    use tie_bench::experiment::{run_case, ExperimentCase, ExperimentConfig};

    let (ga, topo) = fixture();
    let sequential_cfg = ExperimentConfig {
        num_hierarchies: 8,
        seed: 3,
        ..Default::default()
    };
    let threaded_cfg = ExperimentConfig {
        threads: 4,
        ..sequential_cfg.clone()
    };
    let a = run_case(&ga, &topo, ExperimentCase::C2Identity, &sequential_cfg).unwrap();
    let b = run_case(&ga, &topo, ExperimentCase::C2Identity, &threaded_cfg).unwrap();
    assert_eq!(a.enhanced.coco, b.enhanced.coco);
    assert_eq!(a.enhanced.edge_cut, b.enhanced.edge_cut);
    assert_eq!(a.hierarchies_accepted, b.hierarchies_accepted);
}

#[test]
fn labeling_round_trip_respects_mapping_and_distances() {
    let (ga, topo) = fixture();
    let pcube = recognize_partial_cube(&topo.graph).unwrap();
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 9));
    let mapping = identity_mapping(&part, topo.num_pes());
    let labeling = Labeling::from_mapping(&ga, &pcube, &mapping, 11).unwrap();
    // Label-derived Coco equals distance-based Coco (requirement 2, Sec. 4).
    assert_eq!(label_coco(&ga, &labeling), coco(&ga, &topo.graph, &mapping));
    // Labels are unique (requirement 3) and encode µ (requirement 1).
    assert!(labeling.is_unique());
    assert_eq!(labeling.to_mapping(), mapping);
    // Hamming distance of lp parts equals PE distance for arbitrary pairs.
    let dist = all_pairs_distances(&topo.graph);
    for (u, v) in [(0u32, 1u32), (10, 500), (33, 700), (999, 2)] {
        let u = u % ga.num_vertices() as u32;
        let v = v % ga.num_vertices() as u32;
        let h = (labeling.lp_part(u) ^ labeling.lp_part(v)).count_ones();
        assert_eq!(h, dist.get(mapping.pe_of(u), mapping.pe_of(v)));
    }
}

#[test]
fn edge_cut_and_coco_relate_sanely_across_pipeline() {
    let (ga, topo) = fixture();
    let pcube = recognize_partial_cube(&topo.graph).unwrap();
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 4));
    let initial = identity_mapping(&part, topo.num_pes());
    let result = enhance_mapping(&ga, &pcube, &initial, TimerConfig::new(10, 4)).unwrap();
    // Coco >= edge cut always (every cut edge costs at least one hop).
    assert!(coco(&ga, &topo.graph, &result.mapping) >= edge_cut(&ga, &result.mapping));
    // The partition edge cut equals the mapping edge cut for the identity
    // composition before enhancement.
    assert_eq!(edge_cut(&ga, &initial), part.edge_cut(&ga));
}
