//! Integration tests for the qualitative claims of the paper's evaluation
//! (Section 7.2), at reduced scale:
//!
//! * TIMER reduces Coco on complex networks mapped to grids/tori/hypercubes,
//! * the reduction comes at the price of a (small) edge-cut increase,
//! * grids improve at least as much as the better-connected hypercube,
//! * running TIMER is not drastically slower than partitioning.

use std::time::Instant;

use tie_bench::experiment::{run_case, ExperimentCase, ExperimentConfig};
use tie_bench::stats::geometric_mean;
use tie_bench::workloads::{quick_networks, Scale};
use tie_topology::Topology;

/// Every run in this suite pins its seed through `ExperimentConfig` so the
/// asserted quotients are reproducible run-to-run (no ambient randomness).
const SUITE_SEED: u64 = 1;

fn mean_quotients(case: ExperimentCase, topo: &Topology, nh: usize) -> (f64, f64) {
    let config = ExperimentConfig {
        num_hierarchies: nh,
        seed: SUITE_SEED,
        ..Default::default()
    };
    let mut coco_q = Vec::new();
    let mut cut_q = Vec::new();
    for spec in quick_networks().iter().take(3) {
        let ga = spec.build(Scale::Tiny);
        let r = run_case(&ga, topo, case, &config).unwrap();
        coco_q.push(r.coco_quotient());
        cut_q.push(r.cut_quotient());
    }
    let coco_gm = geometric_mean(&coco_q).expect("sweep produced no Coco quotients");
    let cut_gm = geometric_mean(&cut_q).expect("sweep produced no cut quotients");
    (coco_gm, cut_gm)
}

#[test]
fn timer_reduces_coco_for_scrambled_like_initial_mappings() {
    // Case c1 (DRB) leaves the most room for improvement per the paper; at
    // minimum TIMER must not lose quality, and on the 2D grid it should gain.
    let topo = Topology::grid2d(8, 8);
    let (coco_q, _) = mean_quotients(ExperimentCase::C1Drb, &topo, 10);
    assert!(
        coco_q <= 1.0 + 1e-9,
        "geometric mean Coco quotient {coco_q} should not exceed 1"
    );
}

#[test]
fn identity_case_improves_on_grid() {
    let topo = Topology::grid2d(8, 8);
    let (coco_q, cut_q) = mean_quotients(ExperimentCase::C2Identity, &topo, 10);
    assert!(
        coco_q < 1.0,
        "TIMER should improve Coco of IDENTITY mappings on the grid (got {coco_q})"
    );
    // The paper observes the improvement is paid with a small cut increase;
    // the cut must not explode.
    assert!(cut_q < 1.5, "cut quotient {cut_q} unexpectedly large");
}

#[test]
fn hypercube_improves_no_more_than_grid() {
    // Section 7.2: "The better the connectivity of Gp, the harder it gets to
    // improve Coco (results are poorest on the hypercube)."
    let grid = Topology::grid2d(8, 8);
    let hq = Topology::hypercube(6);
    let (grid_q, _) = mean_quotients(ExperimentCase::C3GreedyAllC, &grid, 8);
    let (hq_q, _) = mean_quotients(ExperimentCase::C3GreedyAllC, &hq, 8);
    // Allow a small tolerance: at tiny scale the ordering can tie.
    assert!(
        grid_q <= hq_q + 0.05,
        "grid (quotient {grid_q}) should improve at least as much as the hypercube ({hq_q})"
    );
}

#[test]
fn timer_runtime_is_comparable_to_partitioning() {
    // Table 2 shows TIMER being on the same order of magnitude as (and often
    // faster than) partitioning for c2-c4. At reduced scale we only check the
    // ratio is not absurd (within 25x), guarding against algorithmic
    // complexity regressions.
    let spec = &quick_networks()[0];
    let ga = spec.build(Scale::Tiny);
    let topo = Topology::grid2d(8, 8);
    let config = ExperimentConfig {
        num_hierarchies: 10,
        ..Default::default()
    };
    let start = Instant::now();
    let r = run_case(&ga, &topo, ExperimentCase::C2Identity, &config).unwrap();
    let _total = start.elapsed();
    let ratio = r.timer_time.as_secs_f64() / r.partition_time.as_secs_f64().max(1e-6);
    assert!(
        ratio < 25.0,
        "TIMER/partitioner time ratio {ratio} too large"
    );
}

#[test]
fn more_hierarchies_help_or_tie() {
    let topo = Topology::torus2d(8, 8);
    let spec = &quick_networks()[1];
    let ga = spec.build(Scale::Tiny);
    let cfg_few = ExperimentConfig {
        num_hierarchies: 2,
        seed: SUITE_SEED,
        ..Default::default()
    };
    let cfg_many = ExperimentConfig {
        num_hierarchies: 12,
        seed: SUITE_SEED,
        ..Default::default()
    };
    let few = run_case(&ga, &topo, ExperimentCase::C2Identity, &cfg_few).unwrap();
    let many = run_case(&ga, &topo, ExperimentCase::C2Identity, &cfg_many).unwrap();
    // Same seed, more rounds: the accepted objective can only improve.
    assert!(many.enhanced.coco as f64 <= few.enhanced.coco as f64 * 1.02);
}

#[test]
fn experiments_are_deterministic_in_the_config_seed() {
    let topo = Topology::grid2d(8, 8);
    let spec = &quick_networks()[0];
    let ga = spec.build(Scale::Tiny);
    let config = ExperimentConfig {
        num_hierarchies: 6,
        seed: SUITE_SEED,
        ..Default::default()
    };
    let a = run_case(&ga, &topo, ExperimentCase::C2Identity, &config).unwrap();
    let b = run_case(&ga, &topo, ExperimentCase::C2Identity, &config).unwrap();
    assert_eq!(a.initial.coco, b.initial.coco);
    assert_eq!(a.enhanced.coco, b.enhanced.coco);
    assert_eq!(a.enhanced.edge_cut, b.enhanced.edge_cut);
    assert_eq!(a.hierarchies_accepted, b.hierarchies_accepted);
}

#[test]
fn batched_enhance_is_byte_identical_across_thread_counts() {
    // Section 6.3 outlook, as implemented by the speculative batched driver:
    // for a fixed seed, `Timer::enhance` must produce bit-for-bit the same
    // result for threads ∈ {1, 2, 4} — i.e. exactly the sequential
    // trajectory, so the parallel driver can never be worse than it — on
    // grid, torus and hypercube targets.
    use tie_mapping::identity_mapping;
    use tie_partition::{partition, PartitionConfig};
    use tie_timer::{enhance_mapping, TimerConfig};
    use tie_topology::recognize_partial_cube;

    for topo in [
        Topology::grid2d(4, 4),
        Topology::torus2d(4, 4),
        Topology::hypercube(4),
    ] {
        let pcube =
            recognize_partial_cube(&topo.graph).unwrap_or_else(|e| panic!("{}: {e}", topo.name));
        for spec in quick_networks().iter().take(2) {
            let ga = spec.build(Scale::Tiny);
            let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), SUITE_SEED));
            let mapping = identity_mapping(&part, topo.num_pes());
            let sequential =
                enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(8, SUITE_SEED)).unwrap();
            for threads in [2usize, 4] {
                let batched = enhance_mapping(
                    &ga,
                    &pcube,
                    &mapping,
                    TimerConfig::new(8, SUITE_SEED).with_threads(threads),
                )
                .unwrap();
                assert_eq!(
                    batched.labeling.labels, sequential.labeling.labels,
                    "{} × {}: labels diverged at {threads} threads",
                    topo.name, spec.name
                );
                assert_eq!(batched.mapping, sequential.mapping);
                assert_eq!(batched.final_coco, sequential.final_coco);
                assert_eq!(batched.final_coco_plus, sequential.final_coco_plus);
                assert_eq!(
                    batched.hierarchies_accepted,
                    sequential.hierarchies_accepted
                );
                assert_eq!(batched.total_swaps, sequential.total_swaps);
                assert_eq!(batched.total_repaired, sequential.total_repaired);
            }
        }
    }
}

#[test]
fn enhance_never_worsens_coco_plus_on_4x4_torus() {
    // Smoke test for the core invariant: on a 4x4 torus, Timer::enhance
    // accepts a hierarchy round only if it improves Coco+ without worsening
    // Coco, so neither objective may end up worse than it started.
    use tie_mapping::Mapping;
    use tie_partition::{partition, PartitionConfig};
    use tie_timer::{enhance_mapping, TimerConfig};
    use tie_topology::recognize_partial_cube;

    let topo = Topology::torus2d(4, 4);
    let pcube = recognize_partial_cube(&topo.graph).expect("4x4 torus is a partial cube");
    for (i, spec) in quick_networks().iter().take(3).enumerate() {
        let ga = spec.build(Scale::Tiny);
        let seed = SUITE_SEED + i as u64;
        let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), seed));
        let scramble = tie_graph::generators::random_permutation(topo.num_pes(), seed);
        let mapping = Mapping::from_partition(&part, &scramble, topo.num_pes());
        let result = enhance_mapping(&ga, &pcube, &mapping, TimerConfig::new(8, seed)).unwrap();
        assert!(
            result.final_coco_plus <= result.initial_coco_plus,
            "{}: Coco+ worsened {} -> {}",
            spec.name,
            result.initial_coco_plus,
            result.final_coco_plus
        );
        assert!(
            result.final_coco <= result.initial_coco,
            "{}: Coco worsened {} -> {}",
            spec.name,
            result.initial_coco,
            result.final_coco
        );
    }
}
