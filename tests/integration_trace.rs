//! End-to-end tests of the flight recorder: a full TIMER run traced to a
//! JSONL file produces a parseable, complete event stream, and attaching any
//! sink leaves the computed result byte-identical to the untraced run.

use std::sync::Arc;

use tie_bench::workloads::{paper_networks, Scale};
use tie_mapping::identity_mapping;
use tie_partition::{partition, PartitionConfig};
use tie_timer::{enhance_mapping, TimerConfig, TimerResult};
use tie_topology::{recognize_partial_cube, Topology};
use tie_trace::{JsonlSink, NullSink, TraceHandle, TraceLevel};

const NH: usize = 8;

fn run_with(trace: TraceHandle, threads: usize) -> TimerResult {
    let spec = paper_networks()
        .into_iter()
        .find(|s| s.name == "email-EuAll")
        .unwrap();
    let ga = spec.build(Scale::Tiny);
    let topo = Topology::grid2d(8, 8);
    let pcube = recognize_partial_cube(&topo.graph).unwrap();
    let part = partition(&ga, &PartitionConfig::new(topo.num_pes(), 1));
    let initial = identity_mapping(&part, topo.num_pes());
    let cfg = TimerConfig::new(NH, 1)
        .with_threads(threads)
        .with_trace(trace);
    enhance_mapping(&ga, &pcube, &initial, cfg).unwrap()
}

/// Minimal structural check of one JSONL line without a JSON parser: it is
/// one object, and each required key is present with a primitive value.
fn assert_jsonl_line(line: &str) {
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "not an object: {line}"
    );
    assert_eq!(line.matches('{').count(), 1, "nested braces: {line}");
    for key in ["\"event\": ", "\"ts_us\": ", "\"thread\": "] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
}

#[test]
fn jsonl_trace_is_parseable_and_covers_every_round() {
    let dir = std::env::temp_dir().join("tie_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("integration_trace.jsonl");
    let sink = JsonlSink::create(&path).unwrap();
    let result = run_with(TraceHandle::new(Arc::new(sink), TraceLevel::Phase), 1);

    let content = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = content.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines {
        assert_jsonl_line(line);
    }

    let count = |kind: &str| {
        lines
            .iter()
            .filter(|l| l.contains(&format!("{{\"event\": \"{kind}\",")))
            .count()
    };
    assert_eq!(count("run_start"), 1);
    assert_eq!(count("run_end"), 1);
    // One gate event per hierarchy round, no more, no less — the committed
    // trajectory covers exactly `nh` rounds even under speculation.
    assert_eq!(count("gate"), NH);
    // Phase level adds the per-round phase spans: hierarchy build, assemble
    // and delta scan fire once per round, commit once per batch (= per round
    // sequentially).
    assert_eq!(count("phase"), 4 * NH);
    // Telemetry agrees with the event stream.
    assert_eq!(result.telemetry.rounds(), NH);

    // Every gate line carries the accept verdict and both deltas.
    for line in lines.iter().filter(|l| l.contains("\"event\": \"gate\"")) {
        for key in [
            "\"round\": ",
            "\"coco_delta\": ",
            "\"div_delta\": ",
            "\"accepted\": ",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
}

#[test]
fn tracing_never_changes_the_result() {
    let baseline = run_with(TraceHandle::off(), 1);
    let dir = std::env::temp_dir().join("tie_trace_test");
    std::fs::create_dir_all(&dir).unwrap();

    for threads in [1usize, 4] {
        let path = dir.join(format!("identity_check_{threads}.jsonl"));
        let traced = run_with(
            TraceHandle::new(
                Arc::new(JsonlSink::create(&path).unwrap()),
                TraceLevel::Debug,
            ),
            threads,
        );
        std::fs::remove_file(&path).ok();
        let nulled = run_with(
            TraceHandle::new(Arc::new(NullSink), TraceLevel::Debug),
            threads,
        );
        for r in [&traced, &nulled] {
            assert_eq!(r.labeling.labels, baseline.labeling.labels);
            assert_eq!(r.final_coco, baseline.final_coco);
            assert_eq!(r.hierarchies_accepted, baseline.hierarchies_accepted);
            assert_eq!(r.total_swaps, baseline.total_swaps);
            // Gate-side telemetry is deterministic too (phases are
            // wall-clock and may differ).
            assert!(r.telemetry.same_gate_trajectory(&baseline.telemetry));
        }
    }
}
